//! Restoration-based static compaction of test sequences.
//!
//! The paper applies static compaction to the deterministic sequences it
//! consumes. This module implements omission-based compaction: candidate
//! blocks of vectors are removed and the shortened sequence is re-fault-
//! simulated from scratch; the removal is kept when coverage does not
//! drop. Passes run with shrinking block sizes, scanning from the end of
//! the sequence toward the front (late vectors are most often redundant,
//! and removing them does not disturb the initialization prefix).

use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, TestSequence};

/// Configuration for [`compact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Block sizes tried, in order. Defaults to `[64, 16, 4, 1]`.
    pub block_sizes: Vec<usize>,
    /// Upper bound on full-sequence re-simulations (compaction is
    /// quadratic in the worst case; this caps the effort).
    pub max_trials: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            block_sizes: vec![64, 16, 4, 1],
            max_trials: 2000,
        }
    }
}

/// Statically compacts `sequence` while preserving the number of faults
/// of `faults` it detects. Returns the compacted sequence (possibly the
/// input, if nothing could be removed).
///
/// # Panics
///
/// Panics if the circuit has not been levelized or the sequence width
/// does not match the circuit.
pub fn compact(
    circuit: &Circuit,
    faults: &FaultList,
    sequence: &TestSequence,
    config: &CompactionConfig,
) -> TestSequence {
    let sim = FaultSim::new(circuit);
    let target = sim.query(faults).sequence(sequence).count();
    let mut current = sequence.clone();
    let mut trials = 0usize;

    for &bs in &config.block_sizes {
        if bs == 0 {
            continue;
        }
        // Scan block starts from the tail toward the head.
        let mut start = current.len().saturating_sub(bs);
        loop {
            if trials >= config.max_trials {
                return current;
            }
            if current.len() <= bs {
                break;
            }
            let omit: Vec<usize> = (start..(start + bs).min(current.len())).collect();
            let shorter = current.without_rows(&omit);
            trials += 1;
            if sim.query(faults).sequence(&shorter).count() >= target {
                current = shorter;
                // The window now covers fresh rows; stay at the same start
                // unless it ran off the end.
                if start >= current.len() {
                    if start == 0 {
                        break;
                    }
                    start = start.saturating_sub(bs);
                }
            } else if start == 0 {
                break;
            } else {
                start = start.saturating_sub(bs);
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{AtpgConfig, SequenceAtpg};
    use wbist_circuits::s27;
    use wbist_netlist::FaultList;

    #[test]
    fn compaction_preserves_coverage() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let result = SequenceAtpg::new(&c, AtpgConfig::default()).run(&faults);
        let sim = FaultSim::new(&c);
        let before = sim.query(&faults).sequence(&result.sequence).count();
        let compacted = compact(&c, &faults, &result.sequence, &CompactionConfig::default());
        let after = sim.query(&faults).sequence(&compacted).count();
        assert!(after >= before);
        assert!(compacted.len() <= result.sequence.len());
    }

    #[test]
    fn compaction_actually_shrinks_padded_sequences() {
        // Duplicate the paper's s27 sequence three times: at least the
        // copies must go.
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let t = s27::paper_test_sequence();
        let mut padded = t.clone();
        padded.append(&t);
        padded.append(&t);
        let compacted = compact(&c, &faults, &padded, &CompactionConfig::default());
        assert!(
            compacted.len() <= t.len() + 4,
            "compacted to {} rows",
            compacted.len()
        );
        let sim = FaultSim::new(&c);
        assert_eq!(
            sim.query(&faults).sequence(&compacted).count(),
            sim.query(&faults).sequence(&padded).count()
        );
    }

    #[test]
    fn trial_budget_respected() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let t = s27::paper_test_sequence();
        let cfg = CompactionConfig {
            block_sizes: vec![1],
            max_trials: 1,
        };
        // Must terminate fast and return something valid.
        let out = compact(&c, &faults, &t, &cfg);
        assert!(out.len() <= t.len());
    }

    #[test]
    fn short_sequences_survive() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let t = s27::paper_test_sequence().slice(0..1);
        let out = compact(&c, &faults, &t, &CompactionConfig::default());
        assert_eq!(out.len(), 1);
    }
}
