//! Simulation-based deterministic test sequence generation.
//!
//! The generator grows a test sequence block by block. Each round it
//! proposes a population of candidate input blocks — pseudo-random rows
//! with per-input biases, plus mutations of the previous winner — and
//! fault-simulates every candidate *incrementally* from the current
//! good/faulty machine states (no re-simulation of the prefix). The block
//! that detects the most new faults is committed. When no candidate makes
//! progress, exploration continues for a bounded number of rounds (the
//! circuit still walks through state space, which is how hard-to-reach
//! states get found) before giving up.
//!
//! Candidate evaluation uses a *sample* of the undetected faults for
//! speed; the committed block is always simulated against the full
//! remaining fault set, so reported coverage is exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, FaultSimState, TestSequence};

/// Configuration for [`SequenceAtpg`].
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgConfig {
    /// RNG seed; runs are deterministic for a given seed.
    pub seed: u64,
    /// Rows appended per committed block.
    pub block_len: usize,
    /// Candidate blocks evaluated per round.
    pub candidates: usize,
    /// Rounds without progress before the search stops.
    pub patience: usize,
    /// Hard cap on the generated sequence length.
    pub max_len: usize,
    /// Maximum number of undetected faults simulated per candidate
    /// evaluation (the sample); the commit step always uses all of them.
    pub eval_sample: usize,
    /// Per-input bias choices for candidate blocks.
    pub biases: Vec<f64>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 0xA7B6_C5D4,
            block_len: 8,
            candidates: 8,
            patience: 24,
            max_len: 4000,
            eval_sample: 126,
            biases: vec![0.05, 0.15, 0.35, 0.5, 0.65, 0.85, 0.95],
        }
    }
}

/// The outcome of a generation run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The generated deterministic sequence `T`.
    pub sequence: TestSequence,
    /// Detected flag per fault of the target list.
    pub detected: Vec<bool>,
}

impl AtpgResult {
    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Fraction of the target faults detected (0.0 when the list is
    /// empty).
    pub fn coverage(&self) -> f64 {
        if self.detected.is_empty() {
            0.0
        } else {
            self.detected_count() as f64 / self.detected.len() as f64
        }
    }
}

/// Simulation-based sequence generator for a circuit.
#[derive(Debug)]
pub struct SequenceAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> SequenceAtpg<'c> {
    /// Creates a generator for `circuit` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized or the configuration
    /// has a zero `block_len`/`candidates`.
    pub fn new(circuit: &'c Circuit, config: AtpgConfig) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        assert!(config.block_len > 0, "block_len must be positive");
        assert!(config.candidates > 0, "candidates must be positive");
        SequenceAtpg { circuit, config }
    }

    /// Generates a deterministic test sequence targeting `faults`.
    pub fn run(&self, faults: &FaultList) -> AtpgResult {
        let sim = FaultSim::new(self.circuit);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n_inputs = self.circuit.num_inputs();
        let mut t = TestSequence::new(n_inputs);
        let mut state = sim.begin(faults);
        let mut stale_rounds = 0usize;
        let mut last_best: Option<TestSequence> = None;

        while state.num_detected() < faults.len()
            && t.len() + self.config.block_len <= self.config.max_len
            && stale_rounds < self.config.patience
        {
            let sample = self.pick_sample(&state, &mut rng);
            let mut best: Option<(usize, TestSequence)> = None;
            for ci in 0..self.config.candidates {
                let cand = self.candidate(ci, &last_best, n_inputs, &mut rng);
                // Fast sample evaluation; exact commit below.
                let mut probe = state.clone();
                let gained = if sample.is_empty() || sim.sample_detects(&state, &sample, &cand) {
                    sim.advance(&mut probe, &cand)
                } else {
                    0
                };
                if best.as_ref().is_none_or(|&(b, _)| gained > b) {
                    best = Some((gained, cand));
                }
            }
            let (gained, block) = best.expect("candidates > 0");
            // Commit the winner even when it gains nothing: walking the
            // state space is what eventually reaches hard states.
            sim.advance(&mut state, &block);
            t.append(&block);
            last_best = Some(block);
            if gained > 0 {
                stale_rounds = 0;
            } else {
                stale_rounds += 1;
            }
        }

        AtpgResult {
            sequence: t,
            detected: state.detected().to_vec(),
        }
    }

    /// Chooses the fault-index sample used for fast candidate screening:
    /// the first `eval_sample` still-undetected faults (detection order
    /// biases early faults out quickly, so this set keeps rotating).
    fn pick_sample(&self, state: &FaultSimState, rng: &mut StdRng) -> Vec<usize> {
        let undetected: Vec<usize> = state
            .detected()
            .iter()
            .enumerate()
            .filter(|&(_, &d)| !d)
            .map(|(i, _)| i)
            .collect();
        if undetected.len() <= self.config.eval_sample {
            // Sample covers everything: skip sampling (empty = full sim).
            return Vec::new();
        }
        let mut sample = Vec::with_capacity(self.config.eval_sample);
        // Half head (hard faults cluster at the front as easy ones drop),
        // half random.
        let head = self.config.eval_sample / 2;
        sample.extend_from_slice(&undetected[..head]);
        for _ in head..self.config.eval_sample {
            sample.push(undetected[rng.gen_range(0..undetected.len())]);
        }
        sample.sort_unstable();
        sample.dedup();
        sample
    }

    /// Builds candidate block `ci`: candidate 0 mutates the previous
    /// winner; the rest are biased-random.
    fn candidate(
        &self,
        ci: usize,
        last_best: &Option<TestSequence>,
        n_inputs: usize,
        rng: &mut StdRng,
    ) -> TestSequence {
        if ci == 0 {
            if let Some(prev) = last_best {
                // Mutate: flip ~10% of the bits of the previous winner.
                let mut rows: Vec<Vec<bool>> =
                    (0..prev.len()).map(|u| prev.row(u).to_vec()).collect();
                for row in &mut rows {
                    for b in row.iter_mut() {
                        if rng.gen_bool(0.1) {
                            *b = !*b;
                        }
                    }
                }
                return TestSequence::from_rows(rows).expect("rows are rectangular");
            }
        }
        // Biased random block. A third of the candidates share one bias
        // across all inputs — extreme shared biases reach the all-0/all-1
        // corners that random-pattern-resistant logic (wide AND/OR cones)
        // needs. The rest get an independent bias per input; occasionally
        // an input is held constant for the whole block (helps sequential
        // initialization).
        let shared = if rng.gen_bool(0.33) {
            Some(self.config.biases[rng.gen_range(0..self.config.biases.len())])
        } else {
            None
        };
        let biases: Vec<f64> = (0..n_inputs)
            .map(|_| match shared {
                Some(b) => b,
                None => self.config.biases[rng.gen_range(0..self.config.biases.len())],
            })
            .collect();
        let hold: Vec<Option<bool>> = (0..n_inputs)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    Some(rng.gen_bool(0.5))
                } else {
                    None
                }
            })
            .collect();
        let mut seq = TestSequence::new(n_inputs);
        let mut row = vec![false; n_inputs];
        for _ in 0..self.config.block_len {
            for i in 0..n_inputs {
                row[i] = match hold[i] {
                    Some(v) => v,
                    None => rng.gen_bool(biases[i]),
                };
            }
            seq.push_row(&row);
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_circuits::s27;
    use wbist_netlist::FaultList;

    #[test]
    fn s27_reaches_full_coverage() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let result = SequenceAtpg::new(&c, AtpgConfig::default()).run(&faults);
        assert_eq!(result.detected_count(), faults.len());
        assert!(result.sequence.len() <= AtpgConfig::default().max_len);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let cfg = AtpgConfig::default();
        let a = SequenceAtpg::new(&c, cfg.clone()).run(&faults);
        let b = SequenceAtpg::new(&c, cfg).run(&faults);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn detected_flags_are_exact() {
        // The reported flags must agree with an independent one-shot
        // simulation of the produced sequence.
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let result = SequenceAtpg::new(&c, AtpgConfig::default()).run(&faults);
        let oneshot = FaultSim::new(&c)
            .query(&faults)
            .sequence(&result.sequence)
            .detected();
        assert_eq!(result.detected, oneshot);
    }

    #[test]
    fn synthetic_circuit_coverage_is_reasonable() {
        // The spec seed picks the synthetic circuit, and the share of
        // undetectable checkpoint faults varies strongly with it. Seed 0
        // yields ~0.92 achievable coverage under the vendored RNG stream
        // (the original seed 7 was tuned to the upstream rand stream and
        // generates a circuit where >40% of checkpoints are undetectable).
        let spec = wbist_circuits::SyntheticSpec::new("t", 6, 4, 5, 60, 0);
        let c = spec.build();
        let faults = FaultList::checkpoints(&c);
        let cfg = AtpgConfig {
            max_len: 1500,
            ..AtpgConfig::default()
        };
        let result = SequenceAtpg::new(&c, cfg).run(&faults);
        assert!(
            result.coverage() > 0.75,
            "coverage only {:.2}",
            result.coverage()
        );
    }

    #[test]
    fn empty_fault_list_terminates_immediately() {
        let c = s27::circuit();
        let result =
            SequenceAtpg::new(&c, AtpgConfig::default()).run(&FaultList::from_faults(vec![]));
        assert!(result.sequence.is_empty());
        assert_eq!(result.coverage(), 0.0);
    }
}
