//! Fibonacci linear-feedback shift registers.
//!
//! Used as the pseudo-random pattern substrate for the BIST baselines and
//! for candidate generation in the sequence ATPG. Taps come from a table
//! of maximal-length (primitive) polynomials, so an `n`-bit LFSR cycles
//! through all `2^n - 1` non-zero states.

use wbist_sim::TestSequence;

/// Converts 1-indexed polynomial tap positions to a stage bitmask for a
/// right-shifting Fibonacci LFSR: the term `x^p` of an `n`-stage register
/// taps stage bit `n - p` (so `x^n` taps the output bit 0). The register
/// width is taken from the first (largest) position.
const fn taps(positions: [u32; 4]) -> u32 {
    let n = positions[0];
    let mut mask = 0u32;
    let mut i = 0;
    while i < 4 {
        if positions[i] != 0 {
            mask |= 1 << (n - positions[i]);
        }
        i += 1;
    }
    mask
}

/// Maximal-length tap masks for widths 2..=32 (bit `i` set means stage `i`
/// participates in the feedback XOR). Tap positions are the standard
/// primitive-polynomial tables (e.g. Xilinx XAPP052 / Wikipedia's LFSR
/// table); the unit tests verify maximal period for widths up to 16.
const TAPS: [u32; 31] = [
    taps([2, 1, 0, 0]),     // 2
    taps([3, 2, 0, 0]),     // 3
    taps([4, 3, 0, 0]),     // 4
    taps([5, 3, 0, 0]),     // 5
    taps([6, 5, 0, 0]),     // 6
    taps([7, 6, 0, 0]),     // 7
    taps([8, 6, 5, 4]),     // 8
    taps([9, 5, 0, 0]),     // 9
    taps([10, 7, 0, 0]),    // 10
    taps([11, 9, 0, 0]),    // 11
    taps([12, 11, 10, 4]),  // 12
    taps([13, 12, 11, 8]),  // 13
    taps([14, 13, 12, 2]),  // 14
    taps([15, 14, 0, 0]),   // 15
    taps([16, 15, 13, 4]),  // 16
    taps([17, 14, 0, 0]),   // 17
    taps([18, 11, 0, 0]),   // 18
    taps([19, 18, 17, 14]), // 19
    taps([20, 17, 0, 0]),   // 20
    taps([21, 19, 0, 0]),   // 21
    taps([22, 21, 0, 0]),   // 22
    taps([23, 18, 0, 0]),   // 23
    taps([24, 23, 22, 17]), // 24
    taps([25, 22, 0, 0]),   // 25
    taps([26, 6, 2, 1]),    // 26
    taps([27, 5, 2, 1]),    // 27
    taps([28, 25, 0, 0]),   // 28
    taps([29, 27, 0, 0]),   // 29
    taps([30, 6, 4, 1]),    // 30
    taps([31, 28, 0, 0]),   // 31
    taps([32, 22, 2, 1]),   // 32
];

/// A Fibonacci LFSR over up to 32 stages with maximal-length taps.
///
/// The LFSR never enters the all-zero lock-up state because seeds are
/// forced non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    taps: u32,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR with `width` stages (2..=32) seeded with `seed`
    /// (forced non-zero within the register width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn new(width: u32, seed: u32) -> Self {
        assert!((2..=32).contains(&width), "LFSR width must be 2..=32");
        let mask = if width == 32 { !0 } else { (1u32 << width) - 1 };
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            width,
            taps: TAPS[(width - 2) as usize],
            state,
        }
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Shifts once and returns the output bit (the stage-0 bit before the
    /// shift).
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 != 0;
        let fb = (self.state & self.taps).count_ones() & 1;
        self.state >>= 1;
        self.state |= fb << (self.width - 1);
        out
    }

    /// Produces the next `n` bits.
    pub fn next_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Generates a pseudo-random [`TestSequence`] of `len` vectors over
    /// `num_inputs` inputs, one fresh bit per (time, input) pair.
    pub fn sequence(&mut self, num_inputs: usize, len: usize) -> TestSequence {
        let mut seq = TestSequence::new(num_inputs);
        let mut row = vec![false; num_inputs];
        for _ in 0..len {
            for slot in row.iter_mut() {
                *slot = self.next_bit();
            }
            seq.push_row(&row);
        }
        seq
    }

    /// Generates a [`TestSequence`] the way BIST hardware taps an LFSR:
    /// each cycle, input `i` reads register stage `i % width` of the
    /// *current* state, then the register shifts once. This is the
    /// stimulus an on-chip LFSR with per-input taps produces — the hybrid
    /// generator netlist of `wbist-hw` matches it bit-for-bit when seeded
    /// with 1 (the hardware's post-reset state).
    pub fn parallel_sequence(&mut self, num_inputs: usize, len: usize) -> TestSequence {
        let mut seq = TestSequence::new(num_inputs);
        let mut row = vec![false; num_inputs];
        for _ in 0..len {
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = self.state >> (i as u32 % self.width) & 1 == 1;
            }
            self.next_bit();
            seq.push_row(&row);
        }
        seq
    }
}

/// The maximal-length feedback tap mask used for `width`-stage LFSRs
/// (bit `k` set = stage `k` participates in the feedback parity). Shared
/// with the hardware generator so software and netlist LFSRs agree.
///
/// # Panics
///
/// Panics if `width` is outside `2..=32`.
pub fn tap_mask(width: u32) -> u32 {
    assert!((2..=32).contains(&width), "LFSR width must be 2..=32");
    TAPS[(width - 2) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_widths_are_maximal_length() {
        for width in 2..=16u32 {
            let mut l = Lfsr::new(width, 1);
            let start = l.state();
            let period = {
                let mut n = 0usize;
                loop {
                    l.next_bit();
                    n += 1;
                    if l.state() == start {
                        break n;
                    }
                    assert!(n <= 1 << width, "period exceeds 2^width");
                }
            };
            assert_eq!(period, (1usize << width) - 1, "width {width}");
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut l = Lfsr::new(8, 0);
        assert_ne!(l.state(), 0);
        // And it never reaches the all-zero state.
        for _ in 0..512 {
            l.next_bit();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn sequence_dimensions() {
        let mut l = Lfsr::new(16, 0xACE1);
        let s = l.sequence(5, 40);
        assert_eq!(s.len(), 40);
        assert_eq!(s.num_inputs(), 5);
    }

    #[test]
    fn bits_look_balanced() {
        let mut l = Lfsr::new(20, 12345);
        let ones = l.next_bits(10_000).iter().filter(|&&b| b).count();
        assert!((4500..5500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Lfsr::new(12, 7).next_bits(100);
        let b = Lfsr::new(12, 7).next_bits(100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_validation() {
        let _ = Lfsr::new(1, 1);
    }
}
