//! Deterministic test sequence generation for synchronous sequential
//! circuits, plus the pseudo-random substrate (LFSRs).
//!
//! The reproduced paper consumes a deterministic test sequence `T`
//! produced by STRATEGATE/SEQCOM and compacted by static compaction. Those
//! tools are not available, so this crate provides a simulation-based
//! sequence generator in the same spirit (STRATEGATE is itself a
//! simulation-based search): candidate input blocks are generated with
//! varying per-input biases, fault-simulated incrementally from the
//! current circuit state, and the block detecting the most new faults is
//! committed. A restoration-based static compactor then shortens the
//! sequence while preserving its coverage.
//!
//! The proposed method of the paper treats `T` as an opaque input and its
//! coverage guarantee is *relative to `T`*, so any deterministic sequence
//! exercises the identical code path (see `DESIGN.md` §5).
//!
//! # Example
//!
//! ```
//! use wbist_atpg::{AtpgConfig, SequenceAtpg};
//! use wbist_circuits::s27;
//! use wbist_netlist::FaultList;
//!
//! let circuit = s27::circuit();
//! let faults = FaultList::checkpoints(&circuit);
//! let result = SequenceAtpg::new(&circuit, AtpgConfig::default()).run(&faults);
//! assert!(result.coverage() > 0.9);
//! ```

pub mod compact;
pub mod generate;
pub mod lfsr;
pub mod podem;

pub use compact::{compact, CompactionConfig};
pub use generate::{AtpgConfig, AtpgResult, SequenceAtpg};
pub use lfsr::{tap_mask, Lfsr};
pub use podem::{Podem, PodemConfig, PodemResult};
