//! PODEM: deterministic combinational test generation.
//!
//! A complete branch-and-bound test generator over the primary inputs,
//! using the classic five-valued D-calculus (0, 1, X, `D` = 1/0,
//! `D'` = 0/1). It operates on *combinational* circuits — in this
//! workspace, typically the [full-scan view](wbist_netlist::transform::full_scan)
//! of a sequential circuit — and serves three purposes:
//!
//! * deterministic patterns for the scan-BIST baseline,
//! * **redundancy identification**: a fault PODEM exhausts the search
//!   space on (without a backtrack-limit abort) is combinationally
//!   untestable, which also proves it untestable in scan mode,
//! * an independent oracle for the fault simulator (every generated
//!   pattern must detect its target fault under simulation — the tests
//!   check exactly that).
//!
//! The implementation follows the textbook structure: *objective* →
//! *backtrace* to a primary-input assignment → *imply* (5-valued forward
//! simulation with the fault inserted) → check detection / D-frontier /
//! X-path, with chronological backtracking over PI decisions.

use wbist_netlist::{Circuit, Fault, FaultSite, GateId, GateKind, NetId};
use wbist_sim::Logic3;

/// A five-valued signal as a (fault-free, faulty) pair of three-valued
/// components. `D` is `(1, 0)`; `D'` is `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct V5 {
    good: Logic3,
    bad: Logic3,
}

impl V5 {
    const X: V5 = V5 {
        good: Logic3::X,
        bad: Logic3::X,
    };

    fn known(b: bool) -> V5 {
        V5 {
            good: b.into(),
            bad: b.into(),
        }
    }

    fn is_error(self) -> bool {
        self.good.conflicts(self.bad)
    }

    /// Not (yet) an error, but not fully resolved either: the net could
    /// still become an error under further assignments.
    fn is_unresolved(self) -> bool {
        !self.is_error() && (self.good == Logic3::X || self.bad == Logic3::X)
    }
}

/// The outcome of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A primary-input vector that detects the fault.
    Test(Vec<bool>),
    /// The full search space was exhausted: the fault is combinationally
    /// untestable (redundant).
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// Configuration for [`Podem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Maximum backtracks before giving up with [`PodemResult::Aborted`].
    pub max_backtracks: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            max_backtracks: 10_000,
        }
    }
}

/// Deterministic test generator for combinational circuits.
#[derive(Debug)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    config: PodemConfig,
}

impl<'c> Podem<'c> {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not levelized or contains flip-flops
    /// (run it on the full-scan view of sequential circuits).
    pub fn new(circuit: &'c Circuit, config: PodemConfig) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        assert_eq!(
            circuit.num_dffs(),
            0,
            "PODEM handles combinational circuits; use the full-scan view"
        );
        Podem { circuit, config }
    }

    /// Attempts to generate a test vector for `fault`.
    ///
    /// # Panics
    ///
    /// Panics if `fault` is not a stuck-at fault. PODEM's single-vector
    /// D-calculus has no notion of a launch cycle, so transition-delay
    /// faults are out of scope — the scan baseline that drives this
    /// generator enumerates stuck-at faults only.
    pub fn generate(&self, fault: Fault) -> PodemResult {
        let Fault::StuckAt { site, stuck } = fault else {
            panic!(
                "PODEM generates single-vector stuck-at tests; {fault} needs \
                 a sequential (launch/capture) generator"
            );
        };
        let c = self.circuit;
        let n_pi = c.num_inputs();
        // Decision stack: (pi index, value, tried_both).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut pi_vals: Vec<Option<bool>> = vec![None; n_pi];
        let mut nets = vec![V5::X; c.num_nets()];
        let mut backtracks = 0usize;

        loop {
            self.imply(&pi_vals, site, stuck, &mut nets);
            if self.detected(&nets) {
                // Fill the unassigned inputs with 0.
                return PodemResult::Test(pi_vals.iter().map(|v| v.unwrap_or(false)).collect());
            }

            let objective = self.pick_objective(site, stuck, &nets);
            let next = objective.and_then(|(net, val)| self.backtrace(net, val, &nets, &pi_vals));

            match next {
                Some((pi, val)) => {
                    stack.push((pi, val, false));
                    pi_vals[pi] = Some(val);
                }
                None => {
                    // Dead end: backtrack.
                    loop {
                        match stack.pop() {
                            None => return PodemResult::Redundant,
                            Some((pi, val, true)) => {
                                pi_vals[pi] = None;
                                let _ = val;
                            }
                            Some((pi, val, false)) => {
                                backtracks += 1;
                                if backtracks > self.config.max_backtracks {
                                    return PodemResult::Aborted;
                                }
                                stack.push((pi, !val, true));
                                pi_vals[pi] = Some(!val);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Classifies every fault of `faults`: per fault, the PODEM outcome.
    pub fn classify(&self, faults: &[Fault]) -> Vec<PodemResult> {
        faults.iter().map(|&f| self.generate(f)).collect()
    }

    /// Five-valued forward implication from the current PI assignment.
    fn imply(&self, pi_vals: &[Option<bool>], site: FaultSite, stuck: bool, nets: &mut [V5]) {
        let c = self.circuit;
        let inject_stem = |net: NetId, v: V5| -> V5 {
            if site == FaultSite::Stem(net) {
                V5 {
                    good: v.good,
                    bad: stuck.into(),
                }
            } else {
                v
            }
        };
        for (pi, &net) in c.inputs().iter().enumerate() {
            let v = match pi_vals[pi] {
                Some(b) => V5::known(b),
                None => V5::X,
            };
            nets[net.index()] = inject_stem(net, v);
        }
        for (idx, net) in nets.iter_mut().enumerate() {
            if let wbist_netlist::Driver::Const(v) = c.driver(NetId::from_index(idx)) {
                *net = inject_stem(NetId::from_index(idx), V5::known(v));
            }
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let fetch = |pin: usize| -> V5 {
                let v = nets[g.inputs[pin].index()];
                if site == (FaultSite::GatePin { gate: gid, pin }) {
                    V5 {
                        good: v.good,
                        bad: stuck.into(),
                    }
                } else {
                    v
                }
            };
            let vals: Vec<V5> = (0..g.inputs.len()).map(fetch).collect();
            let good = eval3(g.kind, vals.iter().map(|v| v.good));
            let bad = eval3(g.kind, vals.iter().map(|v| v.bad));
            nets[g.output.index()] = inject_stem(g.output, V5 { good, bad });
        }
    }

    /// Whether a fault effect has reached an observed net.
    fn detected(&self, nets: &[V5]) -> bool {
        self.circuit
            .observed_nets()
            .any(|o| nets[o.index()].is_error())
    }

    /// The next objective `(net, value)`:
    /// activation while the fault site is not sensitized, otherwise
    /// D-frontier advancement. `None` when neither exists (dead end) or
    /// no X-path remains.
    fn pick_objective(&self, site: FaultSite, stuck: bool, nets: &[V5]) -> Option<(NetId, bool)> {
        let c = self.circuit;
        // Activation: the line driving the fault site must carry ¬stuck
        // in the good machine.
        let site_net = match site {
            FaultSite::Stem(n) => n,
            FaultSite::GatePin { gate, pin } => c.gate(gate).inputs[pin],
            FaultSite::DffData(_) => unreachable!("combinational circuits have no DFFs"),
        };
        match nets[site_net.index()].good {
            Logic3::X => return Some((site_net, !stuck)),
            v if v.to_bool() == Some(stuck) => return None, // can't activate
            _ => {}
        }
        // The site is activated; check that an error actually exists at
        // the site's effective output (for a pin fault, the consuming
        // gate's output may have absorbed it).
        // Propagation: find a D-frontier gate — error on an input,
        // X on the output — and require a non-controlling value on one of
        // its X inputs.
        let mut frontier: Option<(GateId, usize)> = None;
        'gates: for &gid in c.topo_gates() {
            let g = c.gate(gid);
            if !nets[g.output.index()].is_unresolved() {
                continue;
            }
            let has_error = (0..g.inputs.len()).any(|pin| {
                let mut v = nets[g.inputs[pin].index()];
                if site == (FaultSite::GatePin { gate: gid, pin }) {
                    v.bad = stuck.into();
                }
                v.is_error()
            });
            if !has_error {
                continue;
            }
            // Prefer a frontier gate with an X-path to an output.
            if self.x_path_to_po(g.output, nets) {
                for (pin, &inp) in g.inputs.iter().enumerate() {
                    if nets[inp.index()].good == Logic3::X {
                        frontier = Some((gid, pin));
                        break 'gates;
                    }
                }
                // No steerable input on this frontier gate; keep
                // scanning.
            }
        }
        let (gid, pin) = frontier?;
        let g = self.circuit.gate(gid);
        // Objective: non-controlling value on the chosen X input.
        let value = match g.kind.controlling_value() {
            Some(cv) => !cv,
            // XOR/XNOR and single-input gates: any value sensitizes.
            None => true,
        };
        Some((g.inputs[pin], value))
    }

    /// Whether `from` reaches some observed net through X-valued nets.
    fn x_path_to_po(&self, from: NetId, nets: &[V5]) -> bool {
        let c = self.circuit;
        let mut seen = vec![false; c.num_nets()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            let v = nets[n.index()];
            if !(v.is_unresolved() || v.is_error()) && n != from {
                continue;
            }
            if c.observed_nets().any(|o| o == n) {
                return true;
            }
            for load in c.loads(n) {
                if let wbist_netlist::Load::GatePin { gate, .. } = *load {
                    stack.push(c.gate(gate).output);
                }
            }
        }
        false
    }

    /// Walks an objective back to an unassigned primary input, choosing
    /// values through inversion parity and controllability.
    fn backtrace(
        &self,
        mut net: NetId,
        mut value: bool,
        nets: &[V5],
        pi_vals: &[Option<bool>],
    ) -> Option<(usize, bool)> {
        let c = self.circuit;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > c.num_nets() + c.num_gates() + 4 {
                return None;
            }
            match c.driver(net) {
                wbist_netlist::Driver::Input(pi) => {
                    return if pi_vals[pi].is_none() {
                        Some((pi, value))
                    } else {
                        None
                    };
                }
                wbist_netlist::Driver::Const(_) => return None,
                wbist_netlist::Driver::Dff(_) => {
                    unreachable!("combinational circuits have no DFFs")
                }
                wbist_netlist::Driver::Gate(gid) => {
                    let g = c.gate(gid);
                    // Desired pre-inversion value.
                    let want = if g.kind.inverting() { !value } else { value };
                    match g.kind {
                        GateKind::Not | GateKind::Buf => {
                            net = g.inputs[0];
                            value = want;
                        }
                        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                            // The AND/OR folds are monotone, so the input
                            // target equals the desired pre-inversion
                            // output: a 0 at an AND input pulls the fold
                            // to 0, a 1 at an OR input pulls it to 1, and
                            // the opposite values are what the all-inputs
                            // case needs.
                            let x_input = g
                                .inputs
                                .iter()
                                .find(|&&i| nets[i.index()].good == Logic3::X)
                                .copied()?;
                            net = x_input;
                            value = want;
                        }
                        GateKind::Xor | GateKind::Xnor => {
                            // Parity: aim the first X input at `want`
                            // xor (known part), treating other X inputs
                            // as 0.
                            let mut acc = false;
                            let mut x_input = None;
                            for &i in &g.inputs {
                                match nets[i.index()].good.to_bool() {
                                    Some(b) => acc ^= b,
                                    None => {
                                        if x_input.is_none() {
                                            x_input = Some(i);
                                        }
                                    }
                                }
                            }
                            net = x_input?;
                            value = want ^ acc;
                        }
                    }
                }
                wbist_netlist::Driver::Undriven => return None,
            }
        }
    }
}

/// Three-valued gate evaluation over an iterator (shared with the logic
/// simulator's semantics).
fn eval3(kind: GateKind, inputs: impl Iterator<Item = Logic3>) -> Logic3 {
    let mut it = inputs;
    let first = it.next().expect("gates have at least one input");
    let folded = match kind {
        GateKind::And | GateKind::Nand => it.fold(first, Logic3::and),
        GateKind::Or | GateKind::Nor => it.fold(first, Logic3::or),
        GateKind::Xor | GateKind::Xnor => it.fold(first, Logic3::xor),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverting() {
        Logic3::not(folded)
    } else {
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_netlist::{bench_format, FaultList};
    use wbist_sim::{FaultSim, TestSequence};

    const C17: &str = r"
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn c17_all_faults_testable_and_tests_verify() {
        let c = bench_format::parse("c17", C17).unwrap();
        let faults = FaultList::checkpoints(&c);
        let podem = Podem::new(&c, PodemConfig::default());
        let sim = FaultSim::new(&c);
        for (i, &f) in faults.faults().iter().enumerate() {
            match podem.generate(f) {
                PodemResult::Test(vec) => {
                    let seq = TestSequence::from_rows(vec![vec]).unwrap();
                    let det = sim
                        .query(&FaultList::from_faults(vec![f]))
                        .sequence(&seq)
                        .detected();
                    assert!(
                        det[0],
                        "fault {i} ({}) test does not verify",
                        f.describe(&c)
                    );
                }
                other => panic!("fault {i} ({}) -> {other:?}", f.describe(&c)),
            }
        }
    }

    #[test]
    fn redundant_fault_is_proven() {
        // y = OR(a, AND(a, b)) ≡ a: the AND output stuck-at-0 is
        // undetectable.
        let c = bench_format::parse(
            "red",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(a, m)\n",
        )
        .unwrap();
        let m = c.net_by_name("m").unwrap();
        let podem = Podem::new(&c, PodemConfig::default());
        assert_eq!(
            podem.generate(Fault::sa0(FaultSite::Stem(m))),
            PodemResult::Redundant
        );
        // The stuck-at-1 on the same line IS testable (a=0, b anything →
        // y flips 0→1... requires b such that m=1: a=0 makes m=0, fault
        // forces m=1 → y = 0 OR 1 = 1 vs good 0).
        match podem.generate(Fault::sa1(FaultSite::Stem(m))) {
            PodemResult::Test(v) => assert!(!v[0], "activation needs a = 0"),
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn scan_view_of_s27_is_fully_testable() {
        let seq_c = wbist_circuits::s27::circuit();
        let scan = wbist_netlist::transform::full_scan(&seq_c).unwrap();
        let faults = FaultList::checkpoints(&scan);
        let podem = Podem::new(&scan, PodemConfig::default());
        let sim = FaultSim::new(&scan);
        let results = podem.classify(faults.faults());
        for (i, r) in results.iter().enumerate() {
            match r {
                PodemResult::Test(vec) => {
                    let f = faults.faults()[i];
                    let seq = TestSequence::from_rows(vec![vec.clone()]).unwrap();
                    assert!(
                        sim.query(&FaultList::from_faults(vec![f]))
                            .sequence(&seq)
                            .detected()[0],
                        "fault {i} test does not verify"
                    );
                }
                other => panic!("scan-view fault {i} -> {other:?}"),
            }
        }
    }

    #[test]
    fn xor_faults_get_tests() {
        let c = bench_format::parse(
            "x",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nm = XOR(a, b)\ny = XNOR(m, c)\n",
        )
        .unwrap();
        let faults = FaultList::all_lines(&c);
        let podem = Podem::new(&c, PodemConfig::default());
        let sim = FaultSim::new(&c);
        for &f in faults.faults() {
            match podem.generate(f) {
                PodemResult::Test(vec) => {
                    let seq = TestSequence::from_rows(vec![vec]).unwrap();
                    assert!(
                        sim.query(&FaultList::from_faults(vec![f]))
                            .sequence(&seq)
                            .detected()[0]
                    );
                }
                other => panic!("{}: {other:?}", f.describe(&c)),
            }
        }
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn sequential_circuits_rejected() {
        let c = wbist_circuits::s27::circuit();
        let _ = Podem::new(&c, PodemConfig::default());
    }
}
