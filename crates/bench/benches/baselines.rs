//! Baseline BIST schemes: pure LFSR, weighted random, naive 3-weight.

use criterion::{criterion_group, criterion_main, Criterion};
use wbist_circuits::s27;
use wbist_core::baseline;
use wbist_netlist::FaultList;

fn bench_baselines(c: &mut Criterion) {
    let circuit = s27::circuit();
    let faults = FaultList::checkpoints(&circuit);
    let t = s27::paper_test_sequence();
    let mut group = c.benchmark_group("baselines_s27");
    group.bench_function("pure_random_1024", |b| {
        b.iter(|| baseline::pure_random_coverage(&circuit, &faults, &[1024], 0xACE1))
    });
    group.bench_function("weighted_random_1024", |b| {
        b.iter(|| baseline::weighted_random_coverage(&circuit, &faults, &t, 1024, 7))
    });
    group.bench_function("three_weight", |b| {
        b.iter(|| baseline::three_weight_coverage(&circuit, &faults, &t, 8, 128, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
