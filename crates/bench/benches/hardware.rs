//! Hardware synthesis cost: FSM banking, two-level minimization, and
//! full Figure-1 generator construction.

use criterion::{criterion_group, criterion_main, Criterion};
use wbist_bench::{run_named, PipelineConfig};
use wbist_hw::{build_generator, generator_cost, minimize, to_verilog, FsmBank};

fn bench_hw(c: &mut Criterion) {
    let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
    let omega = run.pruned.clone();
    let l_g = 64;

    c.bench_function("fsm_bank_s27", |b| {
        b.iter(|| FsmBank::from_assignments(&omega))
    });
    c.bench_function("build_generator_s27", |b| {
        b.iter(|| build_generator(&omega, l_g).expect("synthesis succeeds"))
    });
    let gen = build_generator(&omega, l_g).expect("synthesis succeeds");
    c.bench_function("generator_cost_s27", |b| b.iter(|| generator_cost(&gen)));
    c.bench_function("verilog_emit_s27", |b| b.iter(|| to_verilog(&gen.circuit)));

    c.bench_function("qm_minimize_6var", |b| {
        let on: Vec<u32> = (0..64).filter(|x| x % 3 == 0).collect();
        let dc: Vec<u32> = (0..64).filter(|x| x % 7 == 0).collect();
        b.iter(|| minimize(6, &on, &dc))
    });
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
