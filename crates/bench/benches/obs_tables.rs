//! Observation-point trade-off (Tables 7–16) cost: greedy Ω_lim growth,
//! per-fault observable-line analysis, and set cover.

use criterion::{criterion_group, criterion_main, Criterion};
use wbist_bench::{obs_table, run_named, PipelineConfig};

fn bench_obs(c: &mut Criterion) {
    let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
    c.bench_function("obs_tradeoff_s27", |b| {
        b.iter(|| obs_table(&run, &Default::default()))
    });

    let run298 = run_named("s298", &PipelineConfig::fast()).expect("s298 exists");
    let mut group = c.benchmark_group("obs_tradeoff_s298");
    group.sample_size(10);
    group.bench_function("full", |b| {
        b.iter(|| obs_table(&run298, &Default::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
