//! The synthesis procedure itself, including the sample-first ablation
//! the paper's §4.2 motivates ("the simulation effort is the dominant
//! part of this computation; we reduce it by first simulating a sample").

use criterion::{criterion_group, criterion_main, Criterion};
use wbist_circuits::s27;
use wbist_core::{synthesize_weighted_bist, SynthesisConfig};
use wbist_netlist::FaultList;

fn bench_synthesis(c: &mut Criterion) {
    let circuit = s27::circuit();
    let t = s27::paper_test_sequence();
    let faults = FaultList::checkpoints(&circuit);
    let mut group = c.benchmark_group("synthesis_s27");
    group.bench_function("sample_first_on", |b| {
        let cfg = SynthesisConfig {
            sequence_length: 100,
            sample_first: true,
            ..SynthesisConfig::default()
        };
        b.iter(|| synthesize_weighted_bist(&circuit, &t, &faults, &cfg));
    });
    group.bench_function("sample_first_off", |b| {
        let cfg = SynthesisConfig {
            sequence_length: 100,
            sample_first: false,
            ..SynthesisConfig::default()
        };
        b.iter(|| synthesize_weighted_bist(&circuit, &t, &faults, &cfg));
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
