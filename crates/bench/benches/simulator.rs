//! Fault-simulator throughput: parallel-fault simulation cost versus
//! circuit size and sequence length (the dominant cost the paper's §4.2
//! complexity analysis identifies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbist_atpg::Lfsr;
use wbist_circuits::synthetic;
use wbist_netlist::FaultList;
use wbist_sim::{FaultSim, SimOptions};

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    for name in ["s27", "s298", "s526", "s1196"] {
        let circuit = synthetic::by_name(name).expect("known circuit");
        let faults = FaultList::checkpoints(&circuit);
        let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), 256);
        group.bench_with_input(
            BenchmarkId::new("detect_256", name),
            &(&circuit, &faults, &seq),
            |b, (circuit, faults, seq)| {
                let sim = FaultSim::new(circuit);
                b.iter(|| sim.query(faults).sequence(seq).count());
            },
        );
    }
    group.finish();
}

fn bench_detection_times(c: &mut Criterion) {
    let circuit = synthetic::by_name("s298").expect("known circuit");
    let faults = FaultList::checkpoints(&circuit);
    let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), 512);
    c.bench_function("detection_times_s298_512", |b| {
        let sim = FaultSim::new(&circuit);
        b.iter(|| sim.query(&faults).sequence(&seq).detection_times());
    });
}

fn bench_threads(c: &mut Criterion) {
    // Single-threaded vs multi-threaded batch fan-out on circuits with
    // enough faults to fill several 63-fault batches.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for name in ["s1196", "s5378"] {
        let circuit = synthetic::by_name(name).expect("known circuit");
        let faults = FaultList::checkpoints(&circuit);
        let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), 256);
        let mut group = c.benchmark_group(format!("fault_sim_threads_{name}"));
        for threads in [1usize, 2, 4, cores] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    let sim = FaultSim::with_options(&circuit, SimOptions::with_threads(threads));
                    b.iter(|| sim.query(&faults).sequence(&seq).detection_times());
                },
            );
        }
        group.finish();
    }
}

fn bench_engines(c: &mut Criterion) {
    // Levelized vs event-driven good-machine simulation, on a
    // low-activity stimulus (constant-heavy weighted sequences are the
    // event-driven engine's home turf).
    let circuit = synthetic::by_name("s526").expect("known circuit");
    let n = circuit.num_inputs();
    let mut rows = Vec::new();
    for u in 0..512usize {
        // Only one input toggles; the rest stay constant.
        rows.push((0..n).map(|i| i == 0 && u % 2 == 0).collect());
    }
    let seq = wbist_sim::TestSequence::from_rows(rows).expect("rectangular");
    let mut group = c.benchmark_group("good_sim_s526_low_activity");
    group.bench_function("levelized", |b| {
        let sim = wbist_sim::LogicSim::new(&circuit);
        b.iter(|| sim.outputs(&seq).expect("width matches"));
    });
    group.bench_function("event_driven", |b| {
        let sim = wbist_sim::EventSim::new(&circuit);
        b.iter(|| sim.outputs(&seq).expect("width matches"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_sim,
    bench_detection_times,
    bench_threads,
    bench_engines
);
criterion_main!(benches);
