//! End-to-end pipeline cost for Table-6 rows (fast configuration so the
//! bench converges; the binary `table6` produces the full-size table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbist_bench::{run_named, table6_row, PipelineConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_pipeline");
    group.sample_size(10);
    for name in ["s27", "s208", "s298"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            let cfg = PipelineConfig::fast();
            b.iter(|| {
                let run = run_named(name, &cfg).expect("known circuit");
                table6_row(&run)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
