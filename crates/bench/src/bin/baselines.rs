//! Compares the proposed weighted-sequence scheme against the BIST
//! baselines the paper positions itself against (its Section 1):
//!
//! * pure pseudo-random LFSR sequences (the no-storage schemes of
//!   \[16\]/\[17\] — no coverage guarantee),
//! * classic per-input weighted random patterns,
//! * the naive 3-weight (0 / 0.5 / 1) extension of \[10\],
//! * the proposed method (guaranteed to match `T`'s coverage).
//!
//! ```text
//! cargo run --release -p wbist-bench --bin baselines [-- options] [circuits...]
//!
//! options:
//!   --fast      reduced configuration
//! ```

use wbist_bench::{run_named, PipelineConfig};
use wbist_core::baseline;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = ["s27", "s298", "s386", "s526", "s820", "s1196"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    println!(
        "{:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "circuit", "targets", "T(det)", "random", "weighted", "3-weight", "scan", "proposed"
    );
    for name in &circuits {
        eprintln!("running {name} ...");
        let Some(run) = run_named(name, &cfg) else {
            eprintln!("  unknown circuit `{name}`, skipping");
            continue;
        };
        // Give every baseline the same total pattern budget the proposed
        // scheme uses: |Ω| · L_G cycles.
        let budget = (run.pruned.len().max(1) * cfg.sequence_length).max(1024);
        let random =
            baseline::pure_random_coverage(&run.circuit, &run.faults, &[budget], 0xBEEF)[0].1;
        let weighted = baseline::weighted_random_coverage(
            &run.circuit,
            &run.faults,
            &run.sequence,
            budget,
            0xBEEF,
        );
        let per_assignment = budget / run.pruned.len().max(1);
        let three = baseline::three_weight_coverage(
            &run.circuit,
            &run.faults,
            &run.sequence,
            8,
            per_assignment,
            0xBEEF,
        );
        let scan = baseline::scan_bist_coverage(&run.circuit, &run.faults, budget, 0xBEEF);
        let proposed = run.synthesis.detected_faults();
        println!(
            "{:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            name,
            run.faults.len(),
            run.t_detected,
            random.detected,
            weighted.detected,
            three.detected,
            scan.detected,
            proposed,
        );
    }
    println!(
        "\n(equal cycle budgets; `proposed` is guaranteed to equal `T(det)` by construction;\n         `scan` assumes full-scan conversion — high coverage, but it pays a mux per flip-flop)"
    );
}
