//! Ablation for the paper's future-work extension: does prepending
//! pure-random LFSR sessions reduce the number of stored subsequences
//! (and hence weight-FSM hardware)?
//!
//! The paper's concluding remarks conjecture: "The use of pure-random
//! sequences as part of the weight scheme … is likely to reduce the
//! number of subsequences that need to be generated." This binary
//! quantifies that claim per circuit, sweeping the number of random
//! sessions.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin hybrid_ablation [-- --fast] [circuits...]
//! ```

use wbist_atpg::{compact, SequenceAtpg};
use wbist_bench::PipelineConfig;
use wbist_circuits::synthetic;
use wbist_core::{synthesize_hybrid, synthesize_weighted_bist, HybridConfig, SynthesisConfig};
use wbist_netlist::FaultList;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = ["s27", "s298", "s344", "s386", "s526"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    println!(
        "{:<8} {:>7} | {:>10} {:>6} | {:>7} {:>10} {:>6} {:>7}",
        "circuit", "faults", "pure:subs", "seq", "random", "hyb:subs", "seq", "rnd-det"
    );
    for name in &circuits {
        let Some(circuit) = synthetic::by_name(name) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        let faults = FaultList::checkpoints(&circuit);
        let atpg = SequenceAtpg::new(&circuit, cfg.atpg.clone()).run(&faults);
        let t = match &cfg.compaction {
            Some(cc) => compact(&circuit, &faults, &atpg.sequence, cc),
            None => atpg.sequence.clone(),
        };
        let syn = SynthesisConfig {
            sequence_length: cfg.sequence_length.max(t.len() + 1),
            ..SynthesisConfig::default()
        };

        let pure = synthesize_weighted_bist(&circuit, &t, &faults, &syn);
        for random_sessions in [2usize, 4, 8] {
            let hybrid = synthesize_hybrid(
                &circuit,
                &t,
                &faults,
                &HybridConfig {
                    random_sessions,
                    synthesis: syn.clone(),
                    ..HybridConfig::default()
                },
            );
            assert!(
                hybrid.coverage_guaranteed(),
                "{name}: hybrid lost the guarantee"
            );
            println!(
                "{:<8} {:>7} | {:>10} {:>6} | {:>7} {:>10} {:>6} {:>7}",
                name,
                faults.len(),
                pure.distinct_subsequences().len(),
                pure.omega.len(),
                random_sessions,
                hybrid.synthesis.distinct_subsequences().len(),
                hybrid.synthesis.omega.len(),
                hybrid.random_count(),
            );
        }
    }
}
