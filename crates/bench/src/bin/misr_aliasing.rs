//! MISR aliasing study: how much coverage does signature compaction
//! lose, as a function of the MISR width and the capture window?
//!
//! The paper's architecture (Figure 1) covers stimulus generation; any
//! deployment also compacts responses. This experiment runs the full
//! BIST session with the synthesized weight assignments and compares
//! cycle-accurate observation against signature comparison.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin misr_aliasing [-- --fast] [circuits...]
//! ```

use wbist_bench::{run_named, PipelineConfig};
use wbist_core::{run_bist_session, SessionConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = vec!["s27".to_string(), "s298".to_string()];
    }

    println!(
        "{:<8} {:>5} {:>8} {:>9} {:>9} {:>7} {:>7}",
        "circuit", "misr", "capture", "observed", "signed", "lost", "goldenX"
    );
    for name in &circuits {
        let Some(run) = run_named(name, &cfg) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        if run.pruned.is_empty() {
            eprintln!("{name}: empty Ω, skipping");
            continue;
        }
        for misr_width in [8usize, 16, 32] {
            for capture_from in [0usize, 8, 32] {
                let report = run_bist_session(
                    &run.circuit,
                    &run.faults,
                    &run.pruned,
                    &SessionConfig {
                        misr_width,
                        sequence_length: run.synthesis.sequence_length.min(256),
                        capture_from,
                        run: cfg.run.clone(),
                    },
                );
                println!(
                    "{:<8} {:>5} {:>8} {:>9} {:>9} {:>7} {:>7}",
                    name,
                    misr_width,
                    capture_from,
                    report.observed(),
                    report.signed(),
                    report.lost_in_signature,
                    if report.golden_known { "no" } else { "yes" }
                );
            }
        }
    }
    println!("\n(`lost` = observable at the outputs but not provably different in the signature —\n aliasing plus X-masking; a capture window past initialization removes the X losses)");
}
