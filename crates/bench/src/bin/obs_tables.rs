//! Regenerates the paper's Tables 7–16: the observation-point
//! insertion trade-off.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin obs_tables [-- options] [circuits...]
//!
//! options:
//!   --fast        reduced configuration
//!   --lg N        override L_G
//!   --all-rows    print every Ω_lim size (default: rows reaching ≥99%
//!                 final fault efficiency, like the paper)
//! ```
//!
//! Default circuits are the ones the paper reports: s208, s298, s344,
//! s386, s400, s420, s526, s641, s1423 (s5378 takes longer; pass it
//! explicitly).

use wbist_bench::{format_obs_table, obs_table, run_named, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    if let Some(pos) = args.iter().position(|a| a == "--lg") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            cfg.sequence_length = n;
        }
    }
    let all_rows = args.iter().any(|a| a == "--all-rows");

    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = [
            "s208", "s298", "s344", "s386", "s400", "s420", "s526", "s641", "s1423",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for (k, name) in circuits.iter().enumerate() {
        eprintln!("running {name} ...");
        let Some(run) = run_named(name, &cfg) else {
            eprintln!("  unknown circuit `{name}`, skipping");
            continue;
        };
        let mut tr = obs_table(&run, &cfg.run);
        if !all_rows {
            // The paper only reports rows whose final fault efficiency is
            // at least 99%.
            tr.rows.retain(|r| r.fe_with_obs >= 99.0);
        }
        println!("\nTable {}: Observation point insertion for {name}", 7 + k);
        print!("{}", format_obs_table(name, &tr));
    }
}
