//! Walks through the paper's worked example (its Section 2 and Tables
//! 1–5) on the exact ISCAS-89 `s27`, printing each artifact next to the
//! published values.

use wbist_circuits::s27;
use wbist_core::{CandidateSets, WeightSet};
use wbist_netlist::FaultList;
use wbist_sim::FaultSim;

fn main() {
    let c = s27::circuit();
    let t = s27::paper_test_sequence();
    let faults = FaultList::checkpoints(&c);
    let sim = FaultSim::new(&c);

    println!("Table 1: deterministic test sequence T for s27");
    println!("  u | i=0 i=1 i=2 i=3");
    for u in 0..t.len() {
        let row: Vec<&str> = t
            .row(u)
            .iter()
            .map(|&b| if b { "1" } else { "0" })
            .collect();
        println!("  {u} |  {}", row.join("   "));
    }

    let times = sim.query(&faults).sequence(&t).detection_times();
    let detected = times.iter().filter(|x| x.is_some()).count();
    println!(
        "\nT detects {detected}/{} checkpoint faults (paper: all 32).",
        faults.len()
    );
    let at9: Vec<String> = faults
        .iter()
        .zip(&times)
        .filter(|&(_, &u)| u == Some(9))
        .map(|(f, _)| f.describe(&c))
        .collect();
    println!("Faults detected at u = 9 (paper: f10, f12): {at9:?}");

    println!("\nTable 4: the weight set S of all subsequences with L_S <= 3");
    let s = WeightSet::all_up_to(3);
    let entries: Vec<String> = s.iter().map(|(j, a)| format!("({j}){a}")).collect();
    println!("  {}", entries.join(" "));

    println!("\nTable 5: candidate sets A_i at u = 9");
    let sets = CandidateSets::build(&s, &t, 9, 3);
    for i in 0..4 {
        let items: Vec<String> = sets
            .set(i)
            .iter()
            .map(|cand| format!("({}){} n_m={}", cand.index, s.get(cand.index), cand.matches))
            .collect();
        println!("  A_{i}: {}", items.join(", "));
    }

    let w0 = sets.assignment_at(&s, 0).expect("sets are non-empty");
    println!("\nRank-0 weight assignment (paper: {{01, 0, 100, 1}}): {w0}");
    let tg = w0.generate(12);
    println!("\nTable 2: weighted sequence T_G (12 time units)");
    for u in 0..tg.len() {
        let row: Vec<&str> = tg
            .row(u)
            .iter()
            .map(|&b| if b { "1" } else { "0" })
            .collect();
        println!("  {u:>2} |  {}", row.join("   "));
    }
    let tg_det = sim.query(&faults).sequence(&tg).count();
    println!("\nT_G detects {tg_det} faults (paper: 9 — f10 plus eight more).");

    let w1 = sets.assignment_at(&s, 1).expect("sets are non-empty");
    println!("Second-best assignment (paper: {{100, 00, 01, 100}}): {w1}");
    let extra = {
        let tg1 = w1.generate(12);
        let d0 = sim.query(&faults).sequence(&tg).detected();
        let d1 = sim.query(&faults).sequence(&tg1).detected();
        d0.iter().zip(&d1).filter(|&(&a, &b)| !a && b).count()
    };
    println!("It detects {extra} additional faults (paper: 4).");
}
