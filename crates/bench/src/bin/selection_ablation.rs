//! Ablation of the §4.1 design choices of the selection procedure:
//!
//! * **candidate ordering** — the paper ranks each `A_i` by decreasing
//!   total match count `n_m` and argues this maximizes per-sequence
//!   detections; alternatives: longest-first, shortest-first, unsorted;
//! * **full-length fix-up** — prepending an all-length-`L_S` rank when
//!   none exists (this is what makes the coverage guarantee provable).
//!
//! For each variant the ablation reports the number of weight
//! assignments, distinct subsequences, maximum subsequence length and
//! whether the guarantee was reached.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin selection_ablation [-- --fast] [circuits...]
//! ```

use wbist_atpg::{compact, SequenceAtpg};
use wbist_bench::PipelineConfig;
use wbist_circuits::synthetic;
use wbist_core::{synthesize_weighted_bist, CandidateOrdering, SynthesisConfig};
use wbist_netlist::FaultList;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = ["s27", "s298", "s386", "s526"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let variants: [(&str, CandidateOrdering, bool); 5] = [
        ("paper (n_m, fixup)", CandidateOrdering::MatchCount, true),
        ("n_m, no fixup", CandidateOrdering::MatchCount, false),
        ("longest-first", CandidateOrdering::LongestFirst, true),
        ("shortest-first", CandidateOrdering::ShortestFirst, true),
        ("unsorted", CandidateOrdering::InsertionOrder, true),
    ];

    println!(
        "{:<8} {:<20} {:>5} {:>6} {:>6} {:>6} {:>10}",
        "circuit", "variant", "seq", "subs", "maxlen", "simLG", "guarantee"
    );
    for name in &circuits {
        let Some(circuit) = synthetic::by_name(name) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        let faults = FaultList::checkpoints(&circuit);
        let atpg = SequenceAtpg::new(&circuit, cfg.atpg.clone()).run(&faults);
        let t = match &cfg.compaction {
            Some(cc) => compact(&circuit, &faults, &atpg.sequence, cc),
            None => atpg.sequence.clone(),
        };
        for (label, ordering, fixup) in variants {
            let syn = SynthesisConfig {
                sequence_length: cfg.sequence_length.max(t.len() + 1),
                ordering,
                full_length_fixup: fixup,
                ..SynthesisConfig::default()
            };
            let r = synthesize_weighted_bist(&circuit, &t, &faults, &syn);
            println!(
                "{:<8} {:<20} {:>5} {:>6} {:>6} {:>6} {:>10}",
                name,
                label,
                r.omega.len(),
                r.distinct_subsequences().len(),
                r.max_subsequence_len(),
                syn.sequence_length,
                if r.coverage_guaranteed() {
                    "met"
                } else {
                    "MISSED"
                }
            );
        }
    }
}
