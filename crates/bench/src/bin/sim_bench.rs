//! Fault-simulator throughput benchmark: faults × cycles per second at
//! varying worker-thread counts, emitted as JSON for `scripts/bench_sim.sh`.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin sim_bench [-- options]
//!
//! options:
//!   --circuits a,b,c   comma-separated circuit names (default
//!                      s1196,s5378; add s35932 for the largest stand-in)
//!   --cycles N         sequence length per measurement (default 256)
//!   --threads a,b,c    thread counts to measure (default 1,2,4,<cores>;
//!                      collapses to 1 on single-core hosts)
//!   --thread-sweep     measure the multi-thread rows even when the host
//!                      has a single core
//!   --word-widths a,b,c  fault-plane word widths to measure: 64, 128
//!                      and/or 256 (default 64; 256 needs the `w256`
//!                      build feature). Detection counts are
//!                      width-invariant, so `--golden` applies at every
//!                      width; widths unavailable in this build emit a
//!                      `skipped_reason` row instead of failing
//!   --kernel K         simulation kernel: compiled (default) or
//!                      reference (the full-walk differential oracle)
//!   --fault-model M    fault model: stuck-at (default) or transition
//!   --reps N           repetitions per measurement; the fastest is
//!                      reported (default 3)
//!   --golden           verify detection counts against the committed
//!                      golden values (128-cycle runs) and exit non-zero
//!                      on any deviation
//!   --max-wall-secs S  stop measuring once S seconds of wall clock have
//!                      elapsed; rows finished so far are still emitted
//!   --max-fault-cycles N  stop once N live fault-cycles have been
//!                      simulated across all measurements
//!   -o FILE            write the JSON there instead of stdout
//!
//! exit codes: 0 complete, 2 budget truncated (rows emitted so far are
//! valid), 1 usage error, I/O failure or golden mismatch
//! ```
//!
//! Each row reports two throughput figures: `fault_cycles_per_sec` is
//! the *nominal* rate (`faults * cycles / seconds`, comparable across
//! tools), while `effective_fault_cycles_per_sec` divides by the live
//! fault-cycles actually simulated (early exits and detected-fault drops
//! excluded), taken from the deterministic `sim.fault_cycles` telemetry
//! counter. `speedup_vs_seed` compares the 1-thread, 128-cycle rows
//! against the committed pre-compiled-kernel baseline.

use std::time::Instant;
use wbist_atpg::Lfsr;
use wbist_bench::Json;
use wbist_circuits::synthetic;
use wbist_netlist::{FaultModel, FaultUniverse};
use wbist_sim::{Budget, CancelToken, FaultSim, SimOptions, Telemetry, WordWidth};

/// Seed-era (full-circuit-walk kernel) 1-thread seconds at 128 cycles,
/// recorded before the compiled kernel landed. `speedup_vs_seed` in the
/// emitted rows is measured against these.
const SEED_SECONDS_128: &[(&str, f64)] = &[
    ("s1196", 0.043319865),
    ("s5378", 1.168868837),
    ("s35932", 59.570927134),
];

/// Golden detection counts at 128 cycles, keyed by fault model. Any
/// kernel, any thread count and any repetition must reproduce these
/// exactly; `--golden` turns a deviation into a non-zero exit for CI.
const GOLDEN_DETECTED_128: &[(FaultModel, &str, u64)] = &[
    (FaultModel::StuckAt, "s1196", 1325),
    (FaultModel::StuckAt, "s5378", 6190),
    (FaultModel::StuckAt, "s35932", 33560),
    (FaultModel::TransitionDelay, "s1196", 1103),
    (FaultModel::TransitionDelay, "s5378", 4905),
];

fn parse_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Last occurrence wins so callers (scripts/bench_sim.sh) can supply
    // defaults ahead of user arguments.
    let opt = |key: &str| -> Option<String> {
        args.iter()
            .rposition(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let flag = |key: &str| -> bool { args.iter().any(|a| a == key) };
    let circuits = opt("--circuits")
        .map(|s| parse_list(&s))
        .unwrap_or_else(|| vec!["s1196".to_string(), "s5378".to_string()]);
    let cycles: usize = opt("--cycles").and_then(|s| s.parse().ok()).unwrap_or(256);
    let reps: usize = opt("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let reference_kernel = match opt("--kernel").as_deref() {
        None | Some("compiled") => false,
        Some("reference") => true,
        Some(other) => {
            eprintln!("unknown kernel `{other}` (expected compiled or reference)");
            std::process::exit(1);
        }
    };
    let model = match opt("--fault-model") {
        None => FaultModel::StuckAt,
        Some(s) => match FaultModel::parse(&s) {
            Some(m) => m,
            None => {
                eprintln!("unknown fault model `{s}` (expected stuck-at or transition)");
                std::process::exit(1);
            }
        },
    };
    let golden = flag("--golden");
    let mut budget = Budget::unlimited();
    if let Some(s) = opt("--max-wall-secs") {
        match s.parse::<f64>() {
            Ok(secs) if !(secs.is_nan() || secs <= 0.0) => budget = budget.wall_secs(secs),
            _ => {
                eprintln!("--max-wall-secs needs a positive number, got `{s}`");
                std::process::exit(1);
            }
        }
    }
    if let Some(s) = opt("--max-fault-cycles") {
        match s.parse::<u64>() {
            Ok(n) if n > 0 => budget = budget.fault_cycles(n),
            _ => {
                eprintln!("--max-fault-cycles needs a positive integer, got `{s}`");
                std::process::exit(1);
            }
        }
    }
    let token = CancelToken::for_budget(&budget);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A single-core host cannot say anything about scaling — the
    // multi-thread rows only measure scheduler overhead — so the default
    // sweep collapses to the 1-thread row there unless --thread-sweep
    // insists. The collapsed counts are not silently dropped: each emits
    // an explicit `skipped_reason` row.
    let (threads, skipped_threads): (Vec<usize>, Vec<usize>) = match opt("--threads") {
        Some(s) => (
            parse_list(&s)
                .iter()
                .filter_map(|t| t.parse().ok())
                .filter(|&t| t >= 1)
                .collect(),
            Vec::new(),
        ),
        None => {
            let mut v = vec![1, 2, 4, cores];
            v.sort_unstable();
            v.dedup();
            if cores == 1 && !flag("--thread-sweep") {
                (vec![1], v.into_iter().filter(|&t| t != 1).collect())
            } else {
                (v, Vec::new())
            }
        }
    };
    // Widths unavailable in this build (256 without the `w256` feature)
    // become `skipped_reason` rows rather than hard errors, so one sweep
    // invocation works on every build.
    let word_widths: Vec<(u64, Result<WordWidth, String>)> = match opt("--word-widths") {
        Some(s) => parse_list(&s)
            .iter()
            .map(|w| (w.parse().unwrap_or(0), WordWidth::parse(w)))
            .collect(),
        None => vec![(64, Ok(WordWidth::W64))],
    };

    let kernel_name = if reference_kernel {
        "reference"
    } else {
        "compiled"
    };
    let mut golden_failures = 0usize;
    let mut truncated = None;
    let mut rows = Vec::new();
    'measure: for name in &circuits {
        let Some(circuit) = synthetic::by_name(name) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        let faults = FaultUniverse::checkpoints(model, &circuit);
        let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), cycles);
        let seed_secs = SEED_SECONDS_128
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, s)| s)
            .filter(|_| cycles == 128);
        for (asked_bits, parsed) in &word_widths {
            let width = match parsed {
                Ok(w) => *w,
                Err(reason) => {
                    rows.push(Json::obj(vec![
                        ("circuit", name.as_str().into()),
                        ("word_width", (*asked_bits).into()),
                        ("available_cores", cores.into()),
                        ("skipped_reason", reason.as_str().into()),
                    ]));
                    continue;
                }
            };
            let mut baseline_secs = None;
            for &t in &threads {
                let options = SimOptions::with_threads(t)
                    .word_width(width)
                    .reference_kernel(reference_kernel);
                let sim = FaultSim::with_options(&circuit, options).cancel(token.clone());
                // Warm up once, then keep the fastest of `reps` runs — the
                // usual least-noise estimator for throughput numbers.
                let detected = sim.query(&faults).sequence(&seq).count();
                if let Some(reason) = token.cancelled() {
                    truncated = Some(reason);
                    break 'measure;
                }
                // One untimed instrumented run attributes the work: actual
                // cycles simulated (early exits included), batches, drops,
                // live fault-cycles and gate-evaluation effort.
                let tel = Telemetry::enabled();
                let attributed = FaultSim::with_options(&circuit, options)
                    .telemetry(tel.clone())
                    .cancel(token.clone());
                std::hint::black_box(attributed.query(&faults).sequence(&seq).count());
                let secs = (0..reps)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(sim.query(&faults).sequence(&seq).count());
                        start.elapsed().as_secs_f64()
                    })
                    .fold(f64::INFINITY, f64::min);
                // A budget trip mid-measurement leaves this row's timings
                // describing partial runs; drop the row, keep the earlier
                // complete ones.
                if let Some(reason) = token.cancelled() {
                    truncated = Some(reason);
                    break 'measure;
                }
                let baseline = *baseline_secs.get_or_insert(secs);
                let work = (faults.len() * cycles) as f64;
                let live_work = tel.counter("sim.fault_cycles") as f64;
                eprintln!(
                "{name}: {} {} faults x {cycles} cycles, {t} thread(s), w{}, {kernel_name}: {:.1} ms ({:.2}x, {:.0} nominal / {:.0} effective fault-cycles/s)",
                faults.len(),
                model.name(),
                width.bits(),
                secs * 1e3,
                baseline / secs,
                work / secs,
                live_work / secs
            );
                if golden {
                    if let Some(&(_, _, want)) = GOLDEN_DETECTED_128
                        .iter()
                        .find(|&&(m, n, _)| m == model && n == name)
                    {
                        if cycles == 128 && detected as u64 != want {
                            eprintln!(
                            "GOLDEN MISMATCH: {name} detected {detected}, committed value is {want}"
                        );
                            golden_failures += 1;
                        }
                    }
                }
                let mut fields = vec![
                    ("circuit", name.as_str().into()),
                    ("faults", faults.len().into()),
                    ("cycles", cycles.into()),
                    ("threads", t.into()),
                    ("word_width", u64::from(width.bits()).into()),
                    ("available_cores", cores.into()),
                    ("kernel", kernel_name.into()),
                    ("fault_model", model.name().into()),
                    ("detected", detected.into()),
                    ("seconds", secs.into()),
                    ("fault_cycles_per_sec", (work / secs).into()),
                    ("effective_fault_cycles_per_sec", (live_work / secs).into()),
                    ("speedup_vs_1_thread", (baseline / secs).into()),
                    ("cycles_simulated", tel.counter("sim.cycles").into()),
                    ("batches", tel.counter("sim.batches").into()),
                    ("faults_dropped", tel.counter("sim.faults_dropped").into()),
                    ("gates_evaluated", tel.counter("sim.gates_evaluated").into()),
                    ("gates_skipped", tel.counter("sim.gates_skipped").into()),
                ];
                if let (Some(seed), 1) = (seed_secs, t) {
                    fields.push(("speedup_vs_seed", (seed / secs).into()));
                }
                rows.push(Json::obj(fields));
            }
            for &t in &skipped_threads {
                rows.push(Json::obj(vec![
                    ("circuit", name.as_str().into()),
                    ("threads", t.into()),
                    ("word_width", u64::from(width.bits()).into()),
                    ("available_cores", cores.into()),
                    (
                        "skipped_reason",
                        "single-core host: multi-thread rows measure scheduler overhead, \
                     not scaling (pass --thread-sweep to force)"
                            .into(),
                    ),
                ]));
            }
        }
    }

    let mut doc_fields = vec![
        ("bench", "sim".into()),
        ("available_cores", cores.into()),
        ("kernel", kernel_name.into()),
        ("fault_model", model.name().into()),
    ];
    if let Some(reason) = truncated {
        doc_fields.push(("truncated", Json::Str(reason.to_string())));
    }
    doc_fields.push(("rows", Json::Array(rows)));
    let doc = Json::obj(doc_fields);
    let text = doc.render_pretty();
    match opt("-o") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
                eprintln!("error: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
    if let Some(reason) = truncated {
        // Fail fast before the golden verdict: a truncated run's
        // detection counts are partial, so comparing them against the
        // committed values would only report spurious deviations.
        if golden {
            eprintln!("golden comparison skipped: run truncated ({reason}); partial detection counts are not comparable");
        }
        eprintln!("sim_bench: run truncated: {reason} (rows emitted so far are complete)");
        std::process::exit(2);
    }
    if golden_failures > 0 {
        eprintln!("{golden_failures} golden detection mismatch(es)");
        std::process::exit(1);
    }
}
