//! Fault-simulator throughput benchmark: faults × cycles per second at
//! varying worker-thread counts, emitted as JSON for `scripts/bench_sim.sh`.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin sim_bench [-- options]
//!
//! options:
//!   --circuits a,b,c   comma-separated circuit names (default
//!                      s1196,s5378; add s35932 for the largest stand-in)
//!   --cycles N         sequence length per measurement (default 256)
//!   --threads a,b,c    thread counts to measure (default 1,2,4,<cores>)
//!   --reps N           repetitions per measurement; the fastest is
//!                      reported (default 3)
//!   -o FILE            write the JSON there instead of stdout
//! ```

use std::time::Instant;
use wbist_atpg::Lfsr;
use wbist_bench::Json;
use wbist_circuits::synthetic;
use wbist_netlist::FaultList;
use wbist_sim::{FaultSim, SimOptions, Telemetry};

fn parse_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Last occurrence wins so callers (scripts/bench_sim.sh) can supply
    // defaults ahead of user arguments.
    let opt = |key: &str| -> Option<String> {
        args.iter()
            .rposition(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let circuits = opt("--circuits")
        .map(|s| parse_list(&s))
        .unwrap_or_else(|| vec!["s1196".to_string(), "s5378".to_string()]);
    let cycles: usize = opt("--cycles").and_then(|s| s.parse().ok()).unwrap_or(256);
    let reps: usize = opt("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: Vec<usize> = match opt("--threads") {
        Some(s) => parse_list(&s)
            .iter()
            .filter_map(|t| t.parse().ok())
            .filter(|&t| t >= 1)
            .collect(),
        None => {
            let mut v = vec![1, 2, 4, cores];
            v.sort_unstable();
            v.dedup();
            v
        }
    };

    let mut rows = Vec::new();
    for name in &circuits {
        let Some(circuit) = synthetic::by_name(name) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        let faults = FaultList::checkpoints(&circuit);
        let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), cycles);
        let mut baseline_secs = None;
        for &t in &threads {
            let sim = FaultSim::with_options(&circuit, SimOptions::with_threads(t));
            // Warm up once, then keep the fastest of `reps` runs — the
            // usual least-noise estimator for throughput numbers.
            let detected = sim.count_detected(&faults, &seq);
            // One untimed instrumented run attributes the work: actual
            // cycles simulated (early exits included), batches, drops.
            let tel = Telemetry::enabled();
            let attributed = FaultSim::with_options(&circuit, SimOptions::with_threads(t))
                .telemetry(tel.clone());
            std::hint::black_box(attributed.count_detected(&faults, &seq));
            let secs = (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(sim.count_detected(&faults, &seq));
                    start.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            let baseline = *baseline_secs.get_or_insert(secs);
            let work = (faults.len() * cycles) as f64;
            eprintln!(
                "{name}: {} faults x {cycles} cycles, {t} thread(s): {:.1} ms ({:.2}x, {:.0} fault-cycles/s)",
                faults.len(),
                secs * 1e3,
                baseline / secs,
                work / secs
            );
            rows.push(Json::obj(vec![
                ("circuit", name.as_str().into()),
                ("faults", faults.len().into()),
                ("cycles", cycles.into()),
                ("threads", t.into()),
                ("detected", detected.into()),
                ("seconds", secs.into()),
                ("fault_cycles_per_sec", (work / secs).into()),
                ("speedup_vs_1_thread", (baseline / secs).into()),
                ("cycles_simulated", tel.counter("sim.cycles").into()),
                ("batches", tel.counter("sim.batches").into()),
                ("faults_dropped", tel.counter("sim.faults_dropped").into()),
            ]));
        }
    }

    let doc = Json::obj(vec![
        ("bench", "sim".into()),
        ("available_cores", cores.into()),
        ("rows", Json::Array(rows)),
    ]);
    let text = doc.render_pretty();
    match opt("-o") {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("writable output path");
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
