//! Selection-loop synthesis benchmark: wall-clock and candidates per
//! second across speculation widths, emitted as JSON for
//! `scripts/bench_select.sh`.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin synth_bench [-- options]
//!
//! options:
//!   --circuits a,b,c   comma-separated circuit names (default
//!                      s1196,s5378; add s35932 for the largest stand-in)
//!   --t-len N          length of the deterministic sequence T (default 48)
//!   --lg N             generated-sequence length L_G (default 64)
//!   --keep-every N     keep every N-th fault as a synthesis target and
//!                      mark the rest already detected (default per
//!                      circuit: s1196 5, s5378 60, s35932 600)
//!   --widths a,b,c     speculation wavefront widths to measure (default
//!                      1,4,8; collapses to 1 on single-core hosts)
//!   --width-sweep      measure the speculative rows even when the host
//!                      has a single core
//!   --threads N        simulation worker threads (default all cores)
//!   --word-width W     fault-plane word width: 64 (default), 128 or 256
//!                      (256 needs the `w256` build feature). The walk
//!                      is bit-identical at every width, so `--golden`
//!                      applies unchanged
//!   --fault-model M    fault model: stuck-at (default) or transition
//!   --reps N           repetitions per row; the fastest is reported
//!                      (default 1 — a synthesis run is long enough)
//!   --golden           verify Ω size and target coverage against the
//!                      committed golden values (default configuration
//!                      only) and exit non-zero on any deviation
//!   --no-prefix-cache  disable the prefix-trace cache (the results must
//!                      be bit-identical either way; CI asserts it)
//!   --no-cone-seeding  disable cone-seeded good-trace resume; resumed
//!                      rebuilds re-evaluate every suffix gate (results
//!                      are bit-identical either way; CI asserts it)
//!   -o FILE            write the JSON there instead of stdout
//!
//! exit codes: 0 complete, 1 usage error, I/O failure or golden mismatch
//! ```
//!
//! Every row must agree with the width-1 row of the same circuit on Ω,
//! detection flags and the deterministic counters — speculation is a
//! wall-clock optimization only — and the benchmark enforces that
//! invariant on every run, not just under `--golden`. `candidates_per_sec`
//! divides the deterministic `select.candidates_tried` counter by the
//! wall clock; `prefix_hits`/`cycles_skipped` report the prefix-trace
//! cache's reuse, and the speculation launch/waste figures come from the
//! same width-dependent effort space. `cone_seeded`,
//! `trace_gates_evaluated` and `gates_rescanned_saved` report the
//! cone-seeded good-trace rebuilds (how many resumed evaluations were
//! spatially incremental, the suffix gates they evaluated, and the
//! gates a full per-cycle rescan would have added); `snapshot_spills`
//! and `snapshot_bytes` count compressed faulty-plane snapshots on
//! dense queries past the raw capture cap, and
//! `snapshot_capture_denied` counts dense evaluations past even the
//! spill cap (deterministic, unlike the effort figures).
//! `speedup_vs_width_1` is null when
//! `--threads` oversubscribes the host (`threads > available_cores`):
//! the width-1 baseline then measures contention, not work.

use std::time::Instant;
use wbist_atpg::Lfsr;
use wbist_bench::Json;
use wbist_circuits::synthetic;
use wbist_core::{RunOptions, Synthesis, SynthesisConfig, SynthesisResult, Telemetry};
use wbist_netlist::{FaultModel, FaultUniverse};
use wbist_sim::WordWidth;

/// Default target subsampling per circuit: every `keep_every`-th fault
/// stays a target. Chosen so a full synthesis walk finishes in seconds
/// while still exercising hundreds of candidate evaluations. The
/// s35932 value is dense enough (~6000 targets) that the first
/// segments' dense queries exceed the raw snapshot-capture cap
/// (`batches × flip-flops > 2^16`), so the committed rows exercise the
/// compressed spill tier.
const DEFAULT_KEEP_EVERY: &[(&str, usize)] = &[("s1196", 5), ("s5378", 60), ("s35932", 10)];

/// Golden Ω sizes and detected-target counts at the default
/// configuration (`--t-len 48 --lg 64`, default `--keep-every`). The
/// walk is bit-identical at every speculation width and worker count,
/// so one committed value per circuit pins them all; `--golden` turns a
/// deviation into a non-zero exit for CI.
const GOLDEN_DEFAULT_CONFIG: &[(FaultModel, &str, u64, u64)] = &[
    // (fault model, circuit, omega_len, targets_detected)
    (FaultModel::StuckAt, "s1196", 36, 212),
    (FaultModel::StuckAt, "s5378", 31, 74),
    (FaultModel::TransitionDelay, "s1196", 33, 154),
    (FaultModel::TransitionDelay, "s5378", 24, 56),
];

/// A run's identity-relevant products: the synthesis result, the
/// deterministic counter snapshot, and the wall-clock seconds.
type Baseline = (SynthesisResult, Vec<(String, u64)>, f64);

fn parse_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Last occurrence wins so callers (scripts/bench_select.sh) can
    // supply defaults ahead of user arguments.
    let opt = |key: &str| -> Option<String> {
        args.iter()
            .rposition(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let flag = |key: &str| -> bool { args.iter().any(|a| a == key) };
    let circuits = opt("--circuits")
        .map(|s| parse_list(&s))
        .unwrap_or_else(|| vec!["s1196".to_string(), "s5378".to_string()]);
    let t_len: usize = opt("--t-len").and_then(|s| s.parse().ok()).unwrap_or(48);
    let lg: usize = opt("--lg").and_then(|s| s.parse().ok()).unwrap_or(64);
    let keep_override: Option<usize> = opt("--keep-every").and_then(|s| s.parse().ok());
    let reps: usize = opt("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let model = match opt("--fault-model") {
        None => FaultModel::StuckAt,
        Some(s) => match FaultModel::parse(&s) {
            Some(m) => m,
            None => {
                eprintln!("unknown fault model `{s}` (expected stuck-at or transition)");
                std::process::exit(1);
            }
        },
    };
    let golden = flag("--golden");
    let no_prefix_cache = flag("--no-prefix-cache");
    let no_cone_seeding = flag("--no-cone-seeding");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = opt("--threads")
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(cores);
    let word_width = match opt("--word-width") {
        None => WordWidth::W64,
        Some(s) => match WordWidth::parse(&s) {
            Ok(w) => w,
            Err(reason) => {
                eprintln!("{reason}");
                std::process::exit(1);
            }
        },
    };
    // On a single core the speculative rows only measure scheduling
    // overhead — the wavefront evaluates inline — so the default sweep
    // collapses to the width-1 baseline unless --width-sweep insists
    // (mirroring sim_bench's --thread-sweep). The collapsed widths are
    // not silently dropped: each emits an explicit `skipped_reason` row.
    let (widths, skipped_widths): (Vec<usize>, Vec<usize>) = match opt("--widths") {
        Some(s) => (
            parse_list(&s)
                .iter()
                .filter_map(|w| w.parse().ok())
                .filter(|&w| w >= 1)
                .collect(),
            Vec::new(),
        ),
        None if cores == 1 && !flag("--width-sweep") => (vec![1], vec![4, 8]),
        None => (vec![1, 4, 8], Vec::new()),
    };
    if widths.is_empty() {
        eprintln!("--widths needs at least one positive integer");
        std::process::exit(1);
    }
    let default_config = t_len == 48 && lg == 64 && keep_override.is_none();
    if golden && !default_config {
        eprintln!(
            "--golden pins the default configuration; drop --t-len/--lg/--keep-every overrides"
        );
        std::process::exit(1);
    }

    let mut golden_failures = 0usize;
    let mut identity_failures = 0usize;
    let mut rows = Vec::new();
    for name in &circuits {
        let Some(circuit) = synthetic::by_name(name) else {
            eprintln!("unknown circuit `{name}`, skipping");
            continue;
        };
        let faults = FaultUniverse::checkpoints(model, &circuit);
        let seq = Lfsr::new(24, 0xACE1).sequence(circuit.num_inputs(), t_len);
        let keep_every = keep_override
            .or_else(|| {
                DEFAULT_KEEP_EVERY
                    .iter()
                    .find(|&&(n, _)| n == name)
                    .map(|&(_, k)| k)
            })
            .unwrap_or(20);
        let pre: Vec<bool> = (0..faults.len()).map(|i| i % keep_every != 0).collect();
        let targets = pre.iter().filter(|&&d| !d).count();

        let run_at = |width: usize| -> (SynthesisResult, Telemetry, f64) {
            let mut best: Option<(SynthesisResult, Telemetry, f64)> = None;
            for _ in 0..reps {
                let tel = Telemetry::enabled();
                let mut run = RunOptions::with_threads(threads).telemetry(tel.clone());
                run.sim.word_width = word_width;
                run.sim.no_cone_seeding = no_cone_seeding;
                let cfg = SynthesisConfig {
                    sequence_length: lg,
                    speculation: width,
                    prefix_cache: !no_prefix_cache,
                    run,
                    ..SynthesisConfig::default()
                };
                let start = Instant::now();
                let result = Synthesis::new(&circuit, &seq, &faults)
                    .config(cfg)
                    .already_detected(&pre)
                    .run();
                let secs = start.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(_, _, b)| secs < *b) {
                    best = Some((result, tel, secs));
                }
            }
            best.expect("reps >= 1")
        };

        let mut baseline: Option<Baseline> = None;
        for &width in &widths {
            let (result, tel, secs) = run_at(width);
            let counters = tel.counters();
            let (base_result, base_counters, base_secs) = baseline.get_or_insert_with(|| {
                if width == 1 {
                    (result.clone(), counters.clone(), secs)
                } else {
                    // The sweep starts above width 1: take a dedicated
                    // sequential run as the identity reference.
                    let (r, t, s) = run_at(1);
                    (r, t.counters(), s)
                }
            });
            // Bit-identity is the whole contract — check it on every
            // run, golden or not.
            if result.omega != base_result.omega
                || result.detected != base_result.detected
                || result.abandoned != base_result.abandoned
                || counters != *base_counters
            {
                eprintln!(
                    "IDENTITY MISMATCH: {name} width {width} deviates from the sequential walk"
                );
                identity_failures += 1;
            }
            let tried = tel.counter("select.candidates_tried");
            let prefix_hits = tel.effort("select.prefix_hits");
            let cycles_skipped = tel.effort("select.cycles_skipped");
            let launched = tel.effort("select.speculation_launched");
            let wasted = tel.effort("select.speculation_wasted");
            let cone_seeded = tel.effort("select.cone_seeded");
            let trace_gates_evaluated = tel.effort("select.trace_gates_evaluated");
            let gates_rescanned_saved = tel.effort("select.gates_rescanned_saved");
            let snapshot_spills = tel.effort("select.snapshot_spills");
            let snapshot_bytes = tel.effort("select.snapshot_bytes");
            let capture_denied = tel.counter("select.snapshot_capture_denied");
            let detected_targets = result
                .detected
                .iter()
                .zip(&pre)
                .filter(|&(&d, &p)| d && !p)
                .count() as u64;
            eprintln!(
                "{name}: {targets} {} targets, width {width}, {threads} thread(s): {:.2} s ({:.2}x, {:.1} candidates/s, {tried} tried, {prefix_hits} prefix hits skipping {cycles_skipped} cycles, {wasted}/{launched} speculative evals wasted)",
                model.name(),
                secs,
                *base_secs / secs,
                tried as f64 / secs,
            );
            if golden {
                if let Some(&(_, _, want_omega, want_detected)) = GOLDEN_DEFAULT_CONFIG
                    .iter()
                    .find(|&&(m, n, _, _)| m == model && n == name)
                {
                    if (result.omega.len() as u64, detected_targets) != (want_omega, want_detected)
                    {
                        eprintln!(
                            "GOLDEN MISMATCH: {name} width {width}: Ω size {} / {detected_targets} detected, committed values are {want_omega} / {want_detected}",
                            result.omega.len()
                        );
                        golden_failures += 1;
                    }
                }
            }
            rows.push(Json::obj(vec![
                ("circuit", name.as_str().into()),
                ("fault_model", model.name().into()),
                ("faults", faults.len().into()),
                ("targets", targets.into()),
                ("t_len", t_len.into()),
                ("sequence_length", lg.into()),
                ("threads", threads.into()),
                ("word_width", u64::from(word_width.bits()).into()),
                ("speculation", width.into()),
                ("seconds", secs.into()),
                ("candidates_tried", tried.into()),
                ("candidates_per_sec", (tried as f64 / secs).into()),
                ("prefix_cache", (!no_prefix_cache).into()),
                ("prefix_hits", prefix_hits.into()),
                ("cycles_skipped", cycles_skipped.into()),
                ("cone_seeding", (!no_cone_seeding).into()),
                ("cone_seeded", cone_seeded.into()),
                ("trace_gates_evaluated", trace_gates_evaluated.into()),
                ("gates_rescanned_saved", gates_rescanned_saved.into()),
                ("snapshot_spills", snapshot_spills.into()),
                ("snapshot_bytes", snapshot_bytes.into()),
                ("snapshot_capture_denied", capture_denied.into()),
                ("speculation_launched", launched.into()),
                ("speculation_wasted", wasted.into()),
                ("omega_len", result.omega.len().into()),
                ("targets_detected", detected_targets.into()),
                (
                    "coverage",
                    (detected_targets as f64 / targets.max(1) as f64).into(),
                ),
                ("available_cores", cores.into()),
                (
                    // An oversubscribed host (threads > cores) measures
                    // scheduler contention, not speculation: suppress
                    // the figure rather than publish a misleading one.
                    "speedup_vs_width_1",
                    if threads > cores {
                        Json::Null
                    } else {
                        (*base_secs / secs).into()
                    },
                ),
            ]));
        }
        for &width in &skipped_widths {
            rows.push(Json::obj(vec![
                ("circuit", name.as_str().into()),
                ("speculation", width.into()),
                ("word_width", u64::from(word_width.bits()).into()),
                ("available_cores", cores.into()),
                (
                    "skipped_reason",
                    "single-core host: speculative rows evaluate inline and measure \
                     scheduling overhead, not speculation (pass --width-sweep to force)"
                        .into(),
                ),
            ]));
        }
    }

    let doc = Json::obj(vec![
        ("bench", "select".into()),
        ("fault_model", model.name().into()),
        ("available_cores", cores.into()),
        ("rows", Json::Array(rows)),
    ]);
    let text = doc.render_pretty();
    match opt("-o") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
                eprintln!("error: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
    if identity_failures > 0 {
        eprintln!("{identity_failures} bit-identity violation(s) across speculation widths");
        std::process::exit(1);
    }
    if golden_failures > 0 {
        eprintln!("{golden_failures} golden synthesis mismatch(es)");
        std::process::exit(1);
    }
}
