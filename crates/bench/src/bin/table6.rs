//! Regenerates the paper's Table 6: the main experimental result.
//!
//! ```text
//! cargo run --release -p wbist-bench --bin table6 [-- options] [circuits...]
//!
//! options:
//!   --fast        reduced configuration (short L_G, bounded ATPG)
//!   --lg N        override L_G (default 2000)
//!   --large       also run the large stand-ins (s5378, s35932)
//!   --json        emit rows as JSON instead of the formatted table
//! ```

use wbist_bench::{
    format_table6, large_circuits, run_named, standard_circuits, PipelineConfig, Table6Row,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    if let Some(pos) = args.iter().position(|a| a == "--lg") {
        let n: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--lg needs a positive integer");
                std::process::exit(2);
            });
        cfg.sequence_length = n;
    }
    let json = args.iter().any(|a| a == "--json");

    let mut circuits: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err())
        .cloned()
        .collect();
    if circuits.is_empty() {
        circuits = standard_circuits();
        if args.iter().any(|a| a == "--large") {
            circuits.extend(large_circuits());
        }
    }

    let mut rows: Vec<Table6Row> = Vec::new();
    for name in &circuits {
        eprintln!("running {name} ...");
        let started = std::time::Instant::now();
        match run_named(name, &cfg) {
            Some(run) => {
                let row = wbist_bench::table6_row(&run);
                eprintln!(
                    "  {}: T len {} det {} | omega {} -> {} pruned | {:.1}s",
                    name,
                    row.given_len,
                    row.given_det,
                    run.synthesis.omega.len(),
                    row.seq,
                    started.elapsed().as_secs_f64()
                );
                rows.push(row);
            }
            None => eprintln!("  unknown circuit `{name}`, skipping"),
        }
    }

    if json {
        println!("{}", wbist_bench::table6_rows_json(&rows).render_pretty());
    } else {
        println!(
            "\nTable 6: Experimental results (L_G = {})",
            cfg.sequence_length
        );
        print!("{}", format_table6(&rows));
    }
}
