//! Experiment harness for regenerating the paper's tables and figures.
//!
//! The pipeline mirrors the paper's experimental setup end to end:
//!
//! 1. build the circuit (`s27` exact; others ISCAS-like synthetic
//!    stand-ins — see `wbist-circuits`),
//! 2. generate a deterministic test sequence with the simulation-based
//!    ATPG and statically compact it (the paper used STRATEGATE/SEQCOM +
//!    static compaction),
//! 3. run the weighted-BIST synthesis procedure (`L_G = 2000` in the
//!    paper configuration),
//! 4. prune `Ω` by reverse-order simulation,
//! 5. derive the FSM bank and hardware statistics.
//!
//! [`table6_row`] turns one run into a row of the paper's Table 6;
//! [`obs_table`] reproduces the Tables 7–16 trade-off; the baselines of
//! `wbist-core` feed the comparison table. Binaries in `src/bin/` print
//! the tables; Criterion benches in `benches/` measure the components.

// The JSON writer lives in `wbist-telemetry` now (it needs it for trace
// export and must stay dependency-free); re-exported here so existing
// `wbist_bench::json::Json` paths keep working.
pub use wbist_telemetry::json;

pub use json::Json;

use std::fmt;
use wbist_atpg::{compact, AtpgConfig, CompactionConfig, SequenceAtpg};
use wbist_circuits::synthetic;
use wbist_core::{
    observation_point_tradeoff, reverse_order_prune, synthesize_weighted_bist, ObsOptions,
    ObsTradeoff, PruneOptions, SelectedAssignment, SynthesisConfig, SynthesisResult,
};
use wbist_hw::FsmBank;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, RunOptions, TestSequence};

/// Configuration of the full experiment pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// `L_G`, the weighted-sequence length per assignment.
    pub sequence_length: usize,
    /// ATPG settings for the deterministic sequence.
    pub atpg: AtpgConfig,
    /// Static compaction settings (`None` disables compaction).
    pub compaction: Option<CompactionConfig>,
    /// Sample-first speedup in the synthesis procedure.
    pub sample_first: bool,
    /// Shared run options: simulator tuning, telemetry handle, seed.
    pub run: RunOptions,
}

impl PipelineConfig {
    /// The paper's configuration: `L_G = 2000`, compacted deterministic
    /// sequences.
    pub fn paper() -> Self {
        PipelineConfig {
            sequence_length: 2000,
            atpg: AtpgConfig::default(),
            compaction: Some(CompactionConfig::default()),
            sample_first: true,
            run: RunOptions::default(),
        }
    }

    /// A reduced configuration for tests and micro-benchmarks: shorter
    /// sequences, bounded ATPG effort.
    pub fn fast() -> Self {
        PipelineConfig {
            sequence_length: 256,
            atpg: AtpgConfig {
                max_len: 1200,
                patience: 12,
                ..AtpgConfig::default()
            },
            compaction: Some(CompactionConfig {
                block_sizes: vec![64, 16],
                max_trials: 200,
            }),
            sample_first: true,
            run: RunOptions::default(),
        }
    }
}

/// The artifacts of one full pipeline run on one circuit.
#[derive(Debug, Clone)]
pub struct CircuitRun {
    /// Circuit name.
    pub name: String,
    /// The circuit itself.
    pub circuit: Circuit,
    /// Target fault list (checkpoint faults).
    pub faults: FaultList,
    /// The deterministic sequence `T` (after compaction).
    pub sequence: TestSequence,
    /// Faults detected by `T`.
    pub t_detected: usize,
    /// The synthesis outcome (`Ω` before pruning, weights, coverage
    /// flags).
    pub synthesis: SynthesisResult,
    /// `Ω` after reverse-order simulation.
    pub pruned: Vec<SelectedAssignment>,
}

impl CircuitRun {
    /// The FSM bank implementing the pruned `Ω`.
    pub fn fsm_bank(&self) -> FsmBank {
        FsmBank::from_assignments(&self.pruned)
    }
}

/// Runs the full pipeline on a circuit.
pub fn run_pipeline(name: &str, circuit: Circuit, cfg: &PipelineConfig) -> CircuitRun {
    let tel = cfg.run.telemetry.clone();
    let faults = FaultList::checkpoints(&circuit);
    let atpg = {
        let _span = tel.span("atpg");
        SequenceAtpg::new(&circuit, cfg.atpg.clone()).run(&faults)
    };
    let sequence = {
        let _span = tel.span("compact");
        match &cfg.compaction {
            Some(cc) => compact(&circuit, &faults, &atpg.sequence, cc),
            None => atpg.sequence.clone(),
        }
    };
    let t_detected = FaultSim::with_run_options(&circuit, &cfg.run)
        .query(&faults)
        .sequence(&sequence)
        .count();
    let syn_cfg = SynthesisConfig {
        sequence_length: cfg.sequence_length,
        sample_first: cfg.sample_first,
        run: cfg.run.clone(),
        ..SynthesisConfig::default()
    };
    let synthesis = synthesize_weighted_bist(&circuit, &sequence, &faults, &syn_cfg);
    let pruned = reverse_order_prune(
        &circuit,
        &faults,
        &synthesis.omega,
        &PruneOptions::new(cfg.sequence_length).run(cfg.run.clone()),
    );
    CircuitRun {
        name: name.to_string(),
        circuit,
        faults,
        sequence,
        t_detected,
        synthesis,
        pruned,
    }
}

/// Runs the pipeline on a named benchmark (`"s27"` exact, others
/// synthetic stand-ins). Returns `None` for unknown names.
pub fn run_named(name: &str, cfg: &PipelineConfig) -> Option<CircuitRun> {
    let circuit = synthetic::by_name(name)?;
    Some(run_pipeline(name, circuit, cfg))
}

/// One row of the paper's Table 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table6Row {
    /// Circuit name.
    pub circuit: String,
    /// Length of the deterministic sequence `T` (`len`).
    pub given_len: usize,
    /// Faults `T` detects (`det`).
    pub given_det: usize,
    /// Weight assignments after reverse-order simulation (`seq`).
    pub seq: usize,
    /// Distinct subsequences defining them (`subs`).
    pub subs: usize,
    /// Longest subsequence (`len`).
    pub max_len: usize,
    /// FSMs after stream deduplication (`num`).
    pub fsm_num: usize,
    /// Total FSM outputs (`out`).
    pub fsm_out: usize,
    /// Whether the weighted sequences reached `T`'s coverage (the
    /// paper's guarantee; not a Table-6 column but asserted by it).
    pub coverage_guaranteed: bool,
}

/// Builds the Table-6 row of one run.
pub fn table6_row(run: &CircuitRun) -> Table6Row {
    let pruned_result = SynthesisResult {
        omega: run.pruned.clone(),
        ..run.synthesis.clone()
    };
    let bank = run.fsm_bank();
    // Coverage check on the pruned Ω.
    let sim = FaultSim::new(&run.circuit);
    let mut detected = vec![false; run.faults.len()];
    for sel in &run.pruned {
        for (d, f) in detected.iter_mut().zip(
            sim.query(&run.faults)
                .sequence(&sel.sequence(run.synthesis.sequence_length))
                .detected(),
        ) {
            *d |= f;
        }
    }
    let guaranteed = run
        .synthesis
        .target
        .iter()
        .zip(&detected)
        .all(|(&t, &d)| !t || d);
    Table6Row {
        circuit: run.name.clone(),
        given_len: run.sequence.len(),
        given_det: run.t_detected,
        seq: run.pruned.len(),
        subs: pruned_result.distinct_subsequences().len(),
        max_len: pruned_result.max_subsequence_len(),
        fsm_num: bank.num_fsms(),
        fsm_out: bank.total_outputs(),
        coverage_guaranteed: guaranteed,
    }
}

impl Table6Row {
    /// The row as an ordered JSON object (field order matches the
    /// struct).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("circuit", self.circuit.as_str().into()),
            ("given_len", self.given_len.into()),
            ("given_det", self.given_det.into()),
            ("seq", self.seq.into()),
            ("subs", self.subs.into()),
            ("max_len", self.max_len.into()),
            ("fsm_num", self.fsm_num.into()),
            ("fsm_out", self.fsm_out.into()),
            ("coverage_guaranteed", self.coverage_guaranteed.into()),
        ])
    }
}

/// All rows as a JSON array.
pub fn table6_rows_json(rows: &[Table6Row]) -> Json {
    Json::Array(rows.iter().map(Table6Row::to_json).collect())
}

impl fmt::Display for Table6Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:>6} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5}  {}",
            self.circuit,
            self.given_len,
            self.given_det,
            self.seq,
            self.subs,
            self.max_len,
            self.fsm_num,
            self.fsm_out,
            if self.coverage_guaranteed {
                "ok"
            } else {
                "MISS"
            }
        )
    }
}

/// Formats a set of rows with the paper's Table-6 header.
pub fn format_table6(rows: &[Table6Row]) -> String {
    let mut s = String::new();
    s.push_str("            given seq       proposed           FSMs\n");
    s.push_str("circuit     len    det   seq  subs   len   num   out  guarantee\n");
    for r in rows {
        s.push_str(&r.to_string());
        s.push('\n');
    }
    s
}

/// Reproduces one of the Tables 7–16 for a run: the observation-point
/// trade-off over `Ω` before pruning.
pub fn obs_table(run: &CircuitRun, run_opts: &RunOptions) -> ObsTradeoff {
    let opts = ObsOptions::new(run.synthesis.sequence_length).run(run_opts.clone());
    observation_point_tradeoff(&run.circuit, &run.faults, &run.synthesis.omega, &opts)
}

/// Formats an observation-point trade-off like the paper's tables.
pub fn format_obs_table(name: &str, tr: &ObsTradeoff) -> String {
    let mut s = "circuit  seq   sub   len    f.e.   obs    f.e.\n".to_string();
    for row in &tr.rows {
        s.push_str(&format!(
            "{:<8} {:>3} {:>5} {:>5} {:>7.2} {:>4} {:>7.2}\n",
            name,
            row.num_assignments,
            row.num_subsequences,
            row.max_len,
            row.fault_efficiency,
            row.num_obs,
            row.fe_with_obs
        ));
    }
    s
}

/// The named circuits of the paper's Table 6 that fit a quick run
/// (everything except the two large ones).
pub fn standard_circuits() -> Vec<String> {
    let mut v = vec!["s27".to_string()];
    v.extend(
        synthetic::table6_specs()
            .into_iter()
            .map(|s| s.name)
            .filter(|n| n != "s5378" && n != "s35932"),
    );
    v
}

/// The large-circuit names gated behind `--large`.
pub fn large_circuits() -> Vec<String> {
    vec!["s5378".to_string(), "s35932".to_string()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_pipeline_end_to_end() {
        let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
        let row = table6_row(&run);
        assert_eq!(row.circuit, "s27");
        assert_eq!(row.given_det, 32);
        assert!(row.coverage_guaranteed);
        assert!(row.seq >= 1);
        assert!(row.fsm_num <= row.subs.max(1));
        assert!(row.fsm_out <= row.subs);
    }

    #[test]
    fn table6_formatting() {
        let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
        let text = format_table6(&[table6_row(&run)]);
        assert!(text.contains("s27"));
        assert!(text.contains("circuit"));
    }

    #[test]
    fn obs_table_for_s27() {
        let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
        let tr = obs_table(&run, &RunOptions::default());
        let text = format_obs_table("s27", &tr);
        assert!(text.contains("f.e."));
        let last = tr.rows.last().expect("rows exist");
        assert_eq!(last.num_obs, 0);
    }

    #[test]
    fn unknown_circuit_is_none() {
        assert!(run_named("bogus", &PipelineConfig::fast()).is_none());
    }

    #[test]
    fn circuit_lists_are_disjoint_and_complete() {
        let std_list = standard_circuits();
        let large = large_circuits();
        assert!(std_list.contains(&"s27".to_string()));
        assert!(std_list.contains(&"s1488".to_string()));
        for l in &large {
            assert!(!std_list.contains(l));
        }
        assert_eq!(std_list.len() + large.len(), 17, "s27 + 16 stand-ins");
    }

    #[test]
    fn table6_row_serializes() {
        let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
        let row = table6_row(&run);
        let json = row.to_json().render();
        assert!(json.contains("\"circuit\":\"s27\""));
        assert!(json.contains("coverage_guaranteed"));
    }

    #[test]
    fn fsm_bank_consistent_with_row() {
        let run = run_named("s27", &PipelineConfig::fast()).expect("s27 exists");
        let row = table6_row(&run);
        let bank = run.fsm_bank();
        assert_eq!(row.fsm_num, bank.num_fsms());
        assert_eq!(row.fsm_out, bank.total_outputs());
        // FSM count never exceeds the number of distinct lengths possible.
        assert!(row.fsm_num <= row.max_len);
    }
}
