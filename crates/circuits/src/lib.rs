//! Benchmark circuits for the `wbist` workspace.
//!
//! Two sources of circuits:
//!
//! * [`s27`] — the exact ISCAS-89 benchmark `s27`, which the reproduced
//!   paper uses for every worked example (its Tables 1–5), together with
//!   the paper's deterministic test sequence from Table 1;
//! * [`structured`] — parameterized circuits with *known* testability
//!   characteristics (shift registers, counters, random-pattern-resistant
//!   sequence locks) for targeted experiments;
//! * [`synthetic`] — a deterministic, seeded generator of ISCAS-like
//!   synchronous sequential circuits. The original ISCAS-89 netlists
//!   (beyond `s27`) are not redistributable inputs of this reproduction, so
//!   the Table-6 experiments run on synthetic stand-ins matching each
//!   benchmark's published primary-input / primary-output / flip-flop /
//!   gate counts. See `DESIGN.md` §5 for why this substitution preserves
//!   the behaviours being reproduced.

pub mod s27;
pub mod structured;
pub mod synthetic;

pub use synthetic::{generate, table6_specs, SyntheticSpec};
