//! Structured, parameterized circuit generators.
//!
//! Unlike the random [`synthetic`](crate::synthetic) circuits, these have
//! *known* testability characteristics, which makes them ideal for
//! targeted experiments:
//!
//! * [`shift_register`] — serial-in/parallel-out chain: every fault needs
//!   time to propagate, but none is random-resistant;
//! * [`counter`] — a binary counter with carry chain: long sequential
//!   depth (bit `k` toggles every `2^k` cycles);
//! * [`sequence_lock`] — a payload observable only after a magic input
//!   vector is held for `arm_cycles` consecutive cycles: tunable
//!   random-pattern resistance (probability `2^(-width·arm_cycles)` per
//!   window under unbiased patterns);
//! * [`johnson_counter`] — a self-initializing twisted-ring counter.

use wbist_netlist::{Circuit, GateKind, NetId};

/// An `n`-bit serial shift register with parallel outputs and a parity
/// output over all taps.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "need at least one stage");
    let mut c = Circuit::new(format!("shift{n}"));
    let din = c.add_input("din");
    let mut prev = din;
    let mut taps = Vec::with_capacity(n);
    for k in 0..n {
        let q = c
            .add_dff(&format!("q{k}"), Some(prev))
            .expect("fresh names");
        taps.push(q);
        prev = q;
    }
    // Parallel outputs through buffers (so the POs are gate outputs and
    // the chain itself keeps internal fanout).
    for (k, &q) in taps.iter().enumerate() {
        let o = c
            .add_gate(GateKind::Buf, &format!("o{k}"), &[q])
            .expect("fresh names");
        c.mark_output(o);
    }
    let par = xor_tree(&mut c, "par", &taps);
    c.mark_output(par);
    c.levelize().expect("structure is valid")
}

/// An `n`-bit synchronous binary counter with enable input and a
/// terminal-count output.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn counter(n: usize) -> Circuit {
    assert!(n > 0, "need at least one bit");
    let mut c = Circuit::new(format!("count{n}"));
    let en = c.add_input("en");
    let clr = c.add_input("clr");
    let nclr = c.add_gate(GateKind::Not, "nclr", &[clr]).expect("fresh");
    let bits: Vec<NetId> = (0..n)
        .map(|k| c.add_dff(&format!("q{k}"), None).expect("fresh names"))
        .collect();
    let mut carry = en;
    for (k, &q) in bits.iter().enumerate() {
        let inc = c
            .add_gate(GateKind::Xor, &format!("inc{k}"), &[q, carry])
            .expect("fresh names");
        let nxt = c
            .add_gate(GateKind::And, &format!("nxt{k}"), &[inc, nclr])
            .expect("fresh names");
        c.connect_dff_data(q, nxt).expect("q is a DFF");
        if k + 1 < n {
            carry = c
                .add_gate(GateKind::And, &format!("cy{k}"), &[carry, q])
                .expect("fresh names");
        }
    }
    let tc = c.add_gate(GateKind::And, "tc", &bits).expect("fresh names");
    c.mark_output(tc);
    let lsb = c
        .add_gate(GateKind::Buf, "lsb", &[bits[0]])
        .expect("fresh names");
    c.mark_output(lsb);
    c.levelize().expect("structure is valid")
}

/// A random-pattern-resistant lock: the `payload` output is gated by a
/// sticky unlock flag that sets only after the all-ones vector has been
/// applied on `arm_cycles` consecutive cycles.
///
/// # Panics
///
/// Panics if `width == 0` or `arm_cycles == 0`.
pub fn sequence_lock(width: usize, arm_cycles: usize) -> Circuit {
    assert!(width > 0, "need at least one data input");
    assert!(arm_cycles > 0, "need at least one arm cycle");
    let mut c = Circuit::new(format!("lock{width}x{arm_cycles}"));
    let data: Vec<NetId> = (0..width).map(|k| c.add_input(&format!("d{k}"))).collect();
    let allones = c
        .add_gate(GateKind::And, "allones", &data)
        .expect("fresh names");
    // Arm chain: allones must hold for arm_cycles cycles.
    let mut armed = allones;
    for k in 1..arm_cycles {
        let ff = c
            .add_dff(&format!("arm{k}"), Some(armed))
            .expect("fresh names");
        armed = c
            .add_gate(GateKind::And, &format!("armed{k}"), &[allones, ff])
            .expect("fresh names");
    }
    // Sticky unlock.
    let unlock = c.add_dff("unlock", None).expect("fresh names");
    let unlock_next = c
        .add_gate(GateKind::Or, "unlock_next", &[armed, unlock])
        .expect("fresh names");
    c.connect_dff_data(unlock, unlock_next).expect("DFF");
    // Payload: parity state machine over the data inputs. The all-ones
    // (arming) vector also clears the parity state, so the payload
    // becomes initialized exactly when it becomes observable.
    let par = xor_tree(&mut c, "dpar", &data);
    let pstate = c.add_dff("pstate", None).expect("fresh names");
    let nall = c
        .add_gate(GateKind::Not, "nall", &[allones])
        .expect("fresh names");
    let pxor = c
        .add_gate(GateKind::Xor, "pxor", &[par, pstate])
        .expect("fresh names");
    let pnext = c
        .add_gate(GateKind::And, "pnext", &[pxor, nall])
        .expect("fresh names");
    c.connect_dff_data(pstate, pnext).expect("DFF");
    let payload = c
        .add_gate(GateKind::Xnor, "payload", &[pnext, data[0]])
        .expect("fresh names");
    let visible = c
        .add_gate(GateKind::And, "visible", &[unlock, payload])
        .expect("fresh names");
    c.mark_output(visible);
    // Keep part of the circuit observable without the lock.
    let open_par = c
        .add_gate(GateKind::Buf, "open_par", &[par])
        .expect("fresh names");
    c.mark_output(open_par);
    c.levelize().expect("structure is valid")
}

/// An `n`-stage Johnson (twisted-ring) counter with a decoded output.
/// Self-initializing modulo its natural cycle; the decode output fires
/// on the all-zero state.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn johnson_counter(n: usize) -> Circuit {
    assert!(n > 0, "need at least one stage");
    let mut c = Circuit::new(format!("johnson{n}"));
    let clr = c.add_input("clr");
    let nclr = c.add_gate(GateKind::Not, "nclr", &[clr]).expect("fresh");
    let bits: Vec<NetId> = (0..n)
        .map(|k| c.add_dff(&format!("q{k}"), None).expect("fresh names"))
        .collect();
    // Feedback: complement of the last stage enters stage 0.
    let fb = c
        .add_gate(GateKind::Not, "fb", &[bits[n - 1]])
        .expect("fresh names");
    let d0 = c
        .add_gate(GateKind::And, "d0", &[fb, nclr])
        .expect("fresh names");
    c.connect_dff_data(bits[0], d0).expect("DFF");
    for k in 1..n {
        let dk = c
            .add_gate(GateKind::And, &format!("d{k}"), &[bits[k - 1], nclr])
            .expect("fresh names");
        c.connect_dff_data(bits[k], dk).expect("DFF");
    }
    let inv: Vec<NetId> = bits
        .iter()
        .enumerate()
        .map(|(k, &q)| {
            c.add_gate(GateKind::Not, &format!("nq{k}"), &[q])
                .expect("fresh names")
        })
        .collect();
    let zero = c
        .add_gate(GateKind::And, "zero", &inv)
        .expect("fresh names");
    c.mark_output(zero);
    let head = c
        .add_gate(GateKind::Buf, "head", &[bits[0]])
        .expect("fresh names");
    c.mark_output(head);
    c.levelize().expect("structure is valid")
}

/// Builds a balanced XOR tree over `nets`, returning the root net.
fn xor_tree(c: &mut Circuit, prefix: &str, nets: &[NetId]) -> NetId {
    assert!(!nets.is_empty(), "xor tree needs inputs");
    if nets.len() == 1 {
        return c
            .add_gate(GateKind::Buf, &format!("{prefix}_buf"), nets)
            .expect("fresh names");
    }
    let mut layer: Vec<NetId> = nets.to_vec();
    let mut t = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                t += 1;
                next.push(
                    c.add_gate(GateKind::Xor, &format!("{prefix}_x{t}"), pair)
                        .expect("fresh names"),
                );
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_netlist::{circuit_stats, FaultList};
    use wbist_sim::{FaultSim, Logic3, LogicSim, TestSequence};

    #[test]
    fn shift_register_shape() {
        let c = shift_register(6);
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_dffs(), 6);
        assert_eq!(c.num_outputs(), 7, "6 taps + parity");
        let s = circuit_stats(&c);
        assert_eq!(s.feedback_dffs, 0, "a shift chain has no feedback");
    }

    #[test]
    fn shift_register_shifts() {
        let c = shift_register(3);
        let seq = TestSequence::parse_rows(&["1", "0", "0", "0"]).unwrap();
        let outs = LogicSim::new(&c).outputs(&seq).unwrap();
        // The injected 1 marches down the taps (outputs o0..o2 then par).
        assert_eq!(outs[1][0], Logic3::One);
        assert_eq!(outs[2][1], Logic3::One);
        assert_eq!(outs[3][2], Logic3::One);
        assert_eq!(outs[3][0], Logic3::Zero);
    }

    #[test]
    fn counter_counts() {
        let c = counter(3);
        // clr for one cycle, then count with en=1.
        let mut rows = vec![vec![false, true]];
        rows.extend(std::iter::repeat_n(vec![true, false], 9));
        let seq = TestSequence::from_rows(rows).unwrap();
        let outs = LogicSim::new(&c).outputs(&seq).unwrap();
        // lsb (output 1) toggles every cycle once cleared.
        let lsb: Vec<Logic3> = outs.iter().skip(1).map(|r| r[1]).collect();
        assert_eq!(lsb[0], Logic3::Zero);
        assert_eq!(lsb[1], Logic3::One);
        assert_eq!(lsb[2], Logic3::Zero);
        // Terminal count fires when all bits are 1 (count 7 → cycle 8).
        assert_eq!(outs[8][0], Logic3::One);
        assert_eq!(outs[7][0], Logic3::Zero);
    }

    #[test]
    fn johnson_initializes_and_cycles() {
        let c = johnson_counter(4);
        let mut rows = vec![vec![true]];
        rows.extend(std::iter::repeat_n(vec![false], 16));
        let seq = TestSequence::from_rows(rows).unwrap();
        let outs = LogicSim::new(&c).outputs(&seq).unwrap();
        // After clear, state is 0000: `zero` fires at cycle 1.
        assert_eq!(outs[1][0], Logic3::One);
        // Johnson cycle has period 2n = 8: zero fires again at cycle 9.
        assert_eq!(outs[9][0], Logic3::One);
        assert_eq!(outs[5][0], Logic3::Zero);
    }

    #[test]
    fn lock_is_random_resistant() {
        let c = sequence_lock(8, 2);
        let faults = FaultList::checkpoints(&c);
        // 512 unbiased random vectors almost surely never unlock.
        let seq = TestSequence::from_rows(wbist_atpg_like_random(512, 8)).unwrap();
        let det = FaultSim::new(&c).query(&faults).sequence(&seq).count();
        // The open parity cone is detected, the payload cone is not.
        assert!(det < faults.len() / 2, "detected {det}/{}", faults.len());

        // Prepending a directed unlock sequence reveals the payload.
        let mut rows = vec![vec![true; 8], vec![true; 8], vec![true; 8]];
        rows.extend(wbist_atpg_like_random(512, 8));
        let unlocked = TestSequence::from_rows(rows).unwrap();
        let det_unlocked = FaultSim::new(&c).query(&faults).sequence(&unlocked).count();
        assert!(det_unlocked > det, "unlocking exposes more faults");
    }

    /// Simple deterministic pseudo-random rows (xorshift), avoiding a
    /// dependency on the atpg crate from here.
    fn wbist_atpg_like_random(len: usize, width: usize) -> Vec<Vec<bool>> {
        let mut x = 0x12345678u32;
        let mut rows = Vec::with_capacity(len);
        for _ in 0..len {
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                row.push(x & 1 == 1);
            }
            rows.push(row);
        }
        rows
    }
}
