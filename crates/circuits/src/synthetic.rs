//! Deterministic generation of ISCAS-like synchronous sequential circuits.
//!
//! The generator builds random but *reproducible* (seeded) gate-level
//! circuits with a requested number of primary inputs, primary outputs,
//! flip-flops and gates. Structural properties are chosen to resemble the
//! ISCAS-89 benchmarks:
//!
//! * a gate-kind mix dominated by NAND/NOR/AND/OR with some inverters and
//!   a small fraction of XOR/XNOR,
//! * fanin of 1–4 biased toward 2,
//! * input selection biased toward recently created gates, which produces
//!   logic depth and reconvergent fanout,
//! * flip-flop feedback: every DFF data input is driven by combinational
//!   logic, and DFF outputs feed back into the logic (sequential depth).
//!
//! The pre-seeded specs in [`table6_specs`] match the published
//! PI/PO/FF/gate counts of the circuits in Table 6 of the reproduced
//! paper, so experiments scale the same way even though the boolean
//! functions differ (see `DESIGN.md` §5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbist_netlist::{Circuit, GateKind, NetId};

/// Parameters of one synthetic circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Circuit name (used for reporting).
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// RNG seed; the same spec always generates the same circuit.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Creates a spec with the given shape and seed.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        dffs: usize,
        gates: usize,
        seed: u64,
    ) -> Self {
        SyntheticSpec {
            name: name.into(),
            inputs,
            outputs,
            dffs,
            gates,
            seed,
        }
    }

    /// Generates the circuit for this spec (see [`generate`]).
    pub fn build(&self) -> Circuit {
        generate(self)
    }
}

/// Generates a levelized circuit from a spec.
///
/// Two structural properties are engineered in so that the circuits behave
/// like real benchmarks rather than like saturating random logic:
///
/// * **signal-probability control** — the generator tracks an estimated
///   probability of logic 1 per net and picks gate kinds that keep
///   internal probabilities near 0.5, preventing the constant-collapse
///   that naive random NAND/NOR netlists suffer from;
/// * **initializability** — every flip-flop's next-state function passes
///   through a gate with one primary-input pin at a controlling value, so
///   the all-`X` power-up state can always be resolved by input sequences
///   (as is true of the ISCAS-89 suite).
///
/// # Panics
///
/// Panics if `spec.inputs == 0`, or if `spec.gates < spec.outputs.max(1)`,
/// or if `spec.gates < 2 * spec.dffs` (each flip-flop consumes one
/// dedicated next-state gate plus logic to feed it).
pub fn generate(spec: &SyntheticSpec) -> Circuit {
    assert!(spec.inputs > 0, "need at least one primary input");
    assert!(
        spec.gates >= spec.outputs.max(1),
        "need at least as many gates as outputs"
    );
    assert!(
        spec.gates >= 2 * spec.dffs,
        "need at least two gates per DFF"
    );

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut c = Circuit::new(spec.name.clone());

    let pis: Vec<NetId> = (0..spec.inputs)
        .map(|i| c.add_input(&format!("I{i}")))
        .collect();
    let ffs: Vec<NetId> = (0..spec.dffs)
        .map(|k| {
            c.add_dff(&format!("FF{k}"), None)
                .expect("fresh DFF names are unique")
        })
        .collect();

    // Pool of signals a new gate may read, with estimated probability of
    // logic 1 and a consumed flag (to bias toward unused signals).
    let mut pool: Vec<NetId> = Vec::with_capacity(spec.inputs + spec.dffs + spec.gates);
    pool.extend(&pis);
    pool.extend(&ffs);
    let mut prob: Vec<f64> = vec![0.5; pool.len()];
    let mut used = vec![false; pool.len()];

    let body_gates = spec.gates - spec.dffs;
    let mut gate_outputs: Vec<NetId> = Vec::with_capacity(spec.gates);
    for g in 0..body_gates {
        // Pick the fanin signals first, then a kind that keeps the output
        // probability balanced.
        let fanin = pick_fanin(&mut rng);
        let mut picked: Vec<usize> = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            let mut idx = pick_source(&mut rng, &pool, &used);
            let mut guard = 0;
            while picked.contains(&idx) && guard < 8 {
                idx = pick_source(&mut rng, &pool, &used);
                guard += 1;
            }
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        for &idx in &picked {
            used[idx] = true;
        }
        let in_probs: Vec<f64> = picked.iter().map(|&i| prob[i]).collect();
        let kind = pick_kind_balanced(&mut rng, &in_probs);
        let inputs: Vec<NetId> = picked.iter().map(|&i| pool[i]).collect();
        let out = c
            .add_gate(kind, &format!("N{g}"), &inputs)
            .expect("fresh gate names are unique");
        pool.push(out);
        prob.push(output_prob(kind, &in_probs));
        used.push(false);
        gate_outputs.push(out);
    }

    // Flip-flop next-state gates: AND/NOR of a primary input with a body
    // signal, so pi at its controlling value forces a known next state.
    for (k, &q) in ffs.iter().enumerate() {
        let pi = pis[rng.gen_range(0..pis.len())];
        let sig_idx = pick_source(&mut rng, &pool, &used);
        used[sig_idx] = true;
        let kind = if rng.gen_bool(0.5) {
            GateKind::And
        } else {
            GateKind::Nor
        };
        let out = c
            .add_gate(kind, &format!("NS{k}"), &[pi, pool[sig_idx]])
            .expect("fresh gate names are unique");
        gate_outputs.push(out);
        pool.push(out);
        prob.push(output_prob(kind, &[0.5, prob[sig_idx]]));
        used.push(true);
        c.connect_dff_data(q, out).expect("q is a DFF output");
    }

    // Primary outputs: prefer still-unused gate outputs, then random ones.
    let base = spec.inputs + spec.dffs;
    let mut pos: Vec<NetId> = Vec::new();
    for (gi, &net) in gate_outputs.iter().enumerate() {
        if pos.len() >= spec.outputs {
            break;
        }
        if !used[base + gi] {
            pos.push(net);
            used[base + gi] = true;
        }
    }
    let mut guard = 0;
    while pos.len() < spec.outputs && guard < 100 * spec.outputs {
        let gi = rng.gen_range(0..gate_outputs.len());
        if !pos.contains(&gate_outputs[gi]) {
            pos.push(gate_outputs[gi]);
            used[base + gi] = true;
        }
        guard += 1;
    }
    for &p in &pos {
        c.mark_output(p);
    }

    c.levelize()
        .expect("generator constructs only valid circuits")
}

/// Estimated probability that a gate output is 1, assuming independent
/// inputs with the given 1-probabilities.
fn output_prob(kind: GateKind, inputs: &[f64]) -> f64 {
    let p_and: f64 = inputs.iter().product();
    let p_or: f64 = 1.0 - inputs.iter().map(|p| 1.0 - p).product::<f64>();
    match kind {
        GateKind::And => p_and,
        GateKind::Nand => 1.0 - p_and,
        GateKind::Or => p_or,
        GateKind::Nor => 1.0 - p_or,
        GateKind::Xor => inputs
            .iter()
            .fold(0.0, |acc, &p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Xnor => {
            1.0 - inputs
                .iter()
                .fold(0.0, |acc, &p| acc * (1.0 - p) + p * (1.0 - acc))
        }
        GateKind::Not => 1.0 - inputs[0],
        GateKind::Buf => inputs[0],
    }
}

/// Picks a gate kind whose output probability stays close to 0.5 for the
/// given input probabilities, with ISCAS-like kind frequencies as the
/// tie-breaking prior.
fn pick_kind_balanced(rng: &mut StdRng, in_probs: &[f64]) -> GateKind {
    if in_probs.len() == 1 {
        return if rng.gen_bool(0.7) {
            GateKind::Not
        } else {
            GateKind::Buf
        };
    }
    // Occasional XOR/XNOR: inherently balanced.
    if rng.gen_bool(0.06) {
        return if rng.gen_bool(0.5) {
            GateKind::Xor
        } else {
            GateKind::Xnor
        };
    }
    let candidates = [GateKind::Nand, GateKind::Nor, GateKind::And, GateKind::Or];
    // Keep only kinds whose output probability is not too extreme; among
    // them pick randomly (NAND/NOR weighted slightly higher).
    let mut ok: Vec<GateKind> = candidates
        .iter()
        .copied()
        .filter(|&k| {
            let p = output_prob(k, in_probs);
            (0.2..=0.8).contains(&p)
        })
        .collect();
    if ok.is_empty() {
        // Pick the kind with the most balanced output.
        ok = vec![*candidates
            .iter()
            .min_by(|&&a, &&b| {
                let da = (output_prob(a, in_probs) - 0.5).abs();
                let db = (output_prob(b, in_probs) - 0.5).abs();
                da.partial_cmp(&db).expect("probabilities are finite")
            })
            .expect("candidate list is non-empty")];
    }
    ok[rng.gen_range(0..ok.len())]
}

fn pick_fanin(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u32) {
        0..=11 => 1,
        12..=74 => 2,
        75..=94 => 3,
        _ => 4,
    }
}

/// Picks a source index, biased toward (a) unused signals, (b) recently
/// created signals (for depth), (c) primary inputs and flip-flop outputs
/// (for controllability).
fn pick_source(rng: &mut StdRng, pool: &[NetId], used: &[bool]) -> usize {
    // Half the time, try to consume an unused signal.
    if rng.gen_bool(0.5) {
        let unused: Vec<usize> = (0..pool.len()).filter(|&i| !used[i]).collect();
        if !unused.is_empty() {
            return unused[rng.gen_range(0..unused.len())];
        }
    }
    let n = pool.len();
    match rng.gen_range(0..10u32) {
        // Recent signals: depth and reconvergence.
        0..=4 => n - 1 - rng.gen_range(0..n.min(16)),
        // Anywhere.
        5..=7 => rng.gen_range(0..n),
        // Early pool entries (PIs and FF outputs live there).
        _ => rng.gen_range(0..n.min(64)),
    }
}

/// The synthetic stand-ins for the circuits of Table 6 of the paper, with
/// PI/PO/FF/gate counts matching the published ISCAS-89 statistics.
///
/// Names carry an `s` prefix like the originals; these are *not* the
/// original netlists (see the crate docs).
pub fn table6_specs() -> Vec<SyntheticSpec> {
    vec![
        SyntheticSpec::new("s208", 10, 1, 8, 96, 0xB157_0208),
        SyntheticSpec::new("s298", 3, 6, 14, 119, 0xB157_0298),
        SyntheticSpec::new("s344", 9, 11, 15, 160, 0xB157_0344),
        SyntheticSpec::new("s382", 3, 6, 21, 158, 0xB157_0382),
        SyntheticSpec::new("s386", 7, 7, 6, 159, 0xB157_0386),
        SyntheticSpec::new("s400", 3, 6, 21, 162, 0xB157_0400),
        SyntheticSpec::new("s420", 18, 1, 16, 218, 0xB157_0420),
        SyntheticSpec::new("s444", 3, 6, 21, 181, 0xB157_0444),
        SyntheticSpec::new("s526", 3, 6, 21, 193, 0xB157_0526),
        SyntheticSpec::new("s641", 35, 24, 19, 379, 0xB157_0641),
        SyntheticSpec::new("s820", 18, 19, 5, 289, 0xB157_0820),
        SyntheticSpec::new("s1196", 14, 14, 18, 529, 0xB157_1196),
        SyntheticSpec::new("s1423", 17, 5, 74, 657, 0xB157_1423),
        SyntheticSpec::new("s1488", 8, 19, 6, 653, 0xB157_1488),
        SyntheticSpec::new("s5378", 35, 49, 179, 2779, 0xB157_5378),
        SyntheticSpec::new("s35932", 35, 320, 1728, 16065, 0xB157_3593),
    ]
}

/// Builds one of the Table-6 stand-ins by name (`"s298"`, …); `"s27"`
/// returns the *exact* ISCAS-89 circuit.
pub fn by_name(name: &str) -> Option<Circuit> {
    if name == "s27" {
        return Some(crate::s27::circuit());
    }
    table6_specs()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_netlist::FaultList;
    use wbist_sim::{FaultSim, TestSequence};

    #[test]
    fn spec_counts_respected() {
        for spec in table6_specs().into_iter().take(6) {
            let c = spec.build();
            assert_eq!(c.num_inputs(), spec.inputs, "{}", spec.name);
            assert_eq!(c.num_outputs(), spec.outputs, "{}", spec.name);
            assert_eq!(c.num_dffs(), spec.dffs, "{}", spec.name);
            assert_eq!(c.num_gates(), spec.gates, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::new("x", 5, 3, 4, 40, 42);
        let a = wbist_netlist::bench_format::write(&spec.build());
        let b = wbist_netlist::bench_format::write(&spec.build());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::new("x", 5, 3, 4, 40, 1).build();
        let b = SyntheticSpec::new("x", 5, 3, 4, 40, 2).build();
        assert_ne!(
            wbist_netlist::bench_format::write(&a),
            wbist_netlist::bench_format::write(&b)
        );
    }

    #[test]
    fn circuits_are_testable() {
        // A modest random sequence should detect a healthy fraction of
        // checkpoint faults — guards against degenerate generation.
        // The spec seed selects the circuit and with it the share of
        // undetectable checkpoints; seed 0 builds a circuit where >90%
        // of the checkpoints are detectable under the vendored RNG
        // stream (seed 7 was tuned to the upstream rand stream and now
        // yields a circuit with ~43% undetectable checkpoints).
        let spec = SyntheticSpec::new("t", 6, 4, 5, 60, 0);
        let c = spec.build();
        let faults = FaultList::checkpoints(&c);
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<bool>> = (0..256)
            .map(|_| (0..6).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let seq = TestSequence::from_rows(rows).unwrap();
        let det = FaultSim::new(&c).query(&faults).sequence(&seq).count();
        assert!(
            det * 2 > faults.len(),
            "only {det}/{} faults detected",
            faults.len()
        );
    }

    #[test]
    fn by_name_finds_circuits() {
        assert!(by_name("s27").is_some());
        assert!(by_name("s298").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn roundtrips_through_bench_format() {
        let c = SyntheticSpec::new("rt", 4, 2, 3, 30, 5).build();
        let text = wbist_netlist::bench_format::write(&c);
        let c2 = wbist_netlist::bench_format::parse("rt", &text).unwrap();
        assert_eq!(c.num_gates(), c2.num_gates());
        assert_eq!(c.num_dffs(), c2.num_dffs());
    }
}
