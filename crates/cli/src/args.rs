//! Minimal argument parsing helpers (no external dependencies).

/// A parsed command line: positional arguments plus `--flag`/`--key value`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    positional: Vec<String>,
    flags: Vec<String>,
    options: Vec<(String, String)>,
}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag.
pub fn parse(argv: &[String], value_keys: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if value_keys.contains(&key) {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                out.options.push((key.to_string(), v.clone()));
            } else {
                out.flags.push(key.to_string());
            }
        } else if let Some(key) = a.strip_prefix('-') {
            if value_keys.contains(&key) {
                let v = it.next().ok_or_else(|| format!("-{key} needs a value"))?;
                out.options.push((key.to_string(), v.clone()));
            } else {
                out.flags.push(key.to_string());
            }
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// The `i`-th positional argument.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn num_pos(&self) -> usize {
        self.positional.len()
    }

    /// Whether a boolean flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--key`, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first flag not in `known`, if any — lets strict commands
    /// reject misspelled options instead of silently ignoring them.
    pub fn unknown_flag(&self, known: &[&str]) -> Option<&str> {
        self.flags
            .iter()
            .map(String::as_str)
            .find(|f| !known.contains(f))
    }

    /// The value of `--key` parsed as `T`.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_flags_and_options() {
        let p = parse(
            &argv(&["a.bench", "--times", "--lg", "500", "-o", "x.txt"]),
            &["lg", "o"],
        )
        .unwrap();
        assert_eq!(p.pos(0), Some("a.bench"));
        assert!(p.flag("times"));
        assert_eq!(p.opt("lg"), Some("500"));
        assert_eq!(p.opt_parse::<usize>("lg").unwrap(), Some(500));
        assert_eq!(p.opt("o"), Some("x.txt"));
        assert_eq!(p.num_pos(), 1);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&argv(&["--lg"]), &["lg"]).is_err());
    }

    #[test]
    fn bad_parse_is_error() {
        let p = parse(&argv(&["--lg", "abc"]), &["lg"]).unwrap();
        assert!(p.opt_parse::<usize>("lg").is_err());
    }

    #[test]
    fn last_option_wins() {
        let p = parse(&argv(&["--lg", "1", "--lg", "2"]), &["lg"]).unwrap();
        assert_eq!(p.opt("lg"), Some("2"));
    }
}
