//! Command implementations for the `wbist` CLI.

use crate::args::{parse, Parsed};
use std::fmt;
use std::path::PathBuf;
use wbist_atpg::{compact, AtpgConfig, CompactionConfig, SequenceAtpg};
use wbist_circuits::{structured, synthetic};
use wbist_core::{
    synthesize_hybrid, synthesize_weighted_bist, Checkpoint, HybridConfig, ObsOptions,
    PruneOptions, RunControl, Synthesis, SynthesisConfig,
};
use wbist_hw::{build_generator, build_hybrid_generator, generator_cost, to_verilog};
use wbist_netlist::{bench_format, circuit_stats, Circuit, FaultList, FaultModel, FaultUniverse};
use wbist_serve::ServeConfig;
use wbist_sim::{
    Budget, CancelToken, FaultSim, RunOptions, SimOptions, Telemetry, TestSequence,
    TruncationReason, WordWidth,
};

/// Top-level usage text.
pub const USAGE: &str = "usage:
  wbist stats   <circuit.bench>
  wbist faults  <circuit.bench> [--model checkpoints|collapsed|all]
                [--fault-model stuck-at|transition]
  wbist atpg    <circuit.bench> [--seed N] [--max-len N] [--no-compact] [-o seq.txt]
  wbist sim     <circuit.bench> <seq.txt> [--times]
  wbist synth   <circuit.bench> [--seq seq.txt] [--lg N] [--random N]
                [--verilog out.v] [--bench out.bench]
  wbist obs     <circuit.bench> [--seq seq.txt] [--lg N]
  wbist session <circuit.bench> [--seq seq.txt] [--lg N] [--misr N] [--capture N]
  wbist podem   <circuit.bench>           # scan-view classification
  wbist vcd     <circuit.bench> <seq.txt> [-o out.vcd]
  wbist gen     <name> [-o out.bench]
      names: s27, s208..s35932 (synthetic stand-ins),
             shift:N, count:N, lock:WIDTH:ARM, johnson:N
  wbist serve   [--socket PATH] [--workers N] [--job-threads N]
                [--max-queue N] [--retry-max N] [--retry-backoff-ms N]
                [--evict-after-ms N] [--ckpt-dir DIR]
      multi-tenant job daemon: line-delimited JSON requests on stdin
      (or a Unix socket), job events on stdout; SIGTERM or
      {\"op\":\"shutdown\"} drains running jobs to checkpoints
      (exit 2 when resumable work was left behind)
  global options (any command):
      --threads N     simulator worker threads (default: all cores)
      --word-width W  fault-plane word width: 64 (default) | 128 | 256
                      (256 needs the `w256` build feature); detections
                      are bit-identical at every width
      --no-cone-seeding  disable cone-seeded good-trace resume (results
                      are bit-identical; for identity diffs and timing)
  fault selection (faults, atpg, sim, synth, obs, session, podem):
      --model M       fault universe: checkpoints (default) | collapsed | all
      --fault-model F fault model: stuck-at (default) | transition
                      (podem is stuck-at only)
      --kernel K      fault-sim kernel: compiled (default) | reference
      --speculation K synth candidate wavefront width (default 1);
                      results are bit-identical at every width
      --trace FILE    write a deterministic JSON telemetry trace
      --progress      print a phase-timing summary to stderr
  run control (budgets apply to any command; checkpoints to synth):
      --max-wall-secs S       stop after S seconds of wall clock
      --max-fault-cycles N    stop after N simulated fault-cycles
      --max-assignments N     stop after keeping N weight assignments
      --checkpoint FILE       write a resumable checkpoint after every
                              kept assignment (synth only)
      --resume FILE           continue a budget-truncated synth run from
                              its checkpoint, bit-identically
  exit codes: 0 complete, 2 budget truncated (valid partial results),
              1 usage or run error";

/// CLI error: usage problems print the help text; run errors print the
/// message only.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation.
    Usage(String),
    /// The command ran and failed.
    Run(Box<dyn std::error::Error>),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl<E: std::error::Error + 'static> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError::Run(Box::new(e))
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// How a command finished: completely, or cut short by a budget with
/// valid partial output. `main` maps these to exit codes 0 and 2; errors
/// exit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdStatus {
    /// Everything ran to the end.
    Complete,
    /// A `--max-*` budget tripped; printed results are valid but partial.
    Truncated(TruncationReason),
}

/// Options shared by every command, stripped from the command line
/// before the per-command parse. `--threads` is validated here, once,
/// instead of in every command.
#[derive(Debug, Clone)]
pub struct Globals {
    /// Run options handed to every simulation-driven phase; armed with a
    /// cancellation token when any `--max-*` budget is given.
    pub run: RunOptions,
    /// `--trace FILE`: write the deterministic JSON telemetry trace.
    pub trace: Option<String>,
    /// `--progress`: print the wall-clock phase summary to stderr.
    pub progress: bool,
    /// `--checkpoint FILE`: resumable synthesis snapshots (synth only).
    pub checkpoint: Option<String>,
    /// `--resume FILE`: continue a truncated synth run (synth only).
    pub resume: Option<String>,
    /// `--speculation K`: synthesis candidate wavefront width.
    pub speculation: usize,
}

/// Strips the global options (`--threads N`, `--trace FILE`,
/// `--progress`, budgets, checkpointing) out of `argv`, returning the
/// remaining arguments and the validated globals.
fn extract_globals(argv: &[String]) -> Result<(Vec<String>, Globals), CliError> {
    let mut rest = Vec::new();
    let mut threads: Option<usize> = None;
    let mut word_width = WordWidth::default();
    let mut reference_kernel = false;
    let mut no_cone_seeding = false;
    let mut trace: Option<String> = None;
    let mut progress = false;
    let mut budget = Budget::default();
    let mut checkpoint: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut speculation: usize = 1;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or_else(|| usage("--threads needs a value"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| usage(format!("--threads: cannot parse `{v}`")))?;
                if n == 0 {
                    return Err(usage("--threads must be at least 1"));
                }
                threads = Some(n);
            }
            "--word-width" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--word-width needs a value"))?;
                word_width = WordWidth::parse(v).map_err(usage)?;
            }
            "--no-cone-seeding" => no_cone_seeding = true,
            "--kernel" => {
                let v = it.next().ok_or_else(|| usage("--kernel needs a value"))?;
                reference_kernel = match v.as_str() {
                    "compiled" => false,
                    "reference" => true,
                    other => {
                        return Err(usage(format!(
                            "--kernel: expected `compiled` or `reference`, got `{other}`"
                        )))
                    }
                };
            }
            "--trace" => {
                let v = it.next().ok_or_else(|| usage("--trace needs a path"))?;
                trace = Some(v.clone());
            }
            "--progress" => progress = true,
            "--max-wall-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--max-wall-secs needs a value"))?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| usage(format!("--max-wall-secs: cannot parse `{v}`")))?;
                if secs.is_nan() || secs <= 0.0 {
                    return Err(usage("--max-wall-secs must be positive"));
                }
                budget = budget.wall_secs(secs);
            }
            "--max-fault-cycles" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--max-fault-cycles needs a value"))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| usage(format!("--max-fault-cycles: cannot parse `{v}`")))?;
                budget = budget.fault_cycles(n);
            }
            "--max-assignments" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--max-assignments needs a value"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| usage(format!("--max-assignments: cannot parse `{v}`")))?;
                if n == 0 {
                    return Err(usage("--max-assignments must be at least 1"));
                }
                budget = budget.max_assignments(n);
            }
            "--checkpoint" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--checkpoint needs a path"))?;
                checkpoint = Some(v.clone());
            }
            "--resume" => {
                let v = it.next().ok_or_else(|| usage("--resume needs a path"))?;
                resume = Some(v.clone());
            }
            "--speculation" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--speculation needs a value"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| usage(format!("--speculation: cannot parse `{v}`")))?;
                if n == 0 {
                    return Err(usage("--speculation must be at least 1"));
                }
                speculation = n;
            }
            _ => rest.push(a.clone()),
        }
    }
    let telemetry = if trace.is_some() || progress {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let cancel = if budget.is_unlimited() {
        CancelToken::unlimited()
    } else {
        CancelToken::for_budget(&budget)
    };
    let run = RunOptions::default().telemetry(telemetry).cancel(cancel);
    let run = RunOptions {
        sim: SimOptions {
            threads,
            word_width,
            reference_kernel,
            no_cone_seeding,
        },
        ..run
    };
    Ok((
        rest,
        Globals {
            run,
            trace,
            progress,
            checkpoint,
            resume,
            speculation,
        },
    ))
}

/// Writes the trace file and/or the progress summary after a command.
fn finish(g: &Globals) -> Result<(), CliError> {
    if let Some(path) = &g.trace {
        std::fs::write(path, g.run.telemetry.render_trace())?;
        eprintln!("wrote {path}");
    }
    if g.progress {
        eprint!("{}", g.run.telemetry.summary());
    }
    Ok(())
}

/// Dispatches a command line.
pub fn dispatch(argv: &[String]) -> Result<CmdStatus, CliError> {
    // Globals may appear anywhere, including before the command.
    let (rest, g) = extract_globals(argv)?;
    let Some((cmd, rest)) = rest.split_first() else {
        return Err(usage("missing command"));
    };
    if (g.checkpoint.is_some() || g.resume.is_some()) && cmd != "synth" {
        return Err(usage(format!(
            "--checkpoint/--resume only apply to `synth`, not `{cmd}`"
        )));
    }
    let status = match cmd.as_str() {
        "stats" => cmd_stats(rest).map(|()| CmdStatus::Complete),
        "faults" => cmd_faults(rest).map(|()| CmdStatus::Complete),
        "atpg" => cmd_atpg(rest).map(|()| CmdStatus::Complete),
        "sim" => cmd_sim(rest, &g).map(|()| CmdStatus::Complete),
        "synth" => cmd_synth(rest, &g),
        "obs" => cmd_obs(rest, &g).map(|()| CmdStatus::Complete),
        "session" => cmd_session(rest, &g).map(|()| CmdStatus::Complete),
        "podem" => cmd_podem(rest).map(|()| CmdStatus::Complete),
        "vcd" => cmd_vcd(rest).map(|()| CmdStatus::Complete),
        "gen" => cmd_gen(rest).map(|()| CmdStatus::Complete),
        "serve" => cmd_serve(rest, &g),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            return Ok(CmdStatus::Complete);
        }
        other => return Err(usage(format!("unknown command `{other}`"))),
    }?;
    finish(&g)?;
    // A budget that tripped inside any phase surfaces as truncation even
    // when the command itself has no dedicated run-control path.
    match (status, g.run.cancel.cancelled()) {
        (CmdStatus::Complete, Some(reason)) => Ok(CmdStatus::Truncated(reason)),
        _ => Ok(status),
    }
}

fn load_circuit(path: &str) -> Result<Circuit, CliError> {
    let text = std::fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Ok(bench_format::parse(name, &text)?)
}

fn load_sequence(path: &str) -> Result<TestSequence, CliError> {
    let text = std::fs::read_to_string(path)?;
    let rows: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    Ok(TestSequence::parse_rows(&rows)?)
}

fn cmd_stats(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &[]).map_err(usage)?;
    if p.num_pos() > 1 {
        return Err(usage("stats takes exactly one .bench file"));
    }
    let path = p.pos(0).ok_or_else(|| usage("stats needs a .bench file"))?;
    let c = load_circuit(path)?;
    println!("circuit {}", c.name());
    println!("{}", circuit_stats(&c));
    println!(
        "faults: {} checkpoint, {} collapsed, {} uncollapsed",
        FaultList::checkpoints(&c).len(),
        FaultList::collapsed(&c).len(),
        FaultList::all_lines(&c).len()
    );
    Ok(())
}

fn fault_model(name: Option<&str>) -> Result<FaultModel, CliError> {
    match name {
        None => Ok(FaultModel::StuckAt),
        Some(s) => FaultModel::parse(s).ok_or_else(|| {
            usage(format!(
                "unknown fault model `{s}` (expected stuck-at or transition)"
            ))
        }),
    }
}

fn fault_list(
    c: &Circuit,
    universe: Option<&str>,
    model: Option<&str>,
) -> Result<FaultList, CliError> {
    let fm = fault_model(model)?;
    Ok(match universe.unwrap_or("checkpoints") {
        "checkpoints" => FaultUniverse::checkpoints(fm, c),
        "collapsed" => FaultUniverse::collapsed(fm, c),
        "all" => FaultUniverse::enumerate(fm, c),
        other => return Err(usage(format!("unknown fault universe `{other}`"))),
    })
}

fn cmd_faults(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["model", "fault-model"]).map_err(usage)?;
    let path = p
        .pos(0)
        .ok_or_else(|| usage("faults needs a .bench file"))?;
    let c = load_circuit(path)?;
    let fl = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;
    for (i, f) in fl.iter().enumerate() {
        println!("f{i}: {}", f.describe(&c));
    }
    eprintln!("{} faults", fl.len());
    Ok(())
}

fn cmd_atpg(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["seed", "max-len", "o", "model", "fault-model"]).map_err(usage)?;
    let path = p.pos(0).ok_or_else(|| usage("atpg needs a .bench file"))?;
    let c = load_circuit(path)?;
    let faults = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;
    let mut cfg = AtpgConfig::default();
    if let Some(seed) = p.opt_parse::<u64>("seed").map_err(usage)? {
        cfg.seed = seed;
    }
    if let Some(ml) = p.opt_parse::<usize>("max-len").map_err(usage)? {
        cfg.max_len = ml;
    }
    let result = SequenceAtpg::new(&c, cfg).run(&faults);
    let seq = if p.flag("no-compact") {
        result.sequence.clone()
    } else {
        compact(&c, &faults, &result.sequence, &CompactionConfig::default())
    };
    eprintln!(
        "{} vectors ({} before compaction), coverage {:.2}% of {} faults",
        seq.len(),
        result.sequence.len(),
        100.0 * result.coverage(),
        faults.len()
    );
    match p.opt("o") {
        Some(out) => std::fs::write(out, format!("{seq}\n"))?,
        None => println!("{seq}"),
    }
    Ok(())
}

fn cmd_sim(argv: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse(argv, &["model", "fault-model"]).map_err(usage)?;
    let (path, seq_path) = match (p.pos(0), p.pos(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(usage("sim needs a .bench file and a sequence file")),
    };
    let c = load_circuit(path)?;
    let seq = load_sequence(seq_path)?;
    let faults = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;
    let times = FaultSim::with_run_options(&c, &g.run)
        .query(&faults)
        .sequence(&seq)
        .detection_times();
    let det = times.iter().filter(|t| t.is_some()).count();
    println!(
        "{}/{} faults detected ({:.2}%) by {} vectors",
        det,
        faults.len(),
        100.0 * det as f64 / faults.len().max(1) as f64,
        seq.len()
    );
    if p.flag("times") {
        for (i, (f, t)) in faults.iter().zip(&times).enumerate() {
            match t {
                Some(u) => println!("f{i}: u={u}  {}", f.describe(&c)),
                None => println!("f{i}: undetected  {}", f.describe(&c)),
            }
        }
    }
    Ok(())
}

fn cmd_synth(argv: &[String], g: &Globals) -> Result<CmdStatus, CliError> {
    let p = parse(
        argv,
        &[
            "seq",
            "lg",
            "random",
            "verilog",
            "bench",
            "model",
            "fault-model",
            "seed",
        ],
    )
    .map_err(usage)?;
    let path = p.pos(0).ok_or_else(|| usage("synth needs a .bench file"))?;
    let c = load_circuit(path)?;
    let faults = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;

    // Deterministic sequence: from a file or from the built-in ATPG.
    let t = match p.opt("seq") {
        Some(sp) => load_sequence(sp)?,
        None => {
            let mut cfg = AtpgConfig::default();
            if let Some(seed) = p.opt_parse::<u64>("seed").map_err(usage)? {
                cfg.seed = seed;
            }
            let r = SequenceAtpg::new(&c, cfg).run(&faults);
            let t = compact(&c, &faults, &r.sequence, &CompactionConfig::default());
            eprintln!(
                "ATPG produced {} vectors (coverage {:.2}%)",
                t.len(),
                100.0 * r.coverage()
            );
            t
        }
    };

    let l_g = p
        .opt_parse::<usize>("lg")
        .map_err(usage)?
        .unwrap_or_else(|| (2 * t.len()).max(256));
    let random_sessions = p.opt_parse::<usize>("random").map_err(usage)?.unwrap_or(0);
    let syn_cfg = SynthesisConfig {
        sequence_length: l_g,
        speculation: g.speculation,
        run: g.run.clone(),
        ..SynthesisConfig::default()
    };

    let mut truncated: Option<TruncationReason> = None;
    let (omega, guaranteed, subs, random_note) = if random_sessions > 0 {
        if g.checkpoint.is_some() || g.resume.is_some() {
            return Err(usage(
                "--checkpoint/--resume do not support the hybrid (--random) flow",
            ));
        }
        let r = synthesize_hybrid(
            &c,
            &t,
            &faults,
            &HybridConfig {
                random_sessions,
                synthesis: syn_cfg.clone(),
                ..HybridConfig::default()
            },
        );
        let note = format!(
            " (random phase detected {} of {})",
            r.random_count(),
            faults.len()
        );
        (
            r.synthesis.omega.clone(),
            r.coverage_guaranteed(),
            r.synthesis.distinct_subsequences().len(),
            note,
        )
    } else {
        let ctl = RunControl {
            // The globals already armed `run.cancel` with the budget;
            // run_controlled reuses that token.
            budget: Budget::default(),
            checkpoint: g.checkpoint.as_ref().map(PathBuf::from),
        };
        let mut syn = Synthesis::new(&c, &t, &faults).config(syn_cfg.clone());
        if let Some(path) = &g.resume {
            let ckpt = Checkpoint::load(std::path::Path::new(path))?;
            syn = syn.resume_from(ckpt)?;
            eprintln!("resuming from {path}");
        }
        let outcome = syn.run_controlled(&ctl);
        truncated = outcome.truncation();
        let r = outcome.into_result();
        (
            r.omega.clone(),
            r.coverage_guaranteed(),
            r.distinct_subsequences().len(),
            String::new(),
        )
    };
    if let Some(reason) = truncated {
        eprintln!("synthesis truncated: {reason} (partial results below are valid)");
    }

    let pruned = wbist_core::reverse_order_prune(
        &c,
        &faults,
        &omega,
        &PruneOptions::new(l_g).run(g.run.clone()),
    );
    println!(
        "L_G = {l_g}: {} assignments ({} after pruning), {} distinct subsequences{}",
        omega.len(),
        pruned.len(),
        subs,
        random_note
    );
    println!(
        "coverage guarantee: {}",
        if guaranteed { "met" } else { "NOT met" }
    );
    for (k, sel) in pruned.iter().enumerate() {
        println!(
            "  Ω_{k}: {} (u={}, rank {})",
            sel.assignment, sel.detection_time, sel.rank
        );
    }

    let status = match truncated {
        Some(reason) => CmdStatus::Truncated(reason),
        None => CmdStatus::Complete,
    };
    if pruned.is_empty() {
        eprintln!("nothing to synthesize hardware for");
        return Ok(status);
    }
    if random_sessions > 0 {
        let gen = build_hybrid_generator(&pruned, l_g, random_sessions, 24)?;
        print_hw(&gen.circuit, p.opt("verilog"), p.opt("bench"))?;
        println!(
            "hybrid generator: {} random + {} weighted sessions",
            gen.num_random_sessions, gen.num_assignments
        );
    } else {
        let gen = build_generator(&pruned, l_g)?;
        let cost = generator_cost(&gen);
        cost.record(&g.run.telemetry);
        println!("{cost}");
        print_hw(&gen.circuit, p.opt("verilog"), p.opt("bench"))?;
    }
    Ok(status)
}

fn print_hw(circuit: &Circuit, verilog: Option<&str>, bench: Option<&str>) -> Result<(), CliError> {
    if let Some(path) = verilog {
        std::fs::write(path, to_verilog(circuit))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = bench {
        std::fs::write(path, bench_format::write(circuit))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Produces the deterministic sequence for commands that need one: from
/// `--seq`, or from the built-in ATPG.
fn sequence_for(c: &Circuit, faults: &FaultList, p: &Parsed) -> Result<TestSequence, CliError> {
    match p.opt("seq") {
        Some(sp) => load_sequence(sp),
        None => {
            let r = SequenceAtpg::new(c, AtpgConfig::default()).run(faults);
            Ok(compact(
                c,
                faults,
                &r.sequence,
                &CompactionConfig::default(),
            ))
        }
    }
}

fn cmd_obs(argv: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse(argv, &["seq", "lg", "model", "fault-model"]).map_err(usage)?;
    let path = p.pos(0).ok_or_else(|| usage("obs needs a .bench file"))?;
    let c = load_circuit(path)?;
    let faults = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;
    let t = sequence_for(&c, &faults, &p)?;
    let l_g = p
        .opt_parse::<usize>("lg")
        .map_err(usage)?
        .unwrap_or_else(|| (2 * t.len()).max(256));
    let r = synthesize_weighted_bist(
        &c,
        &t,
        &faults,
        &SynthesisConfig {
            sequence_length: l_g,
            speculation: g.speculation,
            run: g.run.clone(),
            ..SynthesisConfig::default()
        },
    );
    let tr = wbist_core::observation_point_tradeoff(
        &c,
        &faults,
        &r.omega,
        &ObsOptions::new(l_g).run(g.run.clone()),
    );
    println!("seq   sub   len    f.e.   obs    f.e.(obs)");
    for row in &tr.rows {
        println!(
            "{:>3} {:>5} {:>5} {:>7.2} {:>5} {:>9.2}",
            row.num_assignments,
            row.num_subsequences,
            row.max_len,
            row.fault_efficiency,
            row.num_obs,
            row.fe_with_obs
        );
    }
    Ok(())
}

fn cmd_session(argv: &[String], g: &Globals) -> Result<(), CliError> {
    let p = parse(
        argv,
        &["seq", "lg", "misr", "capture", "model", "fault-model"],
    )
    .map_err(usage)?;
    let path = p
        .pos(0)
        .ok_or_else(|| usage("session needs a .bench file"))?;
    let c = load_circuit(path)?;
    let faults = fault_list(&c, p.opt("model"), p.opt("fault-model"))?;
    let t = sequence_for(&c, &faults, &p)?;
    let l_g = p
        .opt_parse::<usize>("lg")
        .map_err(usage)?
        .unwrap_or_else(|| (2 * t.len()).max(256));
    let r = synthesize_weighted_bist(
        &c,
        &t,
        &faults,
        &SynthesisConfig {
            sequence_length: l_g,
            speculation: g.speculation,
            run: g.run.clone(),
            ..SynthesisConfig::default()
        },
    );
    if r.omega.is_empty() {
        eprintln!("no weight assignments were selected");
        return Ok(());
    }
    let report = wbist_core::run_bist_session(
        &c,
        &faults,
        &r.omega,
        &wbist_core::SessionConfig {
            misr_width: p.opt_parse::<usize>("misr").map_err(usage)?.unwrap_or(16),
            sequence_length: l_g,
            capture_from: p.opt_parse::<usize>("capture").map_err(usage)?.unwrap_or(8),
            run: g.run.clone(),
        },
    );
    println!(
        "observed {} / signature {} of {} faults ({} lost to aliasing/X; golden {})",
        report.observed(),
        report.signed(),
        faults.len(),
        report.lost_in_signature,
        if report.golden_known {
            "clean"
        } else {
            "contains X"
        }
    );
    Ok(())
}

fn cmd_podem(argv: &[String]) -> Result<(), CliError> {
    use wbist_atpg::{Podem, PodemConfig, PodemResult};
    let p = parse(argv, &["model", "fault-model"]).map_err(usage)?;
    let path = p.pos(0).ok_or_else(|| usage("podem needs a .bench file"))?;
    let c = load_circuit(path)?;
    let scan = wbist_netlist::transform::full_scan(&c)?;
    if fault_model(p.opt("fault-model"))? != FaultModel::StuckAt {
        return Err(usage(
            "podem generates single-vector stuck-at tests; --fault-model transition is not supported",
        ));
    }
    let faults = fault_list(&scan, p.opt("model"), None)?;
    let podem = Podem::new(&scan, PodemConfig::default());
    let mut tested = 0usize;
    let mut redundant = 0usize;
    let mut aborted = 0usize;
    for (i, &f) in faults.faults().iter().enumerate() {
        match podem.generate(f) {
            PodemResult::Test(_) => tested += 1,
            PodemResult::Redundant => {
                redundant += 1;
                println!("f{i}: redundant  {}", f.describe(&scan));
            }
            PodemResult::Aborted => {
                aborted += 1;
                println!("f{i}: aborted    {}", f.describe(&scan));
            }
        }
    }
    println!(
        "scan view: {} testable, {} redundant, {} aborted of {} faults",
        tested,
        redundant,
        aborted,
        faults.len()
    );
    Ok(())
}

fn cmd_vcd(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["o"]).map_err(usage)?;
    let (path, seq_path) = match (p.pos(0), p.pos(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(usage("vcd needs a .bench file and a sequence file")),
    };
    let c = load_circuit(path)?;
    let seq = load_sequence(seq_path)?;
    let trace = wbist_sim::LogicSim::new(&c).trace(&seq)?;
    let vcd = wbist_sim::vcd::trace_to_vcd(&c, &trace, c.name());
    match p.opt("o") {
        Some(out) => {
            std::fs::write(out, vcd)?;
            eprintln!("wrote {out}");
        }
        None => print!("{vcd}"),
    }
    Ok(())
}

fn cmd_gen(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["o"]).map_err(usage)?;
    let name = p.pos(0).ok_or_else(|| usage("gen needs a circuit name"))?;
    let circuit = build_named(name)?;
    let text = bench_format::write(&circuit);
    match p.opt("o") {
        Some(out) => {
            std::fs::write(out, &text)?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_serve(argv: &[String], g: &Globals) -> Result<CmdStatus, CliError> {
    let p = parse(
        argv,
        &[
            "socket",
            "workers",
            "job-threads",
            "max-queue",
            "retry-max",
            "retry-backoff-ms",
            "evict-after-ms",
            "ckpt-dir",
        ],
    )
    .map_err(usage)?;
    if p.num_pos() > 0 {
        return Err(usage("serve takes no positional arguments"));
    }
    // The daemon runs unattended; a silently ignored misspelled option
    // is worse than a refusal to start.
    if let Some(f) = p.unknown_flag(&[]) {
        return Err(usage(format!("serve: unknown option `--{f}`")));
    }
    // `--trace`/`--progress` enable telemetry through the globals; the
    // daemon's `serve.*` counters land in the same trace file.
    let mut cfg = ServeConfig {
        handle_signals: true,
        telemetry: g.run.telemetry.clone(),
        ..ServeConfig::default()
    };
    if let Some(n) = p.opt_parse::<usize>("workers").map_err(usage)? {
        if n == 0 {
            return Err(usage("--workers must be at least 1"));
        }
        cfg.workers = n;
    }
    if let Some(n) = p.opt_parse::<usize>("job-threads").map_err(usage)? {
        if n == 0 {
            return Err(usage("--job-threads must be at least 1"));
        }
        cfg.job_threads = n;
    }
    if let Some(n) = p.opt_parse::<usize>("max-queue").map_err(usage)? {
        cfg.max_queue = n;
    }
    if let Some(n) = p.opt_parse::<u32>("retry-max").map_err(usage)? {
        cfg.retry_max = n;
    }
    if let Some(n) = p.opt_parse::<u64>("retry-backoff-ms").map_err(usage)? {
        cfg.retry_backoff_ms = n;
    }
    cfg.evict_after_ms = p.opt_parse::<u64>("evict-after-ms").map_err(usage)?;
    cfg.ckpt_dir = p.opt("ckpt-dir").map(PathBuf::from);
    let summary = match p.opt("socket") {
        #[cfg(unix)]
        Some(path) => wbist_serve::serve_unix_socket(
            cfg,
            std::path::Path::new(path),
            Box::new(std::io::stdout()),
        )?,
        #[cfg(not(unix))]
        Some(_) => return Err(usage("--socket needs a Unix platform")),
        None => wbist_serve::serve(
            cfg,
            std::io::BufReader::new(std::io::stdin()),
            Box::new(std::io::stdout()),
        )?,
    };
    eprintln!(
        "serve: {} attempts, {} evicted to checkpoints, {} left queued",
        summary.attempts, summary.evicted_at_shutdown, summary.left_queued
    );
    if summary.truncated {
        // Resumable work was drained to disk: the documented "valid
        // partial output" condition, same as a tripped budget.
        Ok(CmdStatus::Truncated(TruncationReason::Preempted))
    } else {
        Ok(CmdStatus::Complete)
    }
}

fn build_named(name: &str) -> Result<Circuit, CliError> {
    if let Some(c) = synthetic::by_name(name) {
        return Ok(c);
    }
    let parts: Vec<&str> = name.split(':').collect();
    let parse_n = |s: &str| -> Result<usize, CliError> {
        s.parse::<usize>()
            .map_err(|_| usage(format!("bad size `{s}` in `{name}`")))
    };
    match parts.as_slice() {
        ["shift", n] => Ok(structured::shift_register(parse_n(n)?)),
        ["count", n] => Ok(structured::counter(parse_n(n)?)),
        ["johnson", n] => Ok(structured::johnson_counter(parse_n(n)?)),
        ["lock", w, a] => Ok(structured::sequence_lock(parse_n(w)?, parse_n(a)?)),
        _ => Err(usage(format!("unknown circuit `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert!(matches!(
            dispatch(&argv(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(dispatch(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_succeeds() {
        dispatch(&argv(&["help"])).expect("help works");
    }

    #[test]
    fn zero_threads_is_rejected_once_for_every_command() {
        for cmd in ["sim", "synth", "obs", "session", "stats"] {
            let e = dispatch(&argv(&[cmd, "x.bench", "--threads", "0"]));
            match e {
                Err(CliError::Usage(msg)) => {
                    assert!(msg.contains("--threads"), "{cmd}: {msg}")
                }
                other => panic!("{cmd}: expected usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_file_is_written_and_thread_invariant() {
        let dir = std::env::temp_dir().join(format!("wbist-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let bench = dir.join("s27.bench");
        let seq = dir.join("seq.txt");
        dispatch(&argv(&["gen", "s27", "-o", bench.to_str().expect("utf8")])).expect("gen");
        dispatch(&argv(&[
            "atpg",
            bench.to_str().expect("utf8"),
            "--max-len",
            "600",
            "-o",
            seq.to_str().expect("utf8"),
        ]))
        .expect("atpg");
        let mut traces = Vec::new();
        for threads in ["1", "4"] {
            let out = dir.join(format!("trace{threads}.json"));
            dispatch(&argv(&[
                "synth",
                bench.to_str().expect("utf8"),
                "--seq",
                seq.to_str().expect("utf8"),
                "--lg",
                "64",
                "--threads",
                threads,
                "--trace",
                out.to_str().expect("utf8"),
            ]))
            .expect("synth with trace");
            traces.push(std::fs::read_to_string(&out).expect("trace written"));
        }
        assert_eq!(
            traces[0], traces[1],
            "trace must be byte-identical across thread counts"
        );
        assert!(traces[0].contains("wbist-trace/v1"));
        assert!(traces[0].contains("fault_drop"));
        assert!(traces[0].contains("\"synthesis\""));
        assert!(traces[0].contains("\"prune\""));
        assert!(traces[0].contains("hw.gates"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_word_width_is_rejected() {
        for bad in ["32", "0", "sixty-four"] {
            let e = dispatch(&argv(&["sim", "x.bench", "y.txt", "--word-width", bad]));
            match e {
                Err(CliError::Usage(msg)) => assert!(msg.contains("word width"), "{msg}"),
                other => panic!("--word-width {bad}: expected usage error, got {other:?}"),
            }
        }
        #[cfg(not(feature = "w256"))]
        {
            let e = dispatch(&argv(&["sim", "x.bench", "y.txt", "--word-width", "256"]));
            match e {
                Err(CliError::Usage(msg)) => assert!(msg.contains("w256"), "{msg}"),
                other => panic!("expected usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn word_width_changes_only_the_width_event_in_the_trace() {
        let dir = std::env::temp_dir().join(format!("wbist-width-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let bench = dir.join("s27.bench");
        dispatch(&argv(&["gen", "s27", "-o", bench.to_str().expect("utf8")])).expect("gen");
        let mut traces = Vec::new();
        for width in ["64", "128"] {
            let out = dir.join(format!("trace{width}.json"));
            dispatch(&argv(&[
                "synth",
                bench.to_str().expect("utf8"),
                "--lg",
                "64",
                "--word-width",
                width,
                "--trace",
                out.to_str().expect("utf8"),
            ]))
            .expect("synth with trace");
            traces.push(std::fs::read_to_string(&out).expect("trace written"));
        }
        assert!(traces[1].contains("sim.word_width"));
        // The width is recorded as provenance; everything else in the
        // deterministic trace — detections, Ω, every counter — must be
        // byte-identical across widths.
        let normalized = traces[1].replace("\"bits\": 128", "\"bits\": 64");
        assert_eq!(
            traces[0], normalized,
            "trace must be width-invariant apart from the sim.word_width event"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // One test per exit-code class: 0 = Ok(Complete), 2 = Ok(Truncated),
    // 1 = Err(Usage | Run). `main` maps these one to one.
    #[test]
    fn complete_runs_report_complete() {
        assert_eq!(
            dispatch(&argv(&["help"])).expect("help works"),
            CmdStatus::Complete
        );
    }

    #[test]
    fn tiny_budget_reports_truncated() {
        let dir = std::env::temp_dir().join(format!("wbist-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let bench = dir.join("s27.bench");
        dispatch(&argv(&["gen", "s27", "-o", bench.to_str().expect("utf8")])).expect("gen");
        let status = dispatch(&argv(&[
            "synth",
            bench.to_str().expect("utf8"),
            "--lg",
            "64",
            "--max-assignments",
            "1",
        ]))
        .expect("truncation is not an error");
        assert!(matches!(status, CmdStatus::Truncated(_)), "{status:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_and_run_failures_are_errors() {
        // Usage: bad flag value.
        assert!(matches!(
            dispatch(&argv(&["synth", "x.bench", "--max-assignments", "0"])),
            Err(CliError::Usage(_))
        ));
        // Usage: checkpointing outside synth.
        assert!(matches!(
            dispatch(&argv(&["stats", "x.bench", "--checkpoint", "c.ckpt"])),
            Err(CliError::Usage(_))
        ));
        // Run: missing input file.
        assert!(matches!(
            dispatch(&argv(&["stats", "/nonexistent/x.bench"])),
            Err(CliError::Run(_))
        ));
    }

    #[test]
    fn synth_checkpoint_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("wbist-cli-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let bench = dir.join("s27.bench");
        let seq = dir.join("seq.txt");
        let ckpt = dir.join("synth.ckpt");
        dispatch(&argv(&["gen", "s27", "-o", bench.to_str().expect("utf8")])).expect("gen");
        dispatch(&argv(&[
            "atpg",
            bench.to_str().expect("utf8"),
            "--max-len",
            "600",
            "-o",
            seq.to_str().expect("utf8"),
        ]))
        .expect("atpg");
        let base = [
            "synth",
            bench.to_str().expect("utf8"),
            "--seq",
            seq.to_str().expect("utf8"),
            "--lg",
            "64",
        ];
        let mut cut = argv(&base);
        cut.extend(argv(&[
            "--max-assignments",
            "1",
            "--checkpoint",
            ckpt.to_str().expect("utf8"),
        ]));
        let status = dispatch(&cut).expect("truncated synth runs");
        assert!(matches!(status, CmdStatus::Truncated(_)));
        assert!(ckpt.exists(), "checkpoint written");

        let mut resumed = argv(&base);
        resumed.extend(argv(&["--resume", ckpt.to_str().expect("utf8")]));
        assert_eq!(
            dispatch(&resumed).expect("resume completes"),
            CmdStatus::Complete
        );

        // Resuming against a different configuration is rejected.
        let mut wrong = argv(&base);
        wrong[5] = "48".to_string(); // different --lg
        wrong.extend(argv(&["--resume", ckpt.to_str().expect("utf8")]));
        assert!(matches!(dispatch(&wrong), Err(CliError::Run(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_builds_named_circuits() {
        for n in ["s27", "s298", "shift:4", "count:3", "lock:4:2", "johnson:5"] {
            let c = build_named(n).expect(n);
            assert!(c.is_levelized());
        }
        assert!(build_named("nope").is_err());
        assert!(build_named("shift:x").is_err());
    }

    #[test]
    fn end_to_end_through_tempdir() {
        let dir = std::env::temp_dir().join(format!("wbist-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let bench = dir.join("s27.bench");
        let seq = dir.join("seq.txt");

        // gen → file
        dispatch(&argv(&["gen", "s27", "-o", bench.to_str().expect("utf8")])).expect("gen works");
        // stats
        dispatch(&argv(&["stats", bench.to_str().expect("utf8")])).expect("stats works");
        // atpg → file
        dispatch(&argv(&[
            "atpg",
            bench.to_str().expect("utf8"),
            "--max-len",
            "600",
            "-o",
            seq.to_str().expect("utf8"),
        ]))
        .expect("atpg works");
        // sim
        dispatch(&argv(&[
            "sim",
            bench.to_str().expect("utf8"),
            seq.to_str().expect("utf8"),
        ]))
        .expect("sim works");
        // synth with Verilog output
        let v = dir.join("gen.v");
        dispatch(&argv(&[
            "synth",
            bench.to_str().expect("utf8"),
            "--seq",
            seq.to_str().expect("utf8"),
            "--verilog",
            v.to_str().expect("utf8"),
        ]))
        .expect("synth works");
        assert!(v.exists());
        let text = std::fs::read_to_string(&v).expect("readable");
        assert!(text.contains("module weight_test_generator"));

        // obs / session / podem / vcd also run end to end.
        dispatch(&argv(&[
            "obs",
            bench.to_str().expect("utf8"),
            "--seq",
            seq.to_str().expect("utf8"),
            "--lg",
            "64",
        ]))
        .expect("obs works");
        dispatch(&argv(&[
            "session",
            bench.to_str().expect("utf8"),
            "--seq",
            seq.to_str().expect("utf8"),
            "--lg",
            "64",
        ]))
        .expect("session works");
        dispatch(&argv(&["podem", bench.to_str().expect("utf8")])).expect("podem works");
        let wave = dir.join("trace.vcd");
        dispatch(&argv(&[
            "vcd",
            bench.to_str().expect("utf8"),
            seq.to_str().expect("utf8"),
            "-o",
            wave.to_str().expect("utf8"),
        ]))
        .expect("vcd works");
        assert!(wave.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
