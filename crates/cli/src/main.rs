//! `wbist` — command-line front end for the weighted-sequence BIST
//! toolkit.
//!
//! ```text
//! wbist stats  <circuit.bench>
//! wbist faults <circuit.bench> [--model checkpoints|collapsed|all]
//! wbist atpg   <circuit.bench> [--seed N] [--max-len N] [--no-compact] [-o seq.txt]
//! wbist sim    <circuit.bench> <seq.txt> [--times]
//! wbist synth  <circuit.bench> [--seq seq.txt] [--lg N] [--random N]
//!              [--verilog out.v] [--bench out.bench]
//! wbist gen    <name> [-o out.bench]
//! ```
//!
//! `gen` accepts `s27`, any Table-6 stand-in name (`s298`, `s1423`, …),
//! or a structured spec: `shift:N`, `count:N`, `lock:WIDTH:ARM`,
//! `johnson:N`.

use std::process::ExitCode;

mod args;
mod commands;

// Exit-code contract: 0 = complete, 2 = budget truncated (valid partial
// results), 1 = usage or run error.
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(commands::CmdStatus::Complete) => ExitCode::SUCCESS,
        Ok(commands::CmdStatus::Truncated(reason)) => {
            eprintln!("wbist: run truncated: {reason}");
            ExitCode::from(2)
        }
        Err(commands::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!("\n{}", commands::USAGE);
            ExitCode::FAILURE
        }
        Err(commands::CliError::Run(err)) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
