//! Full-binary contract tests for `wbist serve`: the daemon is spawned
//! as a real process, driven over stdin, and observed over stdout —
//! proving the documented exit-code contract (0 complete, 2 drained
//! mid-run, 1 usage error), the SIGTERM graceful drain, and the
//! checkpoint files left behind for the next daemon lifetime.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Duration;

struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<std::process::ChildStdout>,
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wbist-serve-cli-{name}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spawn(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wbist"))
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wbist serve");
    // Watchdog: a wedged daemon must fail the test, not hang the suite.
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(300));
        let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
    });
    let stdin = child.stdin.take();
    let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    Daemon {
        child,
        stdin,
        stdout,
    }
}

impl Daemon {
    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin open");
        writeln!(stdin, "{line}").expect("write request");
        stdin.flush().expect("flush request");
    }

    /// Reads stdout lines until one contains `needle`; panics on EOF.
    fn wait_for(&mut self, needle: &str) -> String {
        loop {
            let mut line = String::new();
            let n = self.stdout.read_line(&mut line).expect("read stdout");
            assert!(n > 0, "daemon closed stdout before `{needle}` appeared");
            if line.contains(needle) {
                return line;
            }
        }
    }

    /// Closes stdin (EOF) and returns (exit code, remaining stdout).
    fn finish(mut self) -> (i32, String) {
        drop(self.stdin.take());
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain stdout");
        let status = self.child.wait().expect("wait for daemon");
        (status.code().expect("daemon exited with a code"), rest)
    }
}

/// A complete session — register, run a job to `done`, explicit
/// shutdown — exits 0 with an untruncated drain summary.
#[test]
fn completed_session_exits_zero() {
    let dir = scratch_dir("complete");
    std::fs::remove_file(dir.join("j1.ckpt")).ok();
    let mut d = spawn(&["--ckpt-dir", dir.to_str().unwrap()]);
    d.send(r#"{"op":"register","name":"c","builtin":"s298"}"#);
    d.send(r#"{"op":"submit","id":"j1","kind":"synth","circuit":"c"}"#);
    d.wait_for(r#""state":"running""#);
    let done = d.wait_for(r#""state":"done""#);
    assert!(
        done.contains(r#""result""#),
        "done event carries the result"
    );
    d.send(r#"{"op":"shutdown"}"#);
    let (code, rest) = d.finish();
    assert_eq!(code, 0, "clean session must exit 0\n{rest}");
    assert!(rest.contains(r#""truncated":false"#), "{rest}");
}

/// EOF while a job is mid-run triggers the graceful drain: the job is
/// evicted to its checkpoint, the summary reports truncation, and the
/// process exits 2 — the documented "work remains" code.
#[test]
fn eof_mid_run_drains_to_checkpoint_and_exits_two() {
    let dir = scratch_dir("eof-drain");
    std::fs::remove_file(dir.join("big.ckpt")).ok();
    let mut d = spawn(&["--ckpt-dir", dir.to_str().unwrap()]);
    d.send(r#"{"op":"register","name":"b","builtin":"s1196"}"#);
    d.send(r#"{"op":"submit","id":"big","kind":"synth","circuit":"b"}"#);
    d.wait_for(r#""state":"running""#);
    let (code, rest) = d.finish();
    assert_eq!(code, 2, "drained-mid-run must exit 2\n{rest}");
    assert!(rest.contains(r#""state":"evicted""#), "{rest}");
    assert!(rest.contains(r#""truncated":true"#), "{rest}");
    assert!(
        dir.join("big.ckpt").exists(),
        "the evicted job must leave its checkpoint behind"
    );
}

/// SIGTERM mid-run is the same graceful drain as EOF: the daemon logs
/// the signal, evicts the running job to its checkpoint, and exits 2.
#[cfg(unix)]
#[test]
fn sigterm_mid_run_drains_gracefully() {
    let dir = scratch_dir("sigterm");
    std::fs::remove_file(dir.join("big.ckpt")).ok();
    let mut d = spawn(&["--ckpt-dir", dir.to_str().unwrap()]);
    d.send(r#"{"op":"register","name":"b","builtin":"s1196"}"#);
    d.send(r#"{"op":"submit","id":"big","kind":"synth","circuit":"b"}"#);
    d.wait_for(r#""state":"running""#);
    let killed = Command::new("kill")
        .arg("-TERM")
        .arg(d.child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());
    // stdin stays open: the signal alone must trigger the drain.
    d.wait_for(r#""event":"sigterm""#);
    d.wait_for(r#""state":"evicted""#);
    let (code, rest) = d.finish();
    assert_eq!(code, 2, "SIGTERM drain must exit 2\n{rest}");
    assert!(rest.contains(r#""truncated":true"#), "{rest}");
    assert!(dir.join("big.ckpt").exists());
}

/// A drained job's checkpoint is picked up by the *next* daemon
/// process: resubmitting the same id reports `resumed:true` and
/// completes, and that session exits 0.
#[test]
fn next_daemon_lifetime_resumes_the_drained_job() {
    let dir = scratch_dir("restart");
    std::fs::remove_file(dir.join("carry.ckpt")).ok();
    let mut first = spawn(&["--ckpt-dir", dir.to_str().unwrap()]);
    first.send(r#"{"op":"register","name":"b","builtin":"s1196"}"#);
    first.send(r#"{"op":"submit","id":"carry","kind":"synth","circuit":"b"}"#);
    first.wait_for(r#""state":"running""#);
    let (code, _) = first.finish();
    assert_eq!(code, 2);
    assert!(dir.join("carry.ckpt").exists());

    let mut second = spawn(&["--ckpt-dir", dir.to_str().unwrap()]);
    second.send(r#"{"op":"register","name":"b","builtin":"s1196"}"#);
    second.send(r#"{"op":"submit","id":"carry","kind":"synth","circuit":"b"}"#);
    let done = second.wait_for(r#""state":"done""#);
    assert!(done.contains(r#""resumed":true"#), "{done}");
    second.send(r#"{"op":"shutdown"}"#);
    let (code, _) = second.finish();
    assert_eq!(code, 0);
}

/// Bad invocations are usage errors: exit 1 before any serving starts.
#[test]
fn invalid_flags_are_usage_errors() {
    for bad in [
        &["--workers", "0"][..],
        &["--job-threads", "0"][..],
        &["--workers", "zebra"][..],
        &["--unknown-flag"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_wbist"))
            .arg("serve")
            .args(bad)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("run wbist serve");
        assert_eq!(out.status.code(), Some(1), "{bad:?}");
        assert!(!out.stderr.is_empty(), "{bad:?} must explain itself");
    }
}
