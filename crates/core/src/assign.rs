//! Weight assignments and the candidate sets `A_i` (paper, Section 4.1).

use crate::subseq::Subsequence;
use crate::weights::WeightSet;
use wbist_sim::TestSequence;

/// A weight assignment: one subsequence per primary input. Input `i`
/// receives the periodic stream of `subs[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WeightAssignment {
    subs: Vec<Subsequence>,
}

impl WeightAssignment {
    /// Creates an assignment from one subsequence per input.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty.
    pub fn new(subs: Vec<Subsequence>) -> Self {
        assert!(!subs.is_empty(), "assignment needs at least one input");
        WeightAssignment { subs }
    }

    /// The per-input subsequences.
    pub fn subsequences(&self) -> &[Subsequence] {
        &self.subs
    }

    /// Number of inputs the assignment drives.
    pub fn num_inputs(&self) -> usize {
        self.subs.len()
    }

    /// The longest subsequence length in the assignment.
    pub fn max_len(&self) -> usize {
        self.subs.iter().map(Subsequence::len).max().unwrap_or(0)
    }

    /// Generates the weighted test sequence `T_G` of `len` time units:
    /// input `i` carries `subs[i]` repeated (paper, Section 2).
    pub fn generate(&self, len: usize) -> TestSequence {
        let mut seq = TestSequence::new(self.subs.len());
        let mut row = vec![false; self.subs.len()];
        for u in 0..len {
            for (i, sub) in self.subs.iter().enumerate() {
                row[i] = sub.value_at(u);
            }
            seq.push_row(&row);
        }
        seq
    }
}

impl std::fmt::Display for WeightAssignment {
    /// Comma-separated subsequences, e.g. `{01, 0, 100, 1}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        for (i, s) in self.subs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        f.write_str("}")
    }
}

/// One entry of a candidate set `A_i`: a subsequence (by its index in
/// `S`) together with its total match count `n_m` against `T_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index into the [`WeightSet`].
    pub index: usize,
    /// The paper's `n_m`: time units at which the repeated subsequence
    /// matches `T_i`.
    pub matches: usize,
    /// Length of the subsequence (cached for ordering and the full-length
    /// fix-up).
    pub len: usize,
}

/// How the candidates within each `A_i` are ranked.
///
/// The paper uses [`CandidateOrdering::MatchCount`] and argues for it in
/// §4.1; the other orderings exist for the ablation experiments that
/// test that argument (`selection_ablation` in `wbist-bench`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CandidateOrdering {
    /// Decreasing total match count `n_m` (ties: shorter first) — the
    /// paper's choice.
    #[default]
    MatchCount,
    /// Longest subsequence first (maximal window reproduction first).
    LongestFirst,
    /// Shortest subsequence first (cheapest hardware first).
    ShortestFirst,
    /// The order the subsequences entered `S` (no sorting insight).
    InsertionOrder,
}

/// The candidate sets `A_0 … A_{n-1}` for one detection time `u`.
///
/// `A_i` holds every subsequence of `S` (of length at most `L_S`) whose
/// repetition matches `T_i` perfectly over the window ending at `u`,
/// ranked by the chosen [`CandidateOrdering`] (the paper: decreasing
/// `n_m`; ties: shorter first, then `S` order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSets {
    sets: Vec<Vec<Candidate>>,
    /// The `L_S` bound the sets were built with.
    max_ls: usize,
}

impl CandidateSets {
    /// Builds the sets `A_i` for detection time `u` with the paper's
    /// ordering, considering subsequences of `s` with length at most
    /// `max_ls` (paper §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `u >= t.len()`.
    pub fn build(s: &WeightSet, t: &TestSequence, u: usize, max_ls: usize) -> Self {
        Self::build_with(s, t, u, max_ls, CandidateOrdering::MatchCount)
    }

    /// Like [`CandidateSets::build`] with an explicit ordering.
    ///
    /// # Panics
    ///
    /// Panics if `u >= t.len()`.
    pub fn build_with(
        s: &WeightSet,
        t: &TestSequence,
        u: usize,
        max_ls: usize,
        ordering: CandidateOrdering,
    ) -> Self {
        assert!(u < t.len(), "u beyond end of T");
        let mut sets = Vec::with_capacity(t.num_inputs());
        for i in 0..t.num_inputs() {
            let track = t.input_track(i);
            let mut set: Vec<Candidate> = s
                .iter()
                .filter(|(_, sub)| sub.len() <= max_ls && sub.matches_window(&track, u))
                .map(|(idx, sub)| Candidate {
                    index: idx,
                    matches: sub.count_matches(&track),
                    len: sub.len(),
                })
                .collect();
            match ordering {
                CandidateOrdering::MatchCount => set.sort_by(|a, b| {
                    b.matches
                        .cmp(&a.matches)
                        .then(a.len.cmp(&b.len))
                        .then(a.index.cmp(&b.index))
                }),
                CandidateOrdering::LongestFirst => set.sort_by(|a, b| {
                    b.len
                        .cmp(&a.len)
                        .then(b.matches.cmp(&a.matches))
                        .then(a.index.cmp(&b.index))
                }),
                CandidateOrdering::ShortestFirst => set.sort_by(|a, b| {
                    a.len
                        .cmp(&b.len)
                        .then(b.matches.cmp(&a.matches))
                        .then(a.index.cmp(&b.index))
                }),
                CandidateOrdering::InsertionOrder => set.sort_by_key(|c| c.index),
            }
            sets.push(set);
        }
        CandidateSets { sets, max_ls }
    }

    /// The set `A_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&self, i: usize) -> &[Candidate] {
        &self.sets[i]
    }

    /// Number of inputs (sets).
    pub fn num_inputs(&self) -> usize {
        self.sets.len()
    }

    /// The largest set size — one more than the last meaningful rank.
    pub fn max_rank(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether any set is empty (no candidate matches for some input —
    /// can only happen if `S` lacks the derived subsequences for `u`).
    pub fn any_empty(&self) -> bool {
        self.sets.iter().any(Vec::is_empty)
    }

    /// The paper's §4.1 fix-up: if no rank `j` exists at which *every*
    /// input's candidate has length exactly `L_S`, prepend to each `A_i`
    /// its best candidate of length `L_S` (duplicating it at the front).
    /// No-op when such a rank already exists or some input has no
    /// length-`L_S` candidate.
    pub fn ensure_full_length_rank(&mut self) {
        let ls = self.max_ls;
        let ranks = self.max_rank();
        let has_full_rank = (0..ranks).any(|j| {
            self.sets.iter().all(|set| {
                set.get(j.min(set.len().saturating_sub(1)))
                    .is_some_and(|c| c.len == ls)
            })
        });
        if has_full_rank {
            return;
        }
        let fronts: Vec<Option<Candidate>> = self
            .sets
            .iter()
            .map(|set| set.iter().find(|c| c.len == ls).copied())
            .collect();
        if fronts.iter().any(Option::is_none) {
            return;
        }
        for (set, front) in self.sets.iter_mut().zip(fronts) {
            set.insert(0, front.expect("checked above"));
        }
    }

    /// The weight assignment at rank `j`: input `i` takes `A_i[j]`,
    /// clamped to the last entry when `A_i` is shorter (paper §4.1 keeps
    /// increasing `j`; clamping keeps every input defined). Returns
    /// `None` if any set is empty.
    pub fn assignment_at(&self, s: &WeightSet, j: usize) -> Option<WeightAssignment> {
        let mut subs = Vec::with_capacity(self.sets.len());
        for set in &self.sets {
            let c = set.get(j.min(set.len().checked_sub(1)?))?;
            subs.push(s.get(c.index).clone());
        }
        Some(WeightAssignment::new(subs))
    }

    /// Whether the rank-`j` assignment contains at least one subsequence
    /// of length exactly `ls` (the §4.2 admission condition).
    pub fn rank_has_length(&self, j: usize, ls: usize) -> bool {
        self.sets.iter().any(|set| {
            set.get(j.min(set.len().saturating_sub(1)))
                .is_some_and(|c| c.len == ls)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s27_t() -> TestSequence {
        TestSequence::parse_rows(&[
            "0111", "1001", "0111", "1001", "0100", "1011", "1001", "0000", "0000", "1011",
        ])
        .expect("valid rows")
    }

    fn sub(text: &str) -> Subsequence {
        text.parse().expect("valid")
    }

    #[test]
    fn generate_reproduces_table2() {
        // Paper Table 2: assignment {01, 0, 100, 1} over 12 time units.
        let w = WeightAssignment::new(vec![sub("01"), sub("0"), sub("100"), sub("1")]);
        let tg = w.generate(12);
        let expect = TestSequence::parse_rows(&[
            "0011", "1001", "0001", "1011", "0001", "1001", "0011", "1001", "0001", "1011", "0001",
            "1001",
        ])
        .expect("valid rows");
        assert_eq!(tg, expect);
    }

    #[test]
    fn candidate_sets_reproduce_table5() {
        // Paper Table 5: S = all subsequences of length ≤ 3, u = 9.
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        let sets = CandidateSets::build(&s, &t, 9, 3);

        let texts = |i: usize| -> Vec<(String, usize)> {
            sets.set(i)
                .iter()
                .map(|c| (s.get(c.index).to_string(), c.matches))
                .collect()
        };
        assert_eq!(
            texts(0),
            vec![("01".into(), 8), ("100".into(), 7), ("1".into(), 5)]
        );
        assert_eq!(
            texts(1),
            vec![("0".into(), 7), ("00".into(), 7), ("000".into(), 7)]
        );
        assert_eq!(
            texts(2),
            vec![("100".into(), 6), ("01".into(), 5), ("1".into(), 4)]
        );
        assert_eq!(
            texts(3),
            vec![("1".into(), 7), ("100".into(), 7), ("01".into(), 6)]
        );
    }

    #[test]
    fn rank0_assignment_matches_paper() {
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        let sets = CandidateSets::build(&s, &t, 9, 3);
        let w0 = sets.assignment_at(&s, 0).expect("sets are non-empty");
        assert_eq!(w0.to_string(), "{01, 0, 100, 1}");
        // Second-best (paper: 100, 00, 01, 100).
        let w1 = sets.assignment_at(&s, 1).expect("sets are non-empty");
        assert_eq!(w1.to_string(), "{100, 00, 01, 100}");
    }

    #[test]
    fn rank_clamps_to_last_entry() {
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        let sets = CandidateSets::build(&s, &t, 9, 3);
        let w_big = sets.assignment_at(&s, 99).expect("sets are non-empty");
        let w_last = sets.assignment_at(&s, 2).expect("sets are non-empty");
        assert_eq!(w_big, w_last);
    }

    #[test]
    fn full_length_fixup_prepends() {
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        let mut sets = CandidateSets::build(&s, &t, 9, 3);
        // Rank 0 of A_1 is "0" (length 1) and A_3 is "1": no rank has all
        // lengths == 3, so the fix-up must fire.
        sets.ensure_full_length_rank();
        let w0 = sets.assignment_at(&s, 0).expect("sets are non-empty");
        assert!(w0.subsequences().iter().all(|a| a.len() == 3));
        // For input 0 the best length-3 candidate is 100.
        assert_eq!(w0.subsequences()[0], sub("100"));
    }

    #[test]
    fn rank_has_length_checks_any_input() {
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        let sets = CandidateSets::build(&s, &t, 9, 3);
        // Rank 0 contains "100" (len 3), "1" (len 1), and "01" (len 2).
        assert!(sets.rank_has_length(0, 3));
        assert!(sets.rank_has_length(0, 1));
        assert!(sets.rank_has_length(0, 2));
    }

    #[test]
    fn ordering_variants_rank_differently() {
        let s = WeightSet::all_up_to(3);
        let t = s27_t();
        // A_0 candidates: 01 (n_m 8, len 2), 100 (7, len 3), 1 (5, len 1).
        let by_len_desc = CandidateSets::build_with(&s, &t, 9, 3, CandidateOrdering::LongestFirst);
        assert_eq!(s.get(by_len_desc.set(0)[0].index).to_string(), "100");
        let by_len_asc = CandidateSets::build_with(&s, &t, 9, 3, CandidateOrdering::ShortestFirst);
        assert_eq!(s.get(by_len_asc.set(0)[0].index).to_string(), "1");
        let unsorted = CandidateSets::build_with(&s, &t, 9, 3, CandidateOrdering::InsertionOrder);
        // Insertion order follows S indices: 1 (idx 1) < 01 (4) < 100 (7).
        let order: Vec<usize> = unsorted.set(0).iter().map(|c| c.index).collect();
        assert_eq!(order, vec![1, 4, 7]);
        // Default build equals the MatchCount variant.
        assert_eq!(
            CandidateSets::build(&s, &t, 9, 3),
            CandidateSets::build_with(&s, &t, 9, 3, CandidateOrdering::MatchCount)
        );
    }

    #[test]
    fn assignment_display_and_len() {
        let w = WeightAssignment::new(vec![sub("01"), sub("0")]);
        assert_eq!(w.to_string(), "{01, 0}");
        assert_eq!(w.max_len(), 2);
        assert_eq!(w.num_inputs(), 2);
    }
}
