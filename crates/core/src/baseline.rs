//! Baseline BIST schemes the paper positions itself against.
//!
//! * [`pure_random_coverage`] — an LFSR drives every input with
//!   unbiased pseudo-random bits (the \[16\]/\[17\]-style schemes: no storage,
//!   but no coverage guarantee);
//! * [`weighted_random_coverage`] — classic per-input weighted random:
//!   input `i` gets independent random bits with `P(1)` equal to the
//!   frequency of 1s in `T_i`;
//! * [`three_weight_coverage`] — the natural (inadequate) extension of
//!   the combinational 3-weight scheme \[10\]: per detection time, inputs
//!   that are constant over the window of `T` ending there are held at
//!   that constant (weights 0/1), the rest get unbiased random bits
//!   (weight 0.5).
//!
//! All three lack the subsequence structure of the proposed method, so on
//! sequential circuits they typically plateau below deterministic
//! coverage; the benches reproduce that shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbist_atpg::Lfsr;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, TestSequence};

/// A coverage measurement: faults detected out of a target list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Faults detected.
    pub detected: usize,
    /// Targets considered.
    pub total: usize,
}

impl Coverage {
    /// Detected fraction in 0..=1 (0 for an empty target list).
    pub fn fraction(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Fault coverage of an unbiased LFSR sequence, sampled cumulatively at
/// each length of `lengths` (which must be non-decreasing).
///
/// # Panics
///
/// Panics if the circuit is not levelized or `lengths` is not
/// non-decreasing.
pub fn pure_random_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    lengths: &[usize],
    seed: u32,
) -> Vec<(usize, Coverage)> {
    assert!(
        lengths.windows(2).all(|w| w[0] <= w[1]),
        "lengths must be non-decreasing"
    );
    let sim = FaultSim::new(circuit);
    let mut lfsr = Lfsr::new(24, seed);
    let mut state = sim.begin(faults);
    let mut out = Vec::with_capacity(lengths.len());
    let mut applied = 0usize;
    for &len in lengths {
        let extra = len - applied;
        if extra > 0 {
            let seg = lfsr.sequence(circuit.num_inputs(), extra);
            sim.advance(&mut state, &seg);
            applied = len;
        }
        out.push((
            len,
            Coverage {
                detected: state.num_detected(),
                total: faults.len(),
            },
        ));
    }
    out
}

/// Classic weighted-random BIST: `P(input i = 1)` is the frequency of 1s
/// in `T_i`. Returns the coverage of one sequence of `length` vectors.
///
/// # Panics
///
/// Panics if the circuit is not levelized or `t` is empty or its width
/// does not match the circuit.
pub fn weighted_random_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    t: &TestSequence,
    length: usize,
    seed: u64,
) -> Coverage {
    assert!(!t.is_empty(), "weight source sequence must be non-empty");
    assert_eq!(
        t.num_inputs(),
        circuit.num_inputs(),
        "sequence width must match the circuit"
    );
    let probs: Vec<f64> = (0..t.num_inputs())
        .map(|i| {
            let ones = t.input_track(i).iter().filter(|&&b| b).count();
            ones as f64 / t.len() as f64
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = TestSequence::new(t.num_inputs());
    let mut row = vec![false; t.num_inputs()];
    for _ in 0..length {
        for (slot, &p) in row.iter_mut().zip(&probs) {
            *slot = rng.gen_bool(p.clamp(0.02, 0.98));
        }
        seq.push_row(&row);
    }
    Coverage {
        detected: FaultSim::new(circuit).query(faults).sequence(&seq).count(),
        total: faults.len(),
    }
}

/// The naive 3-weight extension: one weight assignment per distinct
/// detection time `u` of `t` (descending); input `i` is held constant
/// when `T_i` is constant over the window of `window` vectors ending at
/// `u`, otherwise it gets unbiased random bits. Each assignment is
/// applied for `vectors_per_assignment` vectors; returns cumulative
/// coverage.
///
/// # Panics
///
/// Panics if the circuit is not levelized, `t` is empty, its width does
/// not match the circuit, or `window == 0`.
pub fn three_weight_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    t: &TestSequence,
    window: usize,
    vectors_per_assignment: usize,
    seed: u64,
) -> Coverage {
    assert!(window > 0, "window must be positive");
    assert!(!t.is_empty(), "weight source sequence must be non-empty");
    assert_eq!(
        t.num_inputs(),
        circuit.num_inputs(),
        "sequence width must match the circuit"
    );
    let sim = FaultSim::new(circuit);
    let mut times: Vec<usize> = sim
        .query(faults)
        .sequence(t)
        .detection_times()
        .into_iter()
        .flatten()
        .collect();
    times.sort_unstable();
    times.dedup();
    times.reverse();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = vec![false; faults.len()];
    for &u in &times {
        // Weights from the window ending at u.
        let lo = (u + 1).saturating_sub(window);
        let weights: Vec<Option<bool>> = (0..t.num_inputs())
            .map(|i| {
                let vals: Vec<bool> = (lo..=u).map(|v| t.value(v, i)).collect();
                if vals.iter().all(|&b| b) {
                    Some(true)
                } else if vals.iter().all(|&b| !b) {
                    Some(false)
                } else {
                    None
                }
            })
            .collect();
        let mut seq = TestSequence::new(t.num_inputs());
        let mut row = vec![false; t.num_inputs()];
        for _ in 0..vectors_per_assignment {
            for (slot, w) in row.iter_mut().zip(&weights) {
                *slot = match w {
                    Some(v) => *v,
                    None => rng.gen_bool(0.5),
                };
            }
            seq.push_row(&row);
        }
        let live: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        if live.is_empty() {
            break;
        }
        let live_faults: FaultList = live.iter().map(|&i| faults.faults()[i]).collect();
        let flags = sim.query(&live_faults).sequence(&seq).detected();
        for (k, &i) in live.iter().enumerate() {
            if flags[k] {
                detected[i] = true;
            }
        }
    }
    Coverage {
        detected: detected.iter().filter(|&&d| d).count(),
        total: faults.len(),
    }
}

/// Full-scan BIST baseline: the class of schemes (\[20\]–\[22\] in the
/// paper) that modify the flip-flops. With a scan chain, every time
/// frame is independent — random patterns drive the primary inputs *and*
/// the state, and the captured next state is observed through the chain.
/// Coverage is therefore excellent, but the cost is a scan mux per
/// flip-flop plus chain routing, exactly the overhead the paper's
/// introduction argues against for flip-flop-rich designs.
///
/// Faults are translated onto the scan view (which preserves net and
/// gate ids): flip-flop data-input faults are approximated by the
/// stem fault of the captured net.
///
/// # Panics
///
/// Panics if the circuit is not levelized.
pub fn scan_bist_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    num_patterns: usize,
    seed: u64,
) -> Coverage {
    use wbist_netlist::{transform, FaultSite};
    let scan = transform::full_scan(circuit).expect("levelized circuits convert");
    let translated: FaultList = faults
        .iter()
        .map(|f| {
            let site = match f.site() {
                FaultSite::DffData(k) => FaultSite::Stem(
                    circuit.dffs()[k]
                        .d
                        .expect("levelized circuits have connected DFFs"),
                ),
                other => other,
            };
            f.with_site(site)
        })
        .collect();
    // The scan view is combinational, so one multi-row sequence is
    // equivalent to independent frames.
    let mut rng = StdRng::seed_from_u64(seed);
    let width = scan.num_inputs();
    let mut seq = TestSequence::new(width);
    let mut row = vec![false; width];
    for _ in 0..num_patterns {
        for slot in row.iter_mut() {
            *slot = rng.gen_bool(0.5);
        }
        seq.push_row(&row);
    }
    Coverage {
        detected: FaultSim::new(&scan)
            .query(&translated)
            .sequence(&seq)
            .count(),
        total: faults.len(),
    }
}

/// The extra hardware a full-scan conversion costs, in the units of the
/// generator cost model: one 2-to-1 scan mux (≈ 3 gates / 7 literals)
/// per flip-flop. Returned as `(gates, literals)`.
pub fn scan_overhead(circuit: &Circuit) -> (usize, usize) {
    (3 * circuit.num_dffs(), 7 * circuit.num_dffs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_circuits::s27;

    #[test]
    fn random_coverage_is_monotone() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let curve = pure_random_coverage(&c, &faults, &[16, 64, 256, 1024], 0xACE1);
        for pair in curve.windows(2) {
            assert!(pair[1].1.detected >= pair[0].1.detected);
        }
        assert!(curve.last().expect("non-empty").1.detected > 0);
    }

    #[test]
    fn weighted_random_detects_something() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let t = s27::paper_test_sequence();
        let cov = weighted_random_coverage(&c, &faults, &t, 512, 7);
        assert!(cov.detected > 0);
        assert!(cov.fraction() <= 1.0);
    }

    #[test]
    fn three_weight_runs_and_detects() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let t = s27::paper_test_sequence();
        let cov = three_weight_coverage(&c, &faults, &t, 4, 256, 7);
        assert!(cov.detected > 0);
    }

    #[test]
    fn scan_bist_covers_most_faults() {
        // With independent random frames and observable state, scan BIST
        // reaches high coverage quickly on s27.
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let cov = scan_bist_coverage(&c, &faults, 256, 7);
        assert_eq!(cov.total, 32);
        assert!(cov.detected >= 28, "scan coverage only {}", cov.detected);
        let (gates, literals) = scan_overhead(&c);
        assert_eq!(gates, 9, "3 muxes");
        assert!(literals > gates);
    }

    #[test]
    fn coverage_fraction_handles_empty() {
        let cov = Coverage {
            detected: 0,
            total: 0,
        };
        assert_eq!(cov.fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn lengths_must_be_sorted() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let _ = pure_random_coverage(&c, &faults, &[64, 16], 1);
    }
}
