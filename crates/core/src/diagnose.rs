//! Fault diagnosis from BIST session syndromes.
//!
//! A production BIST flow doesn't only say pass/fail: when a part fails,
//! the per-session pass/fail pattern (the *syndrome*) narrows down which
//! fault is present. This module builds the classic fault dictionary for
//! the weighted-sequence sessions and performs dictionary look-up
//! diagnosis:
//!
//! * [`FaultDictionary::build`] simulates every target fault against
//!   every weight assignment's sequence and stores which sessions detect
//!   it (a bit-vector syndrome);
//! * [`FaultDictionary::diagnose`] returns the candidate faults whose
//!   stored syndrome matches an observed one;
//! * [`FaultDictionary::resolution`] summarizes how well the session
//!   structure distinguishes faults (average/max candidate-class size).
//!
//! Weighted-sequence BIST turns out to diagnose unusually well: each
//! weight assignment was constructed around a *different* hard fault, so
//! the sessions partition the fault universe more finely than uniform
//! random sessions of equal length.

use crate::select::SelectedAssignment;
use std::collections::HashMap;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::FaultSim;

/// A per-fault syndrome: bit `k` set means session `k` detects the fault.
pub type Syndrome = u64;

/// A fault dictionary over the sessions of one BIST schedule.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    /// Per fault (indexed like the fault list): its syndrome.
    syndromes: Vec<Syndrome>,
    /// Number of sessions (bits used in syndromes).
    num_sessions: usize,
}

impl FaultDictionary {
    /// Builds the dictionary by simulating every fault under every
    /// session sequence.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not levelized, `omega` is empty or longer
    /// than 64 sessions (syndromes are stored in a `u64`), or
    /// `sequence_length == 0`.
    pub fn build(
        circuit: &Circuit,
        faults: &FaultList,
        omega: &[SelectedAssignment],
        sequence_length: usize,
    ) -> Self {
        assert!(!omega.is_empty(), "dictionary needs at least one session");
        assert!(omega.len() <= 64, "syndromes hold at most 64 sessions");
        assert!(sequence_length > 0, "L_G must be positive");
        let sim = FaultSim::new(circuit);
        let mut syndromes = vec![0u64; faults.len()];
        for (k, sel) in omega.iter().enumerate() {
            let flags = sim
                .query(faults)
                .sequence(&sel.sequence(sequence_length))
                .detected();
            for (syn, hit) in syndromes.iter_mut().zip(flags) {
                if hit {
                    *syn |= 1 << k;
                }
            }
        }
        FaultDictionary {
            syndromes,
            num_sessions: omega.len(),
        }
    }

    /// Number of sessions covered by the dictionary.
    pub fn num_sessions(&self) -> usize {
        self.num_sessions
    }

    /// The stored syndrome of fault `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn syndrome(&self, index: usize) -> Syndrome {
        self.syndromes[index]
    }

    /// Fault indices whose syndrome equals `observed`. An all-zero
    /// observed syndrome returns the faults no session detects (or, on a
    /// passing part, "no fault present" — the caller distinguishes).
    pub fn diagnose(&self, observed: Syndrome) -> Vec<usize> {
        self.syndromes
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == observed)
            .map(|(i, _)| i)
            .collect()
    }

    /// Partition statistics over the *detected* faults: number of
    /// distinct syndromes, the average and maximum equivalence-class
    /// size. Smaller classes = better diagnosability.
    pub fn resolution(&self) -> DictionaryResolution {
        let mut classes: HashMap<Syndrome, usize> = HashMap::new();
        for &s in &self.syndromes {
            if s != 0 {
                *classes.entry(s).or_insert(0) += 1;
            }
        }
        let detected: usize = classes.values().sum();
        let num_classes = classes.len();
        let max_class = classes.values().copied().max().unwrap_or(0);
        DictionaryResolution {
            detected,
            num_classes,
            max_class,
            avg_class: if num_classes == 0 {
                0.0
            } else {
                detected as f64 / num_classes as f64
            },
        }
    }
}

/// Summary of how finely a dictionary partitions the detected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictionaryResolution {
    /// Faults detected by at least one session.
    pub detected: usize,
    /// Distinct non-zero syndromes.
    pub num_classes: usize,
    /// Largest indistinguishable class.
    pub max_class: usize,
    /// Average class size.
    pub avg_class: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_circuits::s27;

    fn dictionary() -> (FaultDictionary, FaultList, usize) {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let l_g = 64;
        let r = synthesize_weighted_bist(
            &c,
            &t,
            &faults,
            &SynthesisConfig {
                sequence_length: l_g,
                ..SynthesisConfig::default()
            },
        );
        (
            FaultDictionary::build(&c, &faults, &r.omega, l_g),
            faults,
            r.omega.len(),
        )
    }

    #[test]
    fn every_target_fault_has_nonzero_syndrome() {
        let (dict, faults, _) = dictionary();
        // The guarantee means every fault is detected by some session.
        for i in 0..faults.len() {
            assert_ne!(dict.syndrome(i), 0, "fault {i} has empty syndrome");
        }
    }

    #[test]
    fn diagnosis_returns_matching_class() {
        let (dict, faults, _) = dictionary();
        for i in 0..faults.len() {
            let candidates = dict.diagnose(dict.syndrome(i));
            assert!(candidates.contains(&i), "fault {i} not in its own class");
            // Everything in the class shares the syndrome.
            for &j in &candidates {
                assert_eq!(dict.syndrome(j), dict.syndrome(i));
            }
        }
    }

    #[test]
    fn resolution_statistics_are_consistent() {
        let (dict, faults, sessions) = dictionary();
        let res = dict.resolution();
        assert_eq!(res.detected, faults.len());
        assert!(res.num_classes >= 1);
        assert!(res.num_classes <= 1 << sessions.min(20));
        assert!(res.max_class as f64 >= res.avg_class);
        assert!(res.avg_class >= 1.0);
        // The weighted sessions distinguish a reasonable number of
        // classes on s27 (empirically ≥ 5 with the default pipeline).
        assert!(res.num_classes >= 5, "only {} classes", res.num_classes);
    }

    #[test]
    fn unknown_syndrome_gives_empty_diagnosis() {
        let (dict, _, sessions) = dictionary();
        // A syndrome with a bit beyond the session count cannot match.
        let bogus = 1u64 << sessions.min(63);
        let extra_bits = bogus | dict.syndrome(0);
        assert!(dict.diagnose(extra_bits).is_empty());
    }
}
