//! Hybrid pseudo-random + weighted-sequence BIST.
//!
//! The paper's concluding remarks name this as future work: *"The use of
//! pure-random sequences as part of the weight scheme … Adding this
//! option is likely to reduce the number of subsequences that need to be
//! generated."* This module implements that extension:
//!
//! 1. a **random phase** applies a configurable number of LFSR-driven
//!    sessions (each `L_G` cycles, circuit reset in between, exactly like
//!    a weight-assignment session whose every input has the "random"
//!    weight);
//! 2. the **weighted phase** runs the paper's synthesis procedure only
//!    for the faults the random phase missed.
//!
//! Random-pattern-easy faults stop consuming subsequences, so the stored
//! weight set — and with it the FSM hardware — shrinks; the
//! `hybrid_ablation` binary in `wbist-bench` quantifies the reduction.
//! On-chip, the random sessions cost one LFSR shared by all inputs (see
//! `wbist-hw`'s hybrid generator).

use crate::select::{Synthesis, SynthesisConfig, SynthesisResult};
use wbist_atpg::Lfsr;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, TestSequence};

/// Configuration of the hybrid scheme.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Number of pure-random sessions applied before the weighted phase.
    pub random_sessions: usize,
    /// LFSR width for the random phase.
    pub lfsr_width: u32,
    /// LFSR seed. The hardware generator resets its LFSR to state 1, so
    /// keep the default of 1 when the netlist must match the software
    /// phase bit-for-bit.
    pub lfsr_seed: u32,
    /// Configuration of the weighted phase.
    pub synthesis: SynthesisConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            random_sessions: 4,
            lfsr_width: 24,
            lfsr_seed: 1,
            synthesis: SynthesisConfig::default(),
        }
    }
}

/// The outcome of [`synthesize_hybrid`].
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Per fault: detected during the random phase.
    pub random_detected: Vec<bool>,
    /// The random sequences applied (one per session), for reproduction.
    pub random_sequences: Vec<TestSequence>,
    /// The weighted phase's synthesis result (targets exclude the
    /// random-phase detections).
    pub synthesis: SynthesisResult,
}

impl HybridResult {
    /// Faults detected by the random phase.
    pub fn random_count(&self) -> usize {
        self.random_detected.iter().filter(|&&d| d).count()
    }

    /// Total faults covered by the hybrid session (random ∪ weighted).
    pub fn total_detected(&self) -> usize {
        self.random_detected
            .iter()
            .zip(&self.synthesis.detected)
            .filter(|&(&r, &w)| r || w)
            .count()
    }

    /// Whether the hybrid scheme reaches the deterministic sequence's
    /// coverage: every fault `T` detects is covered by one of the two
    /// phases.
    pub fn coverage_guaranteed(&self) -> bool {
        self.synthesis.coverage_guaranteed()
    }
}

/// Runs the hybrid scheme: `cfg.random_sessions` LFSR sessions, then the
/// paper's weighted synthesis for the remainder.
///
/// # Panics
///
/// Panics if the circuit is not levelized, the sequence width does not
/// match, or the synthesis configuration is invalid.
pub fn synthesize_hybrid(
    circuit: &Circuit,
    t: &TestSequence,
    faults: &FaultList,
    cfg: &HybridConfig,
) -> HybridResult {
    let tel = cfg.synthesis.run.telemetry.clone();
    let sim = FaultSim::with_run_options(circuit, &cfg.synthesis.run);
    let mut lfsr = Lfsr::new(cfg.lfsr_width, cfg.lfsr_seed);
    let mut random_detected = vec![false; faults.len()];
    let mut random_sequences = Vec::with_capacity(cfg.random_sessions);
    {
        let _span = tel.span("random_phase");
        for _ in 0..cfg.random_sessions {
            let seq = lfsr.parallel_sequence(circuit.num_inputs(), cfg.synthesis.sequence_length);
            // Each session starts from the power-up state, like a weighted
            // session would.
            let flags = sim.query(faults).sequence(&seq).detected();
            for (d, f) in random_detected.iter_mut().zip(flags) {
                *d |= f;
            }
            random_sequences.push(seq);
        }
        tel.add("hybrid.random_sessions", cfg.random_sessions as u64);
        tel.add(
            "hybrid.random_detected",
            random_detected.iter().filter(|&&d| d).count() as u64,
        );
    }

    let synthesis = Synthesis::new(circuit, t, faults)
        .config(cfg.synthesis.clone())
        .already_detected(&random_detected)
        .run();
    HybridResult {
        random_detected,
        random_sequences,
        synthesis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::synthesize_weighted_bist;
    use wbist_circuits::s27;

    fn setup() -> (Circuit, TestSequence, FaultList) {
        (
            s27::circuit(),
            s27::paper_test_sequence(),
            FaultList::checkpoints(&s27::circuit()),
        )
    }

    #[test]
    fn hybrid_reaches_full_coverage() {
        let (c, t, faults) = setup();
        let cfg = HybridConfig {
            synthesis: SynthesisConfig {
                sequence_length: 100,
                ..SynthesisConfig::default()
            },
            ..HybridConfig::default()
        };
        let r = synthesize_hybrid(&c, &t, &faults, &cfg);
        assert!(r.coverage_guaranteed());
        assert_eq!(r.total_detected(), 32);
        assert!(r.random_count() > 0, "random phase detects something");
    }

    #[test]
    fn hybrid_uses_fewer_or_equal_subsequences() {
        // The paper's conjecture: the random phase reduces the stored
        // subsequences.
        let (c, t, faults) = setup();
        let syn_cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let pure = synthesize_weighted_bist(&c, &t, &faults, &syn_cfg);
        let hybrid = synthesize_hybrid(
            &c,
            &t,
            &faults,
            &HybridConfig {
                synthesis: syn_cfg,
                ..HybridConfig::default()
            },
        );
        assert!(
            hybrid.synthesis.distinct_subsequences().len() <= pure.distinct_subsequences().len(),
            "hybrid must not need more subsequences"
        );
    }

    #[test]
    fn zero_random_sessions_degenerates_to_pure() {
        let (c, t, faults) = setup();
        let syn_cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let pure = synthesize_weighted_bist(&c, &t, &faults, &syn_cfg);
        let hybrid = synthesize_hybrid(
            &c,
            &t,
            &faults,
            &HybridConfig {
                random_sessions: 0,
                synthesis: syn_cfg,
                ..HybridConfig::default()
            },
        );
        assert_eq!(hybrid.random_count(), 0);
        assert_eq!(
            hybrid.synthesis.omega.len(),
            pure.omega.len(),
            "identical weighted phase"
        );
    }

    #[test]
    fn random_sequences_are_reproducible() {
        let (c, t, faults) = setup();
        let cfg = HybridConfig {
            synthesis: SynthesisConfig {
                sequence_length: 64,
                ..SynthesisConfig::default()
            },
            ..HybridConfig::default()
        };
        let a = synthesize_hybrid(&c, &t, &faults, &cfg);
        let b = synthesize_hybrid(&c, &t, &faults, &cfg);
        assert_eq!(a.random_sequences, b.random_sequences);
        assert_eq!(a.random_detected, b.random_detected);
    }
}
