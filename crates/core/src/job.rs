//! Job-granular synthesis entry points for long-running callers.
//!
//! [`crate::select::Synthesis`] is a one-shot builder: callers that run
//! *many* jobs — most prominently the `wbist serve` daemon — repeat the
//! same dance around it every time (look for a checkpoint, load it,
//! validate it, resume or start fresh, run under a [`RunControl`]).
//! [`run_synthesis_job`] packages that dance once, with an explicit
//! [`ResumePolicy`] instead of ad-hoc `if path.exists()` logic at every
//! call site, and reports checkpoint problems as typed
//! [`CheckpointError`]s the caller can degrade on (a daemon falls back
//! to a fresh run and keeps the job; the CLI exits 1).

use crate::runctl::{Checkpoint, CheckpointError, Outcome, RunControl};
use crate::select::{Synthesis, SynthesisConfig, SynthesisResult};
use std::io;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::TestSequence;

/// How a job treats an existing checkpoint file at
/// [`RunControl::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Ignore any existing checkpoint and start from scratch (the file
    /// is overwritten as the fresh run checkpoints).
    Fresh,
    /// Resume when a checkpoint file exists, start fresh when it does
    /// not. A file that exists but fails to load or validate is an
    /// error — silently discarding committed work is never the default.
    Auto,
    /// The checkpoint must exist and load; a missing file is an error.
    Require,
}

/// What [`run_synthesis_job`] returns: the run outcome plus whether it
/// actually resumed from a checkpoint.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Whether the run was seeded from an existing checkpoint.
    pub resumed: bool,
    /// The (possibly truncated) synthesis outcome.
    pub outcome: Outcome<SynthesisResult>,
}

/// Runs one synthesis job under `ctl`, honoring `resume` against the
/// checkpoint path in `ctl.checkpoint`.
///
/// The budget/cancellation semantics are exactly those of
/// [`Synthesis::run_controlled`]; `already_detected` seeds pre-covered
/// faults as in [`Synthesis::already_detected`]. A resumed run is
/// bit-identical to the uninterrupted one — same `Ω`, flags, and
/// deterministic telemetry counters.
pub fn run_synthesis_job(
    circuit: &Circuit,
    t: &TestSequence,
    faults: &FaultList,
    cfg: SynthesisConfig,
    already_detected: Option<&[bool]>,
    ctl: &RunControl,
    resume: ResumePolicy,
) -> Result<JobOutcome, CheckpointError> {
    let mut syn = Synthesis::new(circuit, t, faults).config(cfg);
    if let Some(pre) = already_detected {
        syn = syn.already_detected(pre);
    }
    let ckpt_path = ctl.checkpoint.as_deref();
    let mut resumed = false;
    match resume {
        ResumePolicy::Fresh => {}
        ResumePolicy::Auto => {
            if let Some(path) = ckpt_path {
                if path.exists() {
                    syn = syn.resume_from(Checkpoint::load(path)?)?;
                    resumed = true;
                }
            }
        }
        ResumePolicy::Require => {
            let path = ckpt_path.ok_or_else(|| {
                CheckpointError::Io(io::Error::new(
                    io::ErrorKind::NotFound,
                    "ResumePolicy::Require needs a checkpoint path in RunControl",
                ))
            })?;
            syn = syn.resume_from(Checkpoint::load(path)?)?;
            resumed = true;
        }
    }
    Ok(JobOutcome {
        resumed,
        outcome: syn.run_controlled(ctl),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_circuits::s27;

    fn setup() -> (Circuit, TestSequence, FaultList) {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        (c, t, faults)
    }

    fn cfg() -> SynthesisConfig {
        SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn fresh_and_auto_agree_when_no_checkpoint_exists() {
        let (c, t, faults) = setup();
        let dir = std::env::temp_dir().join("wbist-job-auto");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("none-yet.ckpt");
        std::fs::remove_file(&path).ok();
        let ctl = RunControl::default().checkpoint(&path);
        let auto = run_synthesis_job(&c, &t, &faults, cfg(), None, &ctl, ResumePolicy::Auto)
            .expect("fresh start");
        assert!(!auto.resumed);
        let fresh = run_synthesis_job(&c, &t, &faults, cfg(), None, &ctl, ResumePolicy::Fresh)
            .expect("fresh start");
        assert_eq!(
            auto.outcome.result().omega,
            fresh.outcome.result().omega,
            "identical runs"
        );
        // The checkpoint written by the first run makes Auto resume now.
        let resumed = run_synthesis_job(&c, &t, &faults, cfg(), None, &ctl, ResumePolicy::Auto)
            .expect("resume from completed checkpoint");
        assert!(resumed.resumed);
        assert_eq!(resumed.outcome.result().omega, fresh.outcome.result().omega);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn require_without_checkpoint_is_an_error() {
        let (c, t, faults) = setup();
        let err = run_synthesis_job(
            &c,
            &t,
            &faults,
            cfg(),
            None,
            &RunControl::default(),
            ResumePolicy::Require,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        let dir = std::env::temp_dir().join("wbist-job-require");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.ckpt");
        std::fs::remove_file(&missing).ok();
        let err = run_synthesis_job(
            &c,
            &t,
            &faults,
            cfg(),
            None,
            &RunControl::default().checkpoint(&missing),
            ResumePolicy::Require,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn auto_surfaces_corruption_instead_of_discarding_it() {
        let (c, t, faults) = setup();
        let dir = std::env::temp_dir().join("wbist-job-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = run_synthesis_job(
            &c,
            &t,
            &faults,
            cfg(),
            None,
            &RunControl::default().checkpoint(&path),
            ResumePolicy::Auto,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
