//! Weighted test-sequence BIST for synchronous sequential circuits —
//! the primary contribution of *Pomeranz & Reddy, DATE 2000*.
//!
//! In this scheme a BIST *weight* is a finite 0/1 subsequence `α`
//! ([`Subsequence`]); assigning `α` to a primary input means the input
//! receives the periodic stream `α^r = α α α …`. A [`WeightAssignment`]
//! picks one subsequence per input and generates a weighted test sequence
//! `T_G`. Weights are derived from a single deterministic test sequence
//! `T` so that around each fault's detection time the weighted sequence
//! reproduces `T` exactly — which is what lets the method guarantee the
//! deterministic sequence's fault coverage while storing no patterns at
//! all (the weights become tiny on-chip FSMs; see the `wbist-hw` crate).
//!
//! Pipeline:
//!
//! 1. [`synthesize_weighted_bist`] — the paper's Sections 3–4.2: derive
//!    weights, select weight assignments, collect the useful ones in `Ω`;
//! 2. [`reverse_order_prune`] — Section 4.3: drop redundant assignments;
//! 3. [`observation_point_tradeoff`] — Section 5: trade assignments for
//!    observation points;
//! 4. baselines ([`baseline`]) — pure pseudo-random, classic weighted
//!    random, and the naive 3-weight extension, for comparison.
//!
//! # Example
//!
//! ```
//! use wbist_circuits::s27;
//! use wbist_core::{synthesize_weighted_bist, SynthesisConfig};
//! use wbist_netlist::FaultList;
//!
//! let circuit = s27::circuit();
//! let t = s27::paper_test_sequence();
//! let faults = FaultList::checkpoints(&circuit);
//! let cfg = SynthesisConfig { sequence_length: 100, ..SynthesisConfig::default() };
//! let result = synthesize_weighted_bist(&circuit, &t, &faults, &cfg);
//! // The paper's guarantee: same coverage as the deterministic sequence.
//! assert!(result.coverage_guaranteed());
//! ```

pub mod assign;
pub mod baseline;
pub mod diagnose;
pub mod hybrid;
pub mod job;
mod live;
pub mod obs;
pub mod prune;
pub mod runctl;
pub mod select;
pub mod session;
mod speculate;
pub mod subseq;
pub mod weights;

pub use assign::{Candidate, CandidateOrdering, CandidateSets, WeightAssignment};
pub use diagnose::{DictionaryResolution, FaultDictionary, Syndrome};
pub use hybrid::{synthesize_hybrid, HybridConfig, HybridResult};
pub use job::{run_synthesis_job, JobOutcome, ResumePolicy};
pub use obs::{observation_point_tradeoff, ObsOptions, ObsRow, ObsTradeoff};
pub use prune::{reverse_order_prune, PruneOptions};
pub use runctl::{
    config_hash, Checkpoint, CheckpointError, Cursor, Outcome, RunControl, CHECKPOINT_SCHEMA,
};
pub use select::{
    synthesize_weighted_bist, SelectedAssignment, Synthesis, SynthesisConfig, SynthesisResult,
};
pub use session::{run_bist_session, SessionConfig, SessionReport};
pub use subseq::Subsequence;
pub use wbist_sim::{Budget, CancelToken, RunOptions, SimOptions, Telemetry, TruncationReason};
pub use weights::WeightSet;
