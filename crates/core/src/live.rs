//! Incrementally maintained index of live target faults.
//!
//! The selection loop used to answer three questions with O(n) scans on
//! every iteration: *which undetected target has the largest detection
//! time* (`remaining`), *how many targets are still undetected* (the
//! fault-drop curve), and *is any undetected target left at time `u`*
//! (`time_done`). [`LiveTargets`] answers all three from state updated
//! at commit time, and additionally maintains the dense list of
//! simulation-live faults (`target && !detected` — abandoned faults stay
//! in it, exactly like the scan it replaces: an abandoned target can
//! still be detected incidentally by a later assignment's sequence).
//!
//! The distinction between the three views matters and mirrors the
//! original closures precisely:
//!
//! * `remaining` excludes abandoned faults (the walk never returns to
//!   them);
//! * the undetected count and `time_done` *include* abandoned faults (an
//!   abandoned, undetected target keeps its time "not done", and stays
//!   on the fault-drop curve until some sequence happens to detect it);
//! * the simulation list includes abandoned faults for the same reason.

/// Dense index of the target faults a synthesis run still works on.
#[derive(Debug, Clone)]
pub(crate) struct LiveTargets {
    /// Per-fault mirror of the synthesis `detected` flags (targets only).
    detected: Vec<bool>,
    /// Per-fault mirror of the synthesis `abandoned` flags.
    abandoned: Vec<bool>,
    /// Detection time per fault (targets only; 0 elsewhere, unused).
    det_time: Vec<usize>,
    /// Target flags.
    target: Vec<bool>,
    /// Ascending indices of `target && !detected` — the simulation list.
    /// Pruned by [`LiveTargets::compact`], not on every drop.
    live: Vec<usize>,
    /// Count of `target && !detected` per detection time `u`.
    by_time: Vec<u64>,
    /// Total `target && !detected`.
    undetected: u64,
    /// Per-`u` buckets (ascending indices) backing [`LiveTargets::remaining`];
    /// detected/abandoned entries are lazily popped from the back.
    buckets: Vec<Vec<usize>>,
    /// Upper bound on the largest `u` with a live bucket entry; the live
    /// set only shrinks, so this only moves down.
    max_u_hint: usize,
}

impl LiveTargets {
    /// Builds the index from the synthesis state (which may come from a
    /// resumed checkpoint).
    pub(crate) fn new(
        target: &[bool],
        det_times: &[Option<usize>],
        detected: &[bool],
        abandoned: &[bool],
    ) -> LiveTargets {
        let n = target.len();
        let max_u = (0..n)
            .filter(|&i| target[i])
            .filter_map(|i| det_times[i])
            .max()
            .unwrap_or(0);
        let mut lt = LiveTargets {
            detected: detected.to_vec(),
            abandoned: abandoned.to_vec(),
            det_time: det_times.iter().map(|t| t.unwrap_or(0)).collect(),
            target: target.to_vec(),
            live: Vec::new(),
            by_time: vec![0; max_u + 1],
            undetected: 0,
            buckets: vec![Vec::new(); max_u + 1],
            max_u_hint: max_u,
        };
        for i in 0..n {
            if !target[i] {
                continue;
            }
            let u = lt.det_time[i];
            if !detected[i] {
                lt.live.push(i);
                lt.by_time[u] += 1;
                lt.undetected += 1;
            }
            if !detected[i] && !abandoned[i] {
                lt.buckets[u].push(i);
            }
        }
        lt
    }

    /// Records that fault `i` was detected.
    pub(crate) fn mark_detected(&mut self, i: usize) {
        if self.detected[i] || !self.target[i] {
            return;
        }
        self.detected[i] = true;
        self.by_time[self.det_time[i]] -= 1;
        self.undetected -= 1;
    }

    /// Records that fault `i` was abandoned (it stays in the simulation
    /// list and the undetected count).
    pub(crate) fn mark_abandoned(&mut self, i: usize) {
        self.abandoned[i] = true;
    }

    /// Drops detected faults out of the simulation list. Called once per
    /// kept assignment, not per drop, so the list stays ascending and
    /// the total cost is O(live × keeps).
    pub(crate) fn compact(&mut self) {
        let detected = &self.detected;
        self.live.retain(|&i| !detected[i]);
    }

    /// The simulation-live faults: ascending indices of undetected
    /// targets, abandoned ones included. Only valid after
    /// [`LiveTargets::compact`] since the last detection.
    pub(crate) fn live(&self) -> &[usize] {
        &self.live
    }

    /// Number of undetected targets (abandoned ones included) — the
    /// fault-drop curve's y value.
    pub(crate) fn undetected(&self) -> u64 {
        self.undetected
    }

    /// Whether no undetected target with detection time `u` remains
    /// (abandoned faults count as *not* done, like the scan this
    /// replaces).
    pub(crate) fn time_done(&self, u: usize) -> bool {
        self.by_time.get(u).is_none_or(|&c| c == 0)
    }

    /// The next fault to work on: among the undetected, unabandoned
    /// targets with the largest detection time, the one with the largest
    /// index (the tie the original `max_by_key` scan broke the same
    /// way). Amortized O(1): dead entries are popped as they surface.
    pub(crate) fn remaining(&mut self) -> Option<(usize, usize)> {
        loop {
            let u = self.max_u_hint;
            while let Some(&i) = self.buckets[u].last() {
                if !self.detected[i] && !self.abandoned[i] {
                    return Some((i, u));
                }
                self.buckets[u].pop();
            }
            if u == 0 {
                return None;
            }
            self.max_u_hint = u - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(ts: &[usize]) -> Vec<Option<usize>> {
        ts.iter().map(|&t| Some(t)).collect()
    }

    #[test]
    fn mirrors_the_scans_it_replaces() {
        let target = vec![true, true, false, true, true];
        let det_times = times(&[3, 7, 0, 7, 1]);
        let mut lt = LiveTargets::new(&target, &det_times, &[false; 5], &[false; 5]);
        assert_eq!(lt.undetected(), 4);
        assert_eq!(lt.live(), &[0, 1, 3, 4]);
        // Ties at the max u resolve to the larger index.
        assert_eq!(lt.remaining(), Some((3, 7)));
        assert!(!lt.time_done(7));
        assert!(lt.time_done(0)); // index 2 is not a target

        lt.mark_detected(3);
        lt.compact();
        assert_eq!(lt.remaining(), Some((1, 7)));
        assert_eq!(lt.live(), &[0, 1, 4]);
        assert_eq!(lt.undetected(), 3);

        lt.mark_detected(1);
        lt.compact();
        assert!(lt.time_done(7));
        assert_eq!(lt.remaining(), Some((0, 3)));
    }

    #[test]
    fn abandonment_leaves_simulation_views_alone() {
        let target = vec![true, true];
        let det_times = times(&[5, 2]);
        let mut lt = LiveTargets::new(&target, &det_times, &[false; 2], &[false; 2]);
        lt.mark_abandoned(0);
        // The walk moves on…
        assert_eq!(lt.remaining(), Some((1, 2)));
        // …but the abandoned fault still simulates, still counts, and
        // still holds its detection time open.
        assert_eq!(lt.live(), &[0, 1]);
        assert_eq!(lt.undetected(), 2);
        assert!(!lt.time_done(5));
        // An incidental detection finally releases it.
        lt.mark_detected(0);
        lt.compact();
        assert!(lt.time_done(5));
        assert_eq!(lt.live(), &[1]);
    }

    #[test]
    fn resume_state_is_respected() {
        let target = vec![true, true, true];
        let det_times = times(&[4, 4, 2]);
        let detected = vec![true, false, false];
        let abandoned = vec![false, false, true];
        let mut lt = LiveTargets::new(&target, &det_times, &detected, &abandoned);
        assert_eq!(lt.undetected(), 2);
        assert_eq!(lt.live(), &[1, 2]);
        assert_eq!(lt.remaining(), Some((1, 4)));
        lt.mark_detected(1);
        lt.compact();
        // Only the abandoned fault is left: nothing to work on.
        assert_eq!(lt.remaining(), None);
        assert_eq!(lt.undetected(), 1);
    }

    #[test]
    fn empty_target_set() {
        let mut lt = LiveTargets::new(&[], &[], &[], &[]);
        assert_eq!(lt.remaining(), None);
        assert_eq!(lt.undetected(), 0);
        assert!(lt.live().is_empty());
    }
}
