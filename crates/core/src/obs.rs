//! Observation-point insertion (paper, Section 5, Tables 7–16).
//!
//! Observation points trade test hardware for observability: with fewer
//! weight assignments (a smaller `Ω_lim`), some target faults stay
//! undetected at the primary outputs, but many of them *do* reach
//! internal lines — adding an observation point on such a line detects
//! them. The experiment:
//!
//! 1. grow `Ω_lim` greedily (each step adds the assignment of `Ω`
//!    detecting the most still-uncovered faults);
//! 2. after each step, compute for every remaining fault `f` the
//!    candidate-line set `OP(f)` — every net where the faulty machine
//!    differs from the fault-free machine at some time unit of some
//!    `Ω_lim` sequence;
//! 3. select a minimal (greedy set-cover) line set `OP` hitting every
//!    non-empty `OP(f)`;
//! 4. report the trade-off row: assignments used, subsequences, fault
//!    efficiency without and with the observation points.
//!
//! *Fault efficiency* is the paper's metric: faults detected divided by
//! faults detected by the full `Ω`.

use crate::select::SelectedAssignment;
use wbist_netlist::{Circuit, FaultList, NetId};
use wbist_sim::{FaultSim, RunOptions};

/// Options for [`observation_point_tradeoff`].
#[derive(Debug, Clone)]
pub struct ObsOptions {
    /// `L_G`: the length the assignments' sequences are applied with.
    pub sequence_length: usize,
    /// Shared run options: simulator tuning, telemetry handle, seed.
    pub run: RunOptions,
}

impl ObsOptions {
    /// Options for sequences of length `sequence_length`, with default
    /// [`RunOptions`].
    pub fn new(sequence_length: usize) -> ObsOptions {
        ObsOptions {
            sequence_length,
            run: RunOptions::default(),
        }
    }

    /// Replaces the run options (builder style).
    pub fn run(mut self, run: RunOptions) -> ObsOptions {
        self.run = run;
        self
    }
}

/// One row of the trade-off tables (Tables 7–16).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRow {
    /// Number of weight assignments in `Ω_lim` (`seq` column).
    pub num_assignments: usize,
    /// Distinct subsequences defining those assignments (`sub` column).
    pub num_subsequences: usize,
    /// Longest subsequence length (`len` column).
    pub max_len: usize,
    /// Fault efficiency of `Ω_lim` alone, in percent (`f.e.`).
    pub fault_efficiency: f64,
    /// Observation points needed (`obs` column).
    pub num_obs: usize,
    /// Fault efficiency with those observation points, in percent.
    pub fe_with_obs: f64,
    /// The selected observation-point nets.
    pub obs_lines: Vec<NetId>,
}

/// The full trade-off experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsTradeoff {
    /// One row per `Ω_lim` size, in growth order.
    pub rows: Vec<ObsRow>,
    /// Faults detected by the full `Ω` (the fault-efficiency
    /// denominator).
    pub total_covered: usize,
}

impl ObsTradeoff {
    /// Rows whose final fault efficiency reaches at least `percent`
    /// (the paper reports rows with ≥ 99%).
    pub fn rows_reaching(&self, percent: f64) -> Vec<&ObsRow> {
        self.rows
            .iter()
            .filter(|r| r.fe_with_obs >= percent)
            .collect()
    }
}

/// Runs the observation-point trade-off experiment on `omega`
/// (the paper uses `Ω` *before* reverse-order simulation).
///
/// # Panics
///
/// Panics if the circuit is not levelized or
/// `opts.sequence_length == 0`.
pub fn observation_point_tradeoff(
    circuit: &Circuit,
    faults: &FaultList,
    omega: &[SelectedAssignment],
    opts: &ObsOptions,
) -> ObsTradeoff {
    let sequence_length = opts.sequence_length;
    assert!(sequence_length > 0, "L_G must be positive");
    let tel = opts.run.telemetry.clone();
    let _span = tel.span("obs");
    let sim = FaultSim::with_run_options(circuit, &opts.run);

    // Detection matrix: per assignment, per fault.
    let det: Vec<Vec<bool>> = omega
        .iter()
        .map(|sel| {
            sim.query(faults)
                .sequence(&sel.sequence(sequence_length))
                .detected()
        })
        .collect();
    let covered_by_omega: Vec<bool> = (0..faults.len())
        .map(|i| det.iter().any(|row| row[i]))
        .collect();
    let total_covered = covered_by_omega.iter().filter(|&&c| c).count();
    if total_covered == 0 || omega.is_empty() {
        return ObsTradeoff {
            rows: Vec::new(),
            total_covered,
        };
    }

    let mut covered = vec![false; faults.len()];
    let mut in_lim: Vec<usize> = Vec::new();
    // Accumulated OP(f) candidate lines per still-uncovered fault.
    let mut op_lines: Vec<Vec<NetId>> = vec![Vec::new(); faults.len()];
    let mut rows = Vec::new();

    while covered.iter().filter(|&&c| c).count() < total_covered {
        if let Some(reason) = opts.run.cancel.cancelled() {
            // Budget tripped: return the rows built so far — each is a
            // complete, valid trade-off point on its own.
            crate::runctl::note_truncation(&tel, reason);
            break;
        }
        // Greedy: assignment with the largest marginal gain.
        let (best, _) = det
            .iter()
            .enumerate()
            .filter(|(a, _)| !in_lim.contains(a))
            .map(|(a, flags)| {
                let gain = flags
                    .iter()
                    .zip(&covered)
                    .filter(|&(&f, &c)| f && !c)
                    .count();
                (a, gain)
            })
            .max_by_key(|&(_, gain)| gain)
            .expect("uncovered faults remain, so some assignment helps");
        in_lim.push(best);

        // Update OP candidates for faults still uncovered, under the new
        // assignment's sequence, *before* marking its detections (a fault
        // detected by this assignment needs no observation point).
        let live: Vec<usize> = (0..faults.len())
            .filter(|&i| covered_by_omega[i] && !covered[i] && !det[best][i])
            .collect();
        if !live.is_empty() {
            let live_faults: FaultList = live.iter().map(|&i| faults.faults()[i]).collect();
            let lines = sim
                .query(&live_faults)
                .sequence(&omega[best].sequence(sequence_length))
                .observable_lines();
            for (k, &i) in live.iter().enumerate() {
                for &net in &lines[k] {
                    if !op_lines[i].contains(&net) {
                        op_lines[i].push(net);
                    }
                }
            }
        }
        for (c, &f) in covered.iter_mut().zip(&det[best]) {
            *c |= f;
        }

        let covered_now = covered.iter().filter(|&&c| c).count();
        let remaining: Vec<usize> = (0..faults.len())
            .filter(|&i| covered_by_omega[i] && !covered[i])
            .collect();
        let (obs, coverable) = select_cover(&remaining, &op_lines);
        tel.add("obs.rows", 1);
        // `select_cover` picks one line per greedy iteration.
        tel.add("obs.cover_iterations", obs.len() as u64);

        let subs = distinct_subsequences(omega, &in_lim);
        rows.push(ObsRow {
            num_assignments: in_lim.len(),
            num_subsequences: subs,
            max_len: in_lim
                .iter()
                .map(|&a| omega[a].assignment.max_len())
                .max()
                .unwrap_or(0),
            fault_efficiency: 100.0 * covered_now as f64 / total_covered as f64,
            num_obs: obs.len(),
            fe_with_obs: 100.0 * (covered_now + coverable) as f64 / total_covered as f64,
            obs_lines: obs,
        });
    }

    ObsTradeoff {
        rows,
        total_covered,
    }
}

/// Greedy set cover: picks lines until every fault in `remaining` with a
/// non-empty candidate set is covered. Returns the chosen lines and the
/// number of coverable faults.
fn select_cover(remaining: &[usize], op_lines: &[Vec<NetId>]) -> (Vec<NetId>, usize) {
    let mut uncovered: Vec<usize> = remaining
        .iter()
        .copied()
        .filter(|&i| !op_lines[i].is_empty())
        .collect();
    let coverable = uncovered.len();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        // Count per line how many uncovered faults it hits.
        let mut counts: std::collections::HashMap<NetId, usize> = std::collections::HashMap::new();
        for &i in &uncovered {
            for &net in &op_lines[i] {
                *counts.entry(net).or_insert(0) += 1;
            }
        }
        let (&best, _) = counts
            .iter()
            .max_by_key(|&(net, &n)| (n, std::cmp::Reverse(net.index())))
            .expect("uncovered faults have non-empty candidate sets");
        chosen.push(best);
        uncovered.retain(|&i| !op_lines[i].contains(&best));
    }
    (chosen, coverable)
}

/// Counts the distinct subsequences used by the assignments in `in_lim`.
fn distinct_subsequences(omega: &[SelectedAssignment], in_lim: &[usize]) -> usize {
    let mut subs: Vec<&crate::subseq::Subsequence> = Vec::new();
    for &a in in_lim {
        for s in omega[a].assignment.subsequences() {
            if !subs.contains(&s) {
                subs.push(s);
            }
        }
    }
    subs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_circuits::s27;

    fn run() -> (ObsTradeoff, usize) {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let tr = observation_point_tradeoff(
            &c,
            &faults,
            &r.omega,
            &ObsOptions::new(cfg.sequence_length),
        );
        (tr, r.omega.len())
    }

    #[test]
    fn tradeoff_ends_at_full_efficiency_with_zero_obs() {
        let (tr, _) = run();
        let last = tr.rows.last().expect("rows are produced");
        assert!((last.fault_efficiency - 100.0).abs() < 1e-9);
        assert_eq!(last.num_obs, 0);
        assert!((last.fe_with_obs - 100.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_is_monotonic_and_obs_decreasing_tail() {
        let (tr, _) = run();
        for pair in tr.rows.windows(2) {
            assert!(pair[1].fault_efficiency >= pair[0].fault_efficiency);
            assert!(pair[1].num_assignments == pair[0].num_assignments + 1);
        }
    }

    #[test]
    fn with_obs_never_worse_than_without() {
        let (tr, _) = run();
        for row in &tr.rows {
            assert!(row.fe_with_obs >= row.fault_efficiency - 1e-9);
            assert_eq!(row.obs_lines.len(), row.num_obs);
        }
    }

    #[test]
    fn rows_reaching_filters() {
        let (tr, _) = run();
        let good = tr.rows_reaching(100.0);
        assert!(!good.is_empty());
        assert!(good.iter().all(|r| r.fe_with_obs >= 100.0 - 1e-9));
    }

    #[test]
    fn greedy_uses_at_most_omega_assignments() {
        let (tr, omega_len) = run();
        assert!(tr.rows.len() <= omega_len);
    }

    #[test]
    fn empty_omega_yields_no_rows() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let tr = observation_point_tradeoff(&c, &faults, &[], &ObsOptions::new(100));
        assert!(tr.rows.is_empty());
        assert_eq!(tr.total_covered, 0);
    }

    #[test]
    fn telemetry_counts_one_row_per_greedy_step() {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let tel = wbist_sim::Telemetry::enabled();
        let opts = ObsOptions::new(cfg.sequence_length)
            .run(wbist_sim::RunOptions::default().telemetry(tel.clone()));
        let tr = observation_point_tradeoff(&c, &faults, &r.omega, &opts);
        assert_eq!(tel.counter("obs.rows"), tr.rows.len() as u64);
    }
}
