//! Reverse-order simulation of `Ω` (paper, Section 4.3).
//!
//! The synthesis procedure builds `Ω` short-subsequences-first, which can
//! leave *redundant* assignments: ones whose detected faults are all also
//! detected by assignments generated later. Reverse-order simulation
//! removes them: walking `Ω` from the most recently generated assignment
//! backwards, each assignment's sequence is fault-simulated against the
//! still-uncovered fault set; an assignment detecting nothing new is
//! dropped.

use crate::select::SelectedAssignment;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, SimOptions};

/// Removes redundant assignments from `omega` by reverse-order
/// simulation, preserving the original relative order of the survivors.
///
/// `faults` is the full target fault list; `sequence_length` is the `L_G`
/// the sequences are applied with.
///
/// # Panics
///
/// Panics if the circuit is not levelized or `sequence_length == 0`.
pub fn reverse_order_prune(
    circuit: &Circuit,
    faults: &FaultList,
    omega: &[SelectedAssignment],
    sequence_length: usize,
) -> Vec<SelectedAssignment> {
    reverse_order_prune_with(
        circuit,
        faults,
        omega,
        sequence_length,
        SimOptions::default(),
    )
}

/// [`reverse_order_prune`] with explicit fault-simulator options.
///
/// # Panics
///
/// Panics if the circuit is not levelized or `sequence_length == 0`.
pub fn reverse_order_prune_with(
    circuit: &Circuit,
    faults: &FaultList,
    omega: &[SelectedAssignment],
    sequence_length: usize,
    sim_options: SimOptions,
) -> Vec<SelectedAssignment> {
    assert!(sequence_length > 0, "L_G must be positive");
    let sim = FaultSim::with_options(circuit, sim_options);
    let mut detected = vec![false; faults.len()];
    let mut keep = vec![false; omega.len()];

    for (k, sel) in omega.iter().enumerate().rev() {
        let live: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        if live.is_empty() {
            break;
        }
        let live_faults: FaultList = live.iter().map(|&i| faults.faults()[i]).collect();
        let tg = sel.sequence(sequence_length);
        let flags = sim.detected(&live_faults, &tg);
        let mut newly = 0;
        for (j, &i) in live.iter().enumerate() {
            if flags[j] {
                detected[i] = true;
                newly += 1;
            }
        }
        keep[k] = newly > 0;
    }

    omega
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(s, _)| s.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_circuits::s27;

    #[test]
    fn pruning_preserves_coverage() {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let pruned = reverse_order_prune(&c, &faults, &r.omega, cfg.sequence_length);
        assert!(pruned.len() <= r.omega.len());

        // Coverage after pruning must still match.
        let sim = FaultSim::new(&c);
        let mut detected = vec![false; faults.len()];
        for sel in &pruned {
            for (d, f) in detected
                .iter_mut()
                .zip(sim.detected(&faults, &sel.sequence(cfg.sequence_length)))
            {
                *d |= f;
            }
        }
        for (i, (&target, &hit)) in r.target.iter().zip(&detected).enumerate() {
            if target {
                assert!(hit, "pruning lost fault {i}");
            }
        }
    }

    #[test]
    fn duplicate_assignments_are_pruned() {
        // Duplicating Ω must not survive reverse-order simulation intact.
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let mut doubled = r.omega.clone();
        doubled.extend(r.omega.iter().cloned());
        let pruned = reverse_order_prune(&c, &faults, &doubled, cfg.sequence_length);
        assert!(pruned.len() <= r.omega.len());
    }

    #[test]
    fn empty_omega_is_fine() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let pruned = reverse_order_prune(&c, &faults, &[], 100);
        assert!(pruned.is_empty());
    }
}
