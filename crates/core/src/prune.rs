//! Reverse-order simulation of `Ω` (paper, Section 4.3).
//!
//! The synthesis procedure builds `Ω` short-subsequences-first, which can
//! leave *redundant* assignments: ones whose detected faults are all also
//! detected by assignments generated later. Reverse-order simulation
//! removes them: walking `Ω` from the most recently generated assignment
//! backwards, each assignment's sequence is fault-simulated against the
//! still-uncovered fault set; an assignment detecting nothing new is
//! dropped.

use crate::select::SelectedAssignment;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{FaultSim, RunOptions};

/// Options for [`reverse_order_prune`].
#[derive(Debug, Clone)]
pub struct PruneOptions {
    /// `L_G`: the length the assignments' sequences are applied with.
    pub sequence_length: usize,
    /// Shared run options: simulator tuning, telemetry handle, seed.
    pub run: RunOptions,
}

impl PruneOptions {
    /// Options for sequences of length `sequence_length`, with default
    /// [`RunOptions`].
    pub fn new(sequence_length: usize) -> PruneOptions {
        PruneOptions {
            sequence_length,
            run: RunOptions::default(),
        }
    }

    /// Replaces the run options (builder style).
    pub fn run(mut self, run: RunOptions) -> PruneOptions {
        self.run = run;
        self
    }
}

/// Removes redundant assignments from `omega` by reverse-order
/// simulation, preserving the original relative order of the survivors.
///
/// `faults` is the full target fault list; `opts.sequence_length` is the
/// `L_G` the sequences are applied with.
///
/// # Panics
///
/// Panics if the circuit is not levelized or
/// `opts.sequence_length == 0`.
pub fn reverse_order_prune(
    circuit: &Circuit,
    faults: &FaultList,
    omega: &[SelectedAssignment],
    opts: &PruneOptions,
) -> Vec<SelectedAssignment> {
    assert!(opts.sequence_length > 0, "L_G must be positive");
    let tel = opts.run.telemetry.clone();
    let _span = tel.span("prune");
    let sim = FaultSim::with_run_options(circuit, &opts.run);
    let mut detected = vec![false; faults.len()];
    let mut keep = vec![false; omega.len()];

    for (k, sel) in omega.iter().enumerate().rev() {
        if let Some(reason) = opts.run.cancel.cancelled() {
            // Budget tripped: the assignments not yet examined stay kept
            // (only proven-redundant ones may be dropped), so the partial
            // result still covers everything `omega` covered.
            for slot in keep.iter_mut().take(k + 1) {
                *slot = true;
            }
            crate::runctl::note_truncation(&tel, reason);
            break;
        }
        let live: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        if live.is_empty() {
            break;
        }
        let live_faults: FaultList = live.iter().map(|&i| faults.faults()[i]).collect();
        let tg = sel.sequence(opts.sequence_length);
        let flags = sim.query(&live_faults).sequence(&tg).detected();
        let mut newly = 0;
        for (j, &i) in live.iter().enumerate() {
            if flags[j] {
                detected[i] = true;
                newly += 1;
            }
        }
        keep[k] = newly > 0;
    }

    let kept = keep.iter().filter(|&&k| k).count();
    tel.add("prune.kept", kept as u64);
    tel.add("prune.dropped", (omega.len() - kept) as u64);

    omega
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(s, _)| s.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_circuits::s27;

    #[test]
    fn pruning_preserves_coverage() {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let pruned = reverse_order_prune(
            &c,
            &faults,
            &r.omega,
            &PruneOptions::new(cfg.sequence_length),
        );
        assert!(pruned.len() <= r.omega.len());

        // Coverage after pruning must still match.
        let sim = FaultSim::new(&c);
        let mut detected = vec![false; faults.len()];
        for sel in &pruned {
            for (d, f) in detected.iter_mut().zip(
                sim.query(&faults)
                    .sequence(&sel.sequence(cfg.sequence_length))
                    .detected(),
            ) {
                *d |= f;
            }
        }
        for (i, (&target, &hit)) in r.target.iter().zip(&detected).enumerate() {
            if target {
                assert!(hit, "pruning lost fault {i}");
            }
        }
    }

    #[test]
    fn duplicate_assignments_are_pruned() {
        // Duplicating Ω must not survive reverse-order simulation intact.
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let mut doubled = r.omega.clone();
        doubled.extend(r.omega.iter().cloned());
        let pruned = reverse_order_prune(
            &c,
            &faults,
            &doubled,
            &PruneOptions::new(cfg.sequence_length),
        );
        assert!(pruned.len() <= r.omega.len());
    }

    #[test]
    fn empty_omega_is_fine() {
        let c = s27::circuit();
        let faults = FaultList::checkpoints(&c);
        let pruned = reverse_order_prune(&c, &faults, &[], &PruneOptions::new(100));
        assert!(pruned.is_empty());
    }

    #[test]
    fn telemetry_counts_kept_plus_dropped() {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let tel = wbist_sim::Telemetry::enabled();
        let opts = PruneOptions::new(cfg.sequence_length)
            .run(wbist_sim::RunOptions::default().telemetry(tel.clone()));
        let pruned = reverse_order_prune(&c, &faults, &r.omega, &opts);
        assert_eq!(tel.counter("prune.kept"), pruned.len() as u64);
        assert_eq!(
            tel.counter("prune.kept") + tel.counter("prune.dropped"),
            r.omega.len() as u64
        );
    }
}
