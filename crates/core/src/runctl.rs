//! Run control for long synthesis runs: budgets, deterministic
//! checkpoint/resume, and truncation reporting.
//!
//! Synthesizing weights for the larger ISCAS-89 circuits can take hours;
//! this module makes such runs *interruptible* without losing work or
//! determinism:
//!
//! * [`RunControl`] bundles a [`Budget`] (wall clock, fault-cycles,
//!   assignment count) with an optional checkpoint path. The budget is
//!   turned into a [`CancelToken`] that the simulation kernels poll once
//!   per simulated cycle and the synthesis driver polls at every
//!   candidate boundary.
//! * [`Outcome`] is what a budgeted run returns: either
//!   [`Outcome::Complete`] or [`Outcome::Truncated`] — the latter still
//!   carries a *valid partial result* (every `detected` flag is genuine;
//!   `Ω` only contains assignments that were fully evaluated).
//! * [`Checkpoint`] is a schema-versioned (`wbist-ckpt/v1`) JSON snapshot
//!   of the synthesis state, written after every kept assignment. A run
//!   resumed from a checkpoint re-enters the selection loop at the exact
//!   cursor position and reproduces the uninterrupted run **bit for
//!   bit** — same `Ω`, same detection flags, same telemetry counters.
//!
//! Determinism hinges on two details encoded here:
//!
//! 1. The cursor records the loop coordinates `(fault, u, L_S, rank)` of
//!    the last *kept* assignment; everything the procedure does between
//!    two keeps is a pure function of the state at the previous keep, so
//!    replaying from the cursor loses nothing.
//! 2. Telemetry counters are snapshotted into the checkpoint and restored
//!    on resume (the resumed run's startup work is done with telemetry
//!    disabled, because its cost is already inside the restored values).
//!
//! Checkpoints are validated against a [`config_hash`] of the circuit,
//! the deterministic sequence, the fault list and every knob that affects
//! the run, so a checkpoint can never silently resume a *different*
//! synthesis.

use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::select::{SelectedAssignment, SynthesisConfig};
use crate::subseq::Subsequence;
use wbist_netlist::{Circuit, FaultList, FaultModel, FaultSite};
use wbist_sim::TestSequence;
pub use wbist_sim::{Budget, CancelToken, TruncationReason};
use wbist_telemetry::{failpoint, Json, Telemetry};

/// Schema identifier written into every checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = "wbist-ckpt/v1";

/// The result of a budgeted run: complete, or truncated by the budget
/// with a valid partial result.
#[derive(Debug, Clone)]
pub enum Outcome<T> {
    /// The run finished everything it set out to do.
    Complete(T),
    /// A budget tripped; `result` is a consistent partial state (see the
    /// module docs for what "consistent" means per phase).
    Truncated {
        /// The partial result.
        result: T,
        /// Which budget tripped first.
        reason: TruncationReason,
    },
}

impl<T> Outcome<T> {
    /// The carried result, complete or partial.
    pub fn result(&self) -> &T {
        match self {
            Outcome::Complete(r) | Outcome::Truncated { result: r, .. } => r,
        }
    }

    /// Unwraps the carried result, complete or partial.
    pub fn into_result(self) -> T {
        match self {
            Outcome::Complete(r) | Outcome::Truncated { result: r, .. } => r,
        }
    }

    /// Whether a budget tripped.
    pub fn is_truncated(&self) -> bool {
        matches!(self, Outcome::Truncated { .. })
    }

    /// The truncation reason, if any.
    pub fn truncation(&self) -> Option<TruncationReason> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Truncated { reason, .. } => Some(*reason),
        }
    }

    /// Maps the carried result, preserving the truncation status.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete(r) => Outcome::Complete(f(r)),
            Outcome::Truncated { result, reason } => Outcome::Truncated {
                result: f(result),
                reason,
            },
        }
    }
}

/// Budget and checkpointing knobs for [`crate::select::Synthesis::run_controlled`].
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Resource limits; [`Budget::is_unlimited`] (the default) arms no
    /// token at all.
    pub budget: Budget,
    /// Where to write checkpoints (one file, atomically replaced after
    /// every kept assignment). `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
}

impl RunControl {
    /// Replaces the budget (builder style).
    pub fn budget(mut self, budget: Budget) -> RunControl {
        self.budget = budget;
        self
    }

    /// Sets the checkpoint path (builder style).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> RunControl {
        self.checkpoint = Some(path.into());
        self
    }
}

/// Exact position inside the selection loop after the last kept
/// assignment: resume continues at `rank + 1` of the same `(fault, u,
/// ls)` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Index of the target fault being worked on.
    pub fault: usize,
    /// Its detection time `u`.
    pub u: usize,
    /// The subsequence length `L_S` of the inner loop.
    pub ls: usize,
    /// The candidate rank `j` whose assignment was just kept.
    pub rank: usize,
}

/// A deterministic snapshot of the synthesis state (`wbist-ckpt/v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Hash of everything that shapes the run; see [`config_hash`].
    pub config_hash: u64,
    /// The run seed (informational; also folded into the hash).
    pub seed: u64,
    /// `L_G` (informational; also folded into the hash).
    pub sequence_length: usize,
    /// Per-fault detection flags at snapshot time.
    pub detected: Vec<bool>,
    /// Per-fault abandonment flags at snapshot time.
    pub abandoned: Vec<bool>,
    /// The weight set `S`, in insertion order (order matters: candidate
    /// ranks depend on it).
    pub weights: Vec<Subsequence>,
    /// `Ω` so far.
    pub omega: Vec<SelectedAssignment>,
    /// Loop position of the last kept assignment; `None` for the initial
    /// (empty) checkpoint written at run start.
    pub cursor: Option<Cursor>,
    /// Telemetry counters at snapshot time, restored verbatim on resume.
    pub counters: Vec<(String, u64)>,
}

/// Why a checkpoint could not be loaded or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file's bytes are damaged — truncated, bit-flipped, or
    /// otherwise not the document that was written. The error is
    /// line-anchored so a damaged multi-line checkpoint points at the
    /// offending spot.
    Corrupt {
        /// 1-based line in the checkpoint file.
        line: usize,
        /// What was wrong there.
        message: String,
    },
    /// The document is JSON but not a `wbist-ckpt/v1` checkpoint; the
    /// string names the missing or malformed field.
    Schema(String),
    /// The checkpoint belongs to a different circuit / sequence / fault
    /// list / configuration.
    ConfigMismatch {
        /// Hash the current run computes.
        expected: u64,
        /// Hash stored in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { line, message } => {
                write!(f, "checkpoint is corrupt at line {line}: {message}")
            }
            CheckpointError::Schema(what) => {
                write!(f, "not a {CHECKPOINT_SCHEMA} checkpoint: {what}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run \
                 (config hash {found:#018x}, this run is {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn bitstring(bits: &[bool]) -> Json {
    Json::Str(bits.iter().map(|&b| if b { '1' } else { '0' }).collect())
}

fn parse_bitstring(json: &Json, what: &str) -> Result<Vec<bool>, CheckpointError> {
    let s = json
        .as_str()
        .ok_or_else(|| CheckpointError::Schema(format!("{what} is not a string")))?;
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => Err(CheckpointError::Schema(format!(
                "{what} contains {c:?}, expected only 0/1"
            ))),
        })
        .collect()
}

fn parse_subsequence(json: &Json, what: &str) -> Result<Subsequence, CheckpointError> {
    let s = json
        .as_str()
        .ok_or_else(|| CheckpointError::Schema(format!("{what} is not a string")))?;
    s.parse()
        .map_err(|_| CheckpointError::Schema(format!("{what} is not a 0/1 subsequence")))
}

fn field<'j>(json: &'j Json, key: &str) -> Result<&'j Json, CheckpointError> {
    json.get(key)
        .ok_or_else(|| CheckpointError::Schema(format!("missing field `{key}`")))
}

fn uint_field(json: &Json, key: &str) -> Result<u64, CheckpointError> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| CheckpointError::Schema(format!("field `{key}` is not an unsigned integer")))
}

impl Checkpoint {
    /// Renders the checkpoint as a `wbist-ckpt/v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(CHECKPOINT_SCHEMA.to_string())),
            ("config_hash", Json::UInt(self.config_hash)),
            ("seed", Json::UInt(self.seed)),
            ("sequence_length", Json::UInt(self.sequence_length as u64)),
            ("detected", bitstring(&self.detected)),
            ("abandoned", bitstring(&self.abandoned)),
            (
                "weights",
                Json::Array(
                    self.weights
                        .iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
            (
                "omega",
                Json::Array(
                    self.omega
                        .iter()
                        .map(|sel| {
                            Json::obj(vec![
                                ("detection_time", Json::UInt(sel.detection_time as u64)),
                                ("rank", Json::UInt(sel.rank as u64)),
                                ("newly_detected", Json::UInt(sel.newly_detected as u64)),
                                (
                                    "subs",
                                    Json::Array(
                                        sel.assignment
                                            .subsequences()
                                            .iter()
                                            .map(|s| Json::Str(s.to_string()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cursor",
                match &self.cursor {
                    None => Json::Null,
                    Some(c) => Json::obj(vec![
                        ("fault", Json::UInt(c.fault as u64)),
                        ("u", Json::UInt(c.u as u64)),
                        ("ls", Json::UInt(c.ls as u64)),
                        ("rank", Json::UInt(c.rank as u64)),
                    ]),
                },
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a checkpoint from a `wbist-ckpt/v1` JSON document.
    pub fn from_json(json: &Json) -> Result<Checkpoint, CheckpointError> {
        let schema = field(json, "schema")?.as_str().unwrap_or("");
        if schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::Schema(format!(
                "schema is {schema:?}, expected {CHECKPOINT_SCHEMA:?}"
            )));
        }
        let weights = field(json, "weights")?
            .as_array()
            .ok_or_else(|| CheckpointError::Schema("`weights` is not an array".into()))?
            .iter()
            .map(|j| parse_subsequence(j, "weights entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let omega = field(json, "omega")?
            .as_array()
            .ok_or_else(|| CheckpointError::Schema("`omega` is not an array".into()))?
            .iter()
            .map(|entry| {
                let subs = field(entry, "subs")?
                    .as_array()
                    .ok_or_else(|| CheckpointError::Schema("`subs` is not an array".into()))?
                    .iter()
                    .map(|j| parse_subsequence(j, "omega subsequence"))
                    .collect::<Result<Vec<_>, _>>()?;
                if subs.is_empty() {
                    return Err(CheckpointError::Schema(
                        "omega entry has no subsequences".into(),
                    ));
                }
                Ok(SelectedAssignment {
                    assignment: crate::assign::WeightAssignment::new(subs),
                    detection_time: uint_field(entry, "detection_time")? as usize,
                    rank: uint_field(entry, "rank")? as usize,
                    newly_detected: uint_field(entry, "newly_detected")? as usize,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cursor = match field(json, "cursor")? {
            Json::Null => None,
            c => Some(Cursor {
                fault: uint_field(c, "fault")? as usize,
                u: uint_field(c, "u")? as usize,
                ls: uint_field(c, "ls")? as usize,
                rank: uint_field(c, "rank")? as usize,
            }),
        };
        let counters = field(json, "counters")?
            .as_object()
            .ok_or_else(|| CheckpointError::Schema("`counters` is not an object".into()))?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| CheckpointError::Schema(format!("counter `{k}` is not a count")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let detected = parse_bitstring(field(json, "detected")?, "`detected`")?;
        let abandoned = parse_bitstring(field(json, "abandoned")?, "`abandoned`")?;
        if abandoned.len() != detected.len() {
            return Err(CheckpointError::Schema(
                "`abandoned` and `detected` have different lengths".into(),
            ));
        }
        Ok(Checkpoint {
            config_hash: uint_field(json, "config_hash")?,
            seed: uint_field(json, "seed")?,
            sequence_length: uint_field(json, "sequence_length")? as usize,
            detected,
            abandoned,
            weights,
            omega,
            cursor,
            counters,
        })
    }

    /// Writes the checkpoint to `path`, atomically and durably: the
    /// document (plus an `integrity` checksum over its content) goes to
    /// `path.tmp` first, is fsynced, renamed over `path`, and the parent
    /// directory entry is fsynced too — the rename itself is only
    /// durable once the directory is on disk. An interrupted write never
    /// destroys the previous checkpoint.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if failpoint::should_fire("core.checkpoint_write") {
            return Err(io::Error::other("failpoint `core.checkpoint_write` fired"));
        }
        let mut doc = self.to_json();
        let sum = integrity_hash(&doc);
        if let Json::Object(entries) = &mut doc {
            entries.push(("integrity".to_string(), Json::UInt(sum)));
        }
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.render_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
        if failpoint::should_fire("core.checkpoint_rename") {
            // Simulated crash between the tmp-file fsync and the rename:
            // the previous checkpoint must remain intact and loadable.
            return Err(io::Error::other("failpoint `core.checkpoint_rename` fired"));
        }
        std::fs::rename(&tmp, path)?;
        // Best effort on the directory handle: not every platform lets a
        // directory be opened, but where it can be, sync failures are
        // real failures.
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
            _ => PathBuf::from("."),
        };
        if let Ok(d) = std::fs::File::open(&dir) {
            d.sync_all()?;
        }
        Ok(())
    }

    /// Loads and validates a checkpoint from `path`.
    ///
    /// Every failure is a typed [`CheckpointError`] — a truncated,
    /// bit-flipped, wrong-version or wrong-run file is *rejected*, never
    /// a panic. Files written by [`Checkpoint::save`] carry an
    /// `integrity` checksum which is verified here; files without one
    /// (hand-edited or older) skip that check.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        if failpoint::should_fire("core.checkpoint_read") {
            return Err(CheckpointError::Io(io::Error::other(
                "failpoint `core.checkpoint_read` fired",
            )));
        }
        let text = std::fs::read_to_string(path)?;
        let mut json = Json::parse(&text).map_err(|e| CheckpointError::Corrupt {
            line: line_of_offset(&text, e.offset),
            message: e.message,
        })?;
        if let Json::Object(entries) = &mut json {
            if let Some(pos) = entries.iter().position(|(k, _)| k == "integrity") {
                let (_, stored) = entries.remove(pos);
                let expected = stored.as_u64().ok_or_else(|| CheckpointError::Corrupt {
                    line: 1,
                    message: "`integrity` is not an unsigned integer".to_string(),
                })?;
                let actual = integrity_hash(&json);
                if actual != expected {
                    return Err(CheckpointError::Corrupt {
                        line: 1,
                        message: format!(
                            "integrity checksum mismatch (file says {expected:#018x}, \
                             content hashes to {actual:#018x})"
                        ),
                    });
                }
            }
        }
        Checkpoint::from_json(&json)
    }
}

/// 1-based line number of a byte offset into `text`.
fn line_of_offset(text: &str, offset: usize) -> usize {
    let upto = offset.min(text.len());
    text.as_bytes()[..upto]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// FNV-1a over the compact rendering of a checkpoint document (without
/// its `integrity` field). The parser normalizes whitespace and key
/// order is preserved, so parse → re-render reproduces the hashed bytes
/// exactly; any semantic damage to the file changes the hash.
fn integrity_hash(doc: &Json) -> u64 {
    let mut h = Fnv::new();
    for b in doc.render().bytes() {
        h.byte(b);
    }
    h.finish()
}

/// FNV-1a over everything that shapes a synthesis run: circuit
/// structure, deterministic sequence bits, fault list, `L_G`, sampling
/// and ordering knobs, and the seed. Two runs with equal hashes walk the
/// selection loop identically, so a checkpoint from one resumes the
/// other.
pub fn config_hash(
    circuit: &Circuit,
    t: &TestSequence,
    faults: &FaultList,
    cfg: &SynthesisConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.text(circuit.name());
    h.int(circuit.num_nets() as u64);
    h.int(circuit.num_inputs() as u64);
    h.int(circuit.num_dffs() as u64);
    h.int(circuit.num_gates() as u64);
    h.int(t.len() as u64);
    h.int(t.num_inputs() as u64);
    for row in t.iter() {
        h.bits(row);
    }
    h.int(faults.len() as u64);
    for f in faults.faults() {
        // The model tag participates so a checkpoint taken under one
        // fault model can never resume a run over another.
        h.int(match f.model() {
            FaultModel::StuckAt => 0,
            FaultModel::TransitionDelay => 1,
        });
        let (tag, a, b) = match f.site() {
            FaultSite::Stem(n) => (0u64, n.index() as u64, 0u64),
            FaultSite::GatePin { gate, pin } => (1, gate.index() as u64, pin as u64),
            FaultSite::DffData(k) => (2, k as u64, 0),
        };
        h.int(tag);
        h.int(a);
        h.int(b);
        h.int(f.polarity() as u64);
    }
    h.int(cfg.sequence_length as u64);
    h.int(cfg.sample_first as u64);
    h.int(cfg.sample_size as u64);
    h.int(cfg.ordering as u64);
    h.int(cfg.full_length_fixup as u64);
    h.int(cfg.run.seed);
    h.finish()
}

/// Folds extra flag bits (the synthesizer's pre-detection vector) into
/// an already-finished hash.
pub(crate) fn fold_flags(hash: u64, flags: &[bool]) -> u64 {
    let mut h = Fnv(hash);
    h.bits(flags);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn int(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn text(&mut self, s: &str) {
        self.int(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn bits(&mut self, bits: &[bool]) {
        for chunk in bits.chunks(64) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << i;
            }
            self.int(w);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Every deterministic counter a phase records. Checkpoint restore has
/// to map parsed (owned) names back to the `&'static str` keys
/// [`Telemetry::add`] requires; unknown names in a checkpoint are
/// ignored rather than rejected, so older checkpoints survive counter
/// renames.
const KNOWN_COUNTERS: &[&str] = &[
    "hw.dffs",
    "hw.fsm_outputs",
    "hw.fsm_state_bits",
    "hw.fsms",
    "hw.gates",
    "hw.literals",
    "hw.next_state_literals",
    "hw.output_literals",
    "hybrid.random_sessions",
    "obs.cover_iterations",
    "obs.rows",
    "prune.dropped",
    "prune.kept",
    "runctl.checkpoints_written",
    "runctl.truncations",
    "select.assignments_kept",
    "select.candidates_tried",
    "select.sample_skips",
    "select.snapshot_capture_denied",
    "select.targets_abandoned",
    "session.assignments",
    "session.faults",
    "session.lost_in_signature",
    "session.observed",
    "session.signed",
    "sim.batch_panics",
    "sim.batches",
    "sim.calls",
    "sim.cycles",
    "sim.fault_cycles",
    "sim.faults_dropped",
    "sim.gates_evaluated",
    "sim.gates_skipped",
    "sim.screen_calls",
];

/// Restores checkpointed counter values into a telemetry handle.
pub(crate) fn restore_counters(tel: &Telemetry, counters: &[(String, u64)]) {
    for (name, value) in counters {
        if let Some(&key) = KNOWN_COUNTERS.iter().find(|&&k| k == name) {
            tel.add(key, *value);
        }
    }
}

/// Records a truncation in the telemetry stream (one counter bump plus a
/// structured event carrying the reason code).
pub(crate) fn note_truncation(tel: &Telemetry, reason: TruncationReason) {
    tel.add("runctl.truncations", 1);
    tel.event("runctl.truncated", &[("reason", reason.code())]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::WeightAssignment;

    fn sample_checkpoint() -> Checkpoint {
        let alpha: Subsequence = "011".parse().unwrap();
        let beta: Subsequence = "10".parse().unwrap();
        Checkpoint {
            config_hash: 0xdead_beef_1234_5678,
            seed: 7,
            sequence_length: 100,
            detected: vec![true, false, true],
            abandoned: vec![false, false, true],
            weights: vec![alpha.clone(), beta.clone()],
            omega: vec![SelectedAssignment {
                assignment: WeightAssignment::new(vec![alpha, beta]),
                detection_time: 9,
                rank: 2,
                newly_detected: 5,
            }],
            cursor: Some(Cursor {
                fault: 1,
                u: 9,
                ls: 3,
                rank: 2,
            }),
            counters: vec![("sim.cycles".into(), 1234), ("sim.calls".into(), 9)],
        }
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let ck = sample_checkpoint();
        let json = ck.to_json();
        let back = Checkpoint::from_json(&json).expect("round trip");
        assert_eq!(back, ck);
        // And through the rendered text, too.
        let reparsed = Json::parse(&json.render_pretty()).expect("valid JSON");
        assert_eq!(Checkpoint::from_json(&reparsed).expect("round trip"), ck);
    }

    #[test]
    fn initial_checkpoint_has_no_cursor() {
        let mut ck = sample_checkpoint();
        ck.cursor = None;
        ck.omega.clear();
        let back = Checkpoint::from_json(&ck.to_json()).expect("round trip");
        assert_eq!(back.cursor, None);
        assert!(back.omega.is_empty());
    }

    #[test]
    fn schema_violations_are_reported() {
        let bad = Json::obj(vec![("schema", Json::Str("wbist-ckpt/v0".into()))]);
        let err = Checkpoint::from_json(&bad).unwrap_err();
        assert!(matches!(err, CheckpointError::Schema(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("wbist-ckpt/v1"), "{msg}");
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("wbist-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let ck = sample_checkpoint();
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn integrity_checksum_rejects_value_damage() {
        let dir = std::env::temp_dir().join("wbist-ckpt-integrity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.ckpt");
        sample_checkpoint().save(&path).expect("save");

        // Flip one digit of a counter value: still valid JSON, still a
        // valid schema, but no longer the document that was written.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"integrity\""), "save writes the checksum");
        let damaged = text.replacen("1234", "1235", 1);
        assert_ne!(damaged, text);
        std::fs::write(&path, damaged).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { .. }),
            "expected a corruption error, got {err}"
        );
        assert!(err.to_string().contains("integrity"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn files_without_integrity_still_load() {
        let dir = std::env::temp_dir().join("wbist-ckpt-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.ckpt");
        let ck = sample_checkpoint();
        std::fs::write(&path, ck.to_json().render_pretty()).unwrap();
        assert_eq!(Checkpoint::load(&path).expect("legacy load"), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_are_line_anchored() {
        let dir = std::env::temp_dir().join("wbist-ckpt-lines");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt");
        sample_checkpoint().save(&path).expect("save");
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() / 2;
        std::fs::write(&path, &text[..cut]).unwrap();
        let expect_line = line_of_offset(&text[..cut], cut);
        match Checkpoint::load(&path).unwrap_err() {
            CheckpointError::Corrupt { line, .. } => {
                assert!(line > 1, "a mid-file cut anchors past line 1, got {line}");
                assert!(
                    line <= expect_line,
                    "line {line} beyond the cut {expect_line}"
                );
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_hash_is_sensitive_to_knobs() {
        use wbist_circuits::s27;
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let cfg = SynthesisConfig::default();
        let base = config_hash(&c, &t, &faults, &cfg);
        assert_eq!(base, config_hash(&c, &t, &faults, &cfg), "deterministic");
        let mut other = cfg.clone();
        other.sequence_length += 1;
        assert_ne!(base, config_hash(&c, &t, &faults, &other));
        let mut reseeded = cfg.clone();
        reseeded.run.seed ^= 1;
        assert_ne!(base, config_hash(&c, &t, &faults, &reseeded));
        let fewer = FaultList::from_faults(faults.faults()[..faults.len() - 1].to_vec());
        assert_ne!(base, config_hash(&c, &t, &fewer, &cfg));
    }

    #[test]
    fn outcome_accessors() {
        let c: Outcome<u32> = Outcome::Complete(3);
        assert!(!c.is_truncated());
        assert_eq!(c.truncation(), None);
        assert_eq!(*c.result(), 3);
        let t: Outcome<u32> = Outcome::Truncated {
            result: 4,
            reason: TruncationReason::WallClock,
        };
        assert!(t.is_truncated());
        assert_eq!(t.truncation(), Some(TruncationReason::WallClock));
        assert_eq!(t.map(|v| v + 1).into_result(), 5);
    }
}
