//! The overall weight-assignment selection procedure (paper, Section 4.2).
//!
//! Starting from the set `F` of faults detected by the deterministic
//! sequence `T`, the procedure repeatedly:
//!
//! 1. picks the **largest remaining detection time** `u` (harder faults
//!    first — their sequences tend to detect many others);
//! 2. for `L_S = 1, 2, …`: extends `S` with the subsequences of length
//!    `L_S` derived from the window of `T` ending at `u`, builds the
//!    candidate sets `A_i`, applies the full-length fix-up, and walks the
//!    assignment ranks `j = 0, 1, …` — simulating a weighted sequence
//!    `T_G` of length `L_G` for every admissible assignment (one
//!    containing at least one subsequence of length `L_S`) and dropping
//!    the faults it detects;
//! 3. stops working on `u` as soon as no undetected fault with detection
//!    time `u` remains.
//!
//! Termination is guaranteed: at `L_S = u + 1` the derived subsequences
//! reproduce `T` exactly through time `u` (provided `L_G > u`), so the
//! fault that defined `u` is necessarily detected — the paper's coverage
//! guarantee.
//!
//! The paper's *sample-first* speedup is implemented: each `T_G` is first
//! simulated against a small sample of undetected faults (always
//! including the fault that defined `u`); if none of the sample is
//! detected, the full simulation is skipped.

use crate::assign::{CandidateOrdering, CandidateSets, WeightAssignment};
use crate::live::LiveTargets;
use crate::runctl::{
    self, Checkpoint, CheckpointError, Cursor, Outcome, RunControl, TruncationReason,
};
use crate::speculate;
use crate::weights::WeightSet;
use wbist_netlist::{Circuit, Fault, FaultList};
use wbist_sim::{CancelToken, FaultSim, PrefixTraceCache, RunOptions, TestSequence};
use wbist_telemetry::Telemetry;

/// Configuration of the synthesis procedure.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// `L_G`: length of the weighted sequence applied per assignment
    /// (the paper's experiments use 2000).
    pub sequence_length: usize,
    /// Enables the sample-first simulation shortcut (§4.2).
    pub sample_first: bool,
    /// Number of faults in the screening sample (including the target
    /// fault).
    pub sample_size: usize,
    /// How candidates are ranked within each `A_i` (the paper:
    /// [`CandidateOrdering::MatchCount`]; alternatives exist for the
    /// ablation experiments).
    pub ordering: CandidateOrdering,
    /// Whether the §4.1 full-length fix-up is applied (the paper: yes).
    /// Disabling it is an ablation knob; the coverage guarantee is only
    /// proven with the fix-up enabled.
    pub full_length_fixup: bool,
    /// Speculation width `K`: how many candidate ranks are evaluated
    /// concurrently against a frozen detection snapshot before their
    /// results are committed in strict rank order (see `DESIGN.md`
    /// §12). `1` is the plain sequential walk. Every
    /// width produces bit-identical results — the knob trades CPU for
    /// wall-clock only — so it is deliberately *not* part of the
    /// checkpoint configuration hash: checkpoints are portable across
    /// widths.
    pub speculation: usize,
    /// Enables the per-segment prefix-trace cache: candidate sequences
    /// sharing an input prefix with a recently committed evaluation
    /// resume simulation from the divergence cycle instead of cycle 0
    /// (see `DESIGN.md` §13). Resumed evaluations are bit-identical to
    /// from-scratch ones — the knob trades memory for wall-clock only —
    /// so, like `speculation`, it is deliberately *not* part of the
    /// checkpoint configuration hash: checkpoints are portable across
    /// both settings.
    pub prefix_cache: bool,
    /// Shared run options: simulator tuning, telemetry handle, seed.
    pub run: RunOptions,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            sequence_length: 2000,
            sample_first: true,
            sample_size: 32,
            ordering: CandidateOrdering::MatchCount,
            full_length_fixup: true,
            speculation: 1,
            prefix_cache: true,
            run: RunOptions::default(),
        }
    }
}

/// One weight assignment kept in `Ω`, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedAssignment {
    /// The weight assignment.
    pub assignment: WeightAssignment,
    /// The detection time `u` it was constructed around.
    pub detection_time: usize,
    /// The rank `j` within the candidate sets.
    pub rank: usize,
    /// Faults it newly detected when first simulated.
    pub newly_detected: usize,
}

impl SelectedAssignment {
    /// Regenerates the weighted test sequence for this assignment.
    pub fn sequence(&self, len: usize) -> TestSequence {
        self.assignment.generate(len)
    }
}

/// The outcome of [`synthesize_weighted_bist`].
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The selected weight assignments, in generation order (`Ω`).
    pub omega: Vec<SelectedAssignment>,
    /// The final weight set `S`.
    pub weights: WeightSet,
    /// Per-fault: detected by some sequence of `Ω` (indexed like the
    /// fault list given to the synthesizer).
    pub detected: Vec<bool>,
    /// Per-fault: detected by the deterministic sequence `T` (the target
    /// set `F`).
    pub target: Vec<bool>,
    /// Per-fault: targets given up on because `L_G` was shorter than
    /// their detection time (cannot happen when `L_G > max u_det`).
    pub abandoned: Vec<bool>,
    /// The `L_G` used.
    pub sequence_length: usize,
}

impl SynthesisResult {
    /// Number of target faults (faults detected by `T`).
    pub fn target_count(&self) -> usize {
        self.target.iter().filter(|&&t| t).count()
    }

    /// Number of faults detected by the weighted sequences.
    pub fn detected_faults(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Whether the weighted sequences reach the coverage of `T` — the
    /// paper's guarantee (always true when `L_G` exceeds every detection
    /// time).
    pub fn coverage_guaranteed(&self) -> bool {
        self.detected
            .iter()
            .zip(&self.target)
            .all(|(&d, &t)| d == t)
    }

    /// The distinct subsequences used by the assignments of `Ω` (the
    /// Table-6 `subs` count).
    pub fn distinct_subsequences(&self) -> Vec<crate::subseq::Subsequence> {
        let mut subs: Vec<crate::subseq::Subsequence> = Vec::new();
        for sel in &self.omega {
            for s in sel.assignment.subsequences() {
                if !subs.contains(s) {
                    subs.push(s.clone());
                }
            }
        }
        subs
    }

    /// The longest subsequence used by `Ω` (the Table-6 `len` column).
    pub fn max_subsequence_len(&self) -> usize {
        self.omega
            .iter()
            .map(|s| s.assignment.max_len())
            .max()
            .unwrap_or(0)
    }
}

/// Entry point for the synthesis procedure (builder style).
///
/// Bundles the circuit, the deterministic sequence `T`, and the target
/// fault list; optional knobs (`config`, `already_detected`) are applied
/// with builder methods before calling [`Synthesis::run`].
///
/// ```no_run
/// # use wbist_core::select::{Synthesis, SynthesisConfig};
/// # use wbist_netlist::{Circuit, FaultList};
/// # use wbist_sim::TestSequence;
/// # fn demo(c: &Circuit, t: &TestSequence, faults: &FaultList) {
/// let result = Synthesis::new(c, t, faults)
///     .config(SynthesisConfig {
///         sequence_length: 500,
///         ..SynthesisConfig::default()
///     })
///     .run();
/// # let _ = result;
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Synthesis<'a> {
    circuit: &'a Circuit,
    t: &'a TestSequence,
    faults: &'a FaultList,
    cfg: SynthesisConfig,
    already_detected: Option<Vec<bool>>,
    resume: Option<Checkpoint>,
}

impl<'a> Synthesis<'a> {
    /// Starts a synthesis over `faults` from the deterministic sequence
    /// `t`, with the default [`SynthesisConfig`].
    pub fn new(circuit: &'a Circuit, t: &'a TestSequence, faults: &'a FaultList) -> Synthesis<'a> {
        Synthesis {
            circuit,
            t,
            faults,
            cfg: SynthesisConfig::default(),
            already_detected: None,
            resume: None,
        }
    }

    /// Replaces the configuration.
    pub fn config(mut self, cfg: SynthesisConfig) -> Synthesis<'a> {
        self.cfg = cfg;
        self
    }

    /// Treats the flagged faults as covered before the procedure starts.
    /// Used by hybrid schemes that run a pseudo-random phase first (see
    /// [`crate::hybrid`]): the weighted phase then only has to cover what
    /// the random phase missed.
    ///
    /// The result's `detected`/`target` flags cover only the faults the
    /// weighted phase was responsible for (targets exclude the
    /// pre-detected ones), so [`SynthesisResult::coverage_guaranteed`]
    /// still means "the weighted phase did its job".
    pub fn already_detected(mut self, flags: &[bool]) -> Synthesis<'a> {
        self.already_detected = Some(flags.to_vec());
        self
    }

    /// Runs the paper's synthesis procedure.
    ///
    /// Faults that `t` does not detect are excluded from the target set
    /// `F` (the paper's guarantee is relative to `T`'s coverage).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not levelized, the sequence width does
    /// not match the circuit, `cfg.sequence_length == 0`, or an
    /// `already_detected` slice has the wrong length.
    pub fn run(self) -> SynthesisResult {
        self.run_controlled(&RunControl::default()).into_result()
    }

    /// Pre-seeds the procedure from a [`Checkpoint`] written by an
    /// earlier (budget-truncated) run over the same circuit, sequence,
    /// fault list and configuration.
    ///
    /// Call it *after* [`Synthesis::config`] and
    /// [`Synthesis::already_detected`]: the checkpoint is validated
    /// against a hash of the run configuration
    /// ([`crate::runctl::config_hash`] plus the pre-detection flags) and
    /// rejected with [`CheckpointError::ConfigMismatch`] if anything
    /// differs. A resumed run reproduces the uninterrupted run bit for
    /// bit — same `Ω`, same flags, same telemetry counters.
    pub fn resume_from(mut self, ckpt: Checkpoint) -> Result<Synthesis<'a>, CheckpointError> {
        let expected = self.run_hash();
        if ckpt.config_hash != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: ckpt.config_hash,
            });
        }
        if ckpt.detected.len() != self.faults.len() {
            return Err(CheckpointError::Schema(format!(
                "checkpoint covers {} faults, the fault list has {}",
                ckpt.detected.len(),
                self.faults.len()
            )));
        }
        self.resume = Some(ckpt);
        Ok(self)
    }

    /// The configuration hash checkpoints of this run carry: the shared
    /// [`runctl::config_hash`] with the pre-detection flags folded in
    /// (absent flags hash like all-false ones).
    fn run_hash(&self) -> u64 {
        let base = runctl::config_hash(self.circuit, self.t, self.faults, &self.cfg);
        let pre = self
            .already_detected
            .clone()
            .unwrap_or_else(|| vec![false; self.faults.len()]);
        runctl::fold_flags(base, &pre)
    }

    /// Runs the procedure under a [`RunControl`]: budget limits become a
    /// cooperative [`CancelToken`] (polled by the kernels every simulated
    /// cycle and by this driver at every candidate), and a checkpoint is
    /// written after every kept assignment.
    ///
    /// On truncation the returned [`Outcome::Truncated`] still carries a
    /// valid partial result: every `detected` flag is a genuine
    /// detection and `Ω` contains only fully evaluated assignments. The
    /// setup simulation of `T` (detection times) always runs to
    /// completion — every later decision depends on it — so budgets are
    /// enforced from the first candidate onwards.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Synthesis::run`].
    pub fn run_controlled(mut self, ctl: &RunControl) -> Outcome<SynthesisResult> {
        if !ctl.budget.is_unlimited() {
            self.cfg.run.cancel = CancelToken::for_budget(&ctl.budget);
        }
        let config_hash = self.run_hash();
        let resume = self.resume.take();
        let cfg = &self.cfg;
        let token = cfg.run.cancel.clone();
        let (circuit, t, faults) = (self.circuit, self.t, self.faults);
        let pre: Vec<bool> = self
            .already_detected
            .unwrap_or_else(|| vec![false; faults.len()]);
        assert!(cfg.sequence_length > 0, "L_G must be positive");
        assert_eq!(pre.len(), faults.len(), "one pre-detection flag per fault");
        let tel = cfg.run.telemetry.clone();
        let _span = tel.span("synthesis");
        let sim = FaultSim::with_run_options(circuit, &cfg.run);
        // The setup pass must complete (and be counted) exactly once
        // across an interrupted/resumed chain of runs: a resumed run
        // recomputes it with telemetry disabled — its cost is already
        // inside the restored counters — and without the token, so a
        // tiny budget cannot corrupt the detection times everything
        // else depends on.
        let setup_run = if resume.is_some() {
            cfg.run
                .clone()
                .telemetry(Telemetry::disabled())
                .cancel(CancelToken::unlimited())
        } else {
            cfg.run.clone().cancel(CancelToken::unlimited())
        };
        let setup_sim = FaultSim::with_run_options(circuit, &setup_run);
        let det_times = setup_sim.query(faults).sequence(t).detection_times();
        let target: Vec<bool> = det_times
            .iter()
            .zip(&pre)
            .map(|(t, &pre)| t.is_some() && !pre)
            .collect();
        let n = faults.len();
        let mut detected = vec![false; n];
        let mut abandoned = vec![false; n];
        let mut s = WeightSet::new();
        let mut omega: Vec<SelectedAssignment> = Vec::new();
        // Loop coordinates to re-enter at, when resuming: the cursor
        // names the last *kept* rank, so the walk continues at rank + 1.
        let mut pending: Option<(usize, usize, usize, usize)> = None;

        if let Some(ck) = &resume {
            detected.copy_from_slice(&ck.detected);
            abandoned.copy_from_slice(&ck.abandoned);
            for sub in &ck.weights {
                s.insert(sub.clone());
            }
            omega = ck.omega.clone();
            runctl::restore_counters(&tel, &ck.counters);
            pending = ck.cursor.map(|c| (c.fault, c.u, c.ls, c.rank + 1));
            if tel.is_enabled() {
                tel.event("runctl.resumed", &[("assignments", omega.len() as u64)]);
            }
        }

        let write_checkpoint = |tel: &Telemetry,
                                omega: &[SelectedAssignment],
                                detected: &[bool],
                                abandoned: &[bool],
                                s: &WeightSet,
                                cursor: Option<Cursor>| {
            let Some(path) = &ctl.checkpoint else {
                return;
            };
            // Counted before the snapshot so the restored value already
            // includes this write — that keeps the counter identical
            // between interrupted and uninterrupted runs.
            tel.add("runctl.checkpoints_written", 1);
            let ck = Checkpoint {
                config_hash,
                seed: cfg.run.seed,
                sequence_length: cfg.sequence_length,
                detected: detected.to_vec(),
                abandoned: abandoned.to_vec(),
                weights: s.iter().map(|(_, sub)| sub.clone()).collect(),
                omega: omega.to_vec(),
                cursor,
                counters: tel.counters(),
            };
            if let Err(e) = ck.save(path) {
                // Non-fatal: losing a checkpoint must never kill the run
                // it exists to protect.
                eprintln!("wbist: checkpoint write failed: {e}");
                tel.event("runctl.checkpoint_failed", &[]);
            }
        };

        let width = cfg.speculation.max(1);
        let mut live = LiveTargets::new(&target, &det_times, &detected, &abandoned);
        let mut cache = cfg.prefix_cache.then(PrefixTraceCache::new);
        if tel.is_enabled() {
            tel.point("fault_drop", live.undetected());
        }
        if resume.is_none() {
            write_checkpoint(&tel, &omega, &detected, &abandoned, &s, None);
        }

        let mut truncated: Option<TruncationReason> = None;
        // One-time trace event for declined snapshot capture: the
        // denial repeats for every dense evaluation of the same query
        // shape, so only the first committed one is worth an event (the
        // deterministic counter keeps the full count).
        let mut capture_denied_reported = false;
        loop {
            if let Some(r) = token.cancelled() {
                truncated = Some(r);
                break;
            }
            let (fi, u, ls0, j0) = match pending.take() {
                Some(at) => at,
                None => match live.remaining() {
                    Some((fi, u)) => (fi, u, 1, 0),
                    None => break,
                },
            };
            if u + 1 > cfg.sequence_length {
                // T_G can never reach this fault's detection time.
                abandoned[fi] = true;
                live.mark_abandoned(fi);
                tel.add("select.targets_abandoned", 1);
                continue;
            }
            // A fresh target is never time-done (the fault that defined
            // `u` is undetected); a resumed cursor may be. `time_done`
            // only flips when a keep drops faults, so checking it after
            // keeps (below) covers every rank the old per-rank scan did.
            if !live.time_done(u) {
                // The segment snapshot: the screening sample and the
                // dense simulation list are frozen between keeps, and
                // the prefix cache lives exactly as long as they do.
                // Rebuilt lazily at the fault start and after every keep.
                let mut segment: Option<(Vec<usize>, FaultList, Option<FaultList>)> = None;
                'ls: for ls in ls0..=(u + 1) {
                    s.extend_for(t, u, ls);
                    let mut sets = CandidateSets::build_with(&s, t, u, ls, cfg.ordering);
                    if cfg.full_length_fixup {
                        sets.ensure_full_length_rank();
                    }
                    let mut j = if ls == ls0 { j0 } else { 0 };
                    while j < sets.max_rank() {
                        if let Some(r) = token.cancelled() {
                            truncated = Some(r);
                            break 'ls;
                        }
                        if segment.is_none() {
                            live.compact();
                            if let Some(cache) = cache.as_mut() {
                                cache.clear();
                            }
                            let seg_live = live.live().to_vec();
                            let seg_faults: FaultList =
                                seg_live.iter().map(|&i| faults.faults()[i]).collect();
                            let sample = cfg
                                .sample_first
                                .then(|| screening_sample(faults, &seg_live, fi, cfg.sample_size));
                            segment = Some((seg_live, seg_faults, sample));
                        }
                        let seg = segment.as_ref().expect("segment snapshot just built");
                        let mut wave =
                            speculate::gather(&sets, &s, ls, &mut j, width, cfg.sequence_length);
                        if wave.is_empty() {
                            break; // no admissible rank left at this L_S
                        }
                        let launched = speculate::evaluate_wavefront(
                            &sim,
                            &token,
                            &mut wave,
                            seg.2.as_ref(),
                            &seg.1,
                            cache.as_ref(),
                            &tel,
                        );
                        // Commit in strict rank order. The first keep (or
                        // budget trip) discards the rest of the wave: the
                        // discarded evaluations were computed against a
                        // now-stale snapshot and are re-gathered, and
                        // their private counters are never merged — which
                        // is what keeps the deterministic trace blind to
                        // the speculation width.
                        let mut committed = 0usize;
                        let mut keep_happened = false;
                        for entry in wave.iter_mut() {
                            committed += 1;
                            tel.add("select.candidates_tried", 1);
                            let done = entry.eval.as_mut().expect("launched entries carry results");
                            tel.merge_from(&done.tel);
                            if tel.is_enabled() && done.prefix_hits > 0 {
                                // Reuse depends on the cache state a wave
                                // was evaluated against, hence on the
                                // width → effort space, out of the
                                // deterministic trace.
                                tel.add_effort("select.prefix_hits", done.prefix_hits);
                                tel.add_effort("select.cycles_skipped", done.cycles_skipped);
                            }
                            if tel.is_enabled() {
                                // Spatial-incrementality figures ride the
                                // same cache state → effort space too.
                                if done.cone_seeded > 0 {
                                    tel.add_effort("select.cone_seeded", done.cone_seeded);
                                }
                                if done.trace_gates_evaluated > 0 {
                                    tel.add_effort(
                                        "select.trace_gates_evaluated",
                                        done.trace_gates_evaluated,
                                    );
                                }
                                if done.gates_rescanned_saved > 0 {
                                    tel.add_effort(
                                        "select.gates_rescanned_saved",
                                        done.gates_rescanned_saved,
                                    );
                                }
                                if done.snapshot_spills > 0 {
                                    tel.add_effort("select.snapshot_spills", done.snapshot_spills);
                                }
                                if done.snapshot_bytes > 0 {
                                    tel.add_effort("select.snapshot_bytes", done.snapshot_bytes);
                                }
                            }
                            if done.snapshot_capture_denied {
                                // Deterministic: the denial is a pure
                                // function of the committed query shape
                                // (batches × flip-flops over the spill
                                // cap), replayed identically on resume.
                                tel.add("select.snapshot_capture_denied", 1);
                                if tel.is_enabled() && !capture_denied_reported {
                                    capture_denied_reported = true;
                                    tel.event(
                                        "select.snapshot_capture_denied",
                                        &[("rank", entry.rank as u64)],
                                    );
                                }
                            }
                            if done.screen_skip {
                                tel.add("select.sample_skips", 1);
                                if done.cancelled {
                                    truncated = token.cancelled();
                                    break;
                                }
                                // Publish the (trace-only) evaluation for
                                // prefix reuse. Commit order makes the
                                // cache state deterministic at any width;
                                // cancelled or discarded entries never
                                // install.
                                if let Some(cache) = cache.as_mut() {
                                    if let Some(inst) = done.install.take() {
                                        cache.install(inst);
                                    }
                                }
                                continue;
                            }
                            // The full simulation ran: its flags are
                            // genuine detections (kept, result stays
                            // valid) even when the run was cut short.
                            let mut newly = 0usize;
                            for &k in &done.newly {
                                let gi = seg.0[k];
                                if !detected[gi] {
                                    detected[gi] = true;
                                    live.mark_detected(gi);
                                    newly += 1;
                                }
                            }
                            if done.cancelled {
                                // Possibly incomplete, so this rank must
                                // not enter Ω or a checkpoint — a resumed
                                // run replays it in full.
                                truncated = token.cancelled();
                                break;
                            }
                            if newly > 0 {
                                tel.add("select.assignments_kept", 1);
                                if tel.is_enabled() {
                                    tel.point("fault_drop", live.undetected());
                                    tel.event(
                                        "select.kept",
                                        &[
                                            ("detection_time", u as u64),
                                            ("rank", entry.rank as u64),
                                            ("newly_detected", newly as u64),
                                        ],
                                    );
                                }
                                omega.push(SelectedAssignment {
                                    assignment: entry.assignment.clone(),
                                    detection_time: u,
                                    rank: entry.rank,
                                    newly_detected: newly,
                                });
                                write_checkpoint(
                                    &tel,
                                    &omega,
                                    &detected,
                                    &abandoned,
                                    &s,
                                    Some(Cursor {
                                        fault: fi,
                                        u,
                                        ls,
                                        rank: entry.rank,
                                    }),
                                );
                                if let Some(max) = token.max_assignments() {
                                    if omega.len() >= max {
                                        token.cancel(TruncationReason::MaxAssignments);
                                        truncated = Some(TruncationReason::MaxAssignments);
                                    }
                                }
                                keep_happened = true;
                                j = entry.rank + 1;
                                break;
                            }
                            // Nothing new: publish the evaluation for
                            // prefix reuse by later ranks.
                            if let Some(cache) = cache.as_mut() {
                                if let Some(inst) = done.install.take() {
                                    cache.install(inst);
                                }
                            }
                        }
                        if launched > 0 && tel.is_enabled() {
                            // Width-dependent by nature → effort space,
                            // which stays out of the deterministic trace.
                            let wasted = wave[committed..].len() as u64;
                            tel.add_effort("select.speculation_launched", launched as u64);
                            tel.add_effort("select.speculation_wasted", wasted);
                        }
                        if truncated.is_some() {
                            break 'ls;
                        }
                        if keep_happened {
                            segment = None;
                            if live.time_done(u) {
                                break 'ls;
                            }
                        }
                    }
                }
            }
            if truncated.is_some() {
                break;
            }
            if !detected[fi] {
                // Unreachable when L_G > u (see module docs); kept as a
                // safety valve so malformed inputs cannot hang the loop.
                abandoned[fi] = true;
                live.mark_abandoned(fi);
                tel.add("select.targets_abandoned", 1);
            }
        }

        let result = SynthesisResult {
            omega,
            weights: s,
            detected,
            target,
            abandoned,
            sequence_length: cfg.sequence_length,
        };
        match truncated {
            Some(reason) => {
                runctl::note_truncation(&tel, reason);
                Outcome::Truncated { result, reason }
            }
            None => Outcome::Complete(result),
        }
    }
}

/// Runs the paper's synthesis procedure.
///
/// Convenience wrapper over [`Synthesis`]: `t` is the deterministic test
/// sequence, `faults` the target fault list. Faults that `t` does not
/// detect are excluded from the target set `F` (the paper's guarantee is
/// relative to `T`'s coverage).
///
/// # Panics
///
/// Panics if the circuit is not levelized, the sequence width does not
/// match the circuit, or `cfg.sequence_length == 0`.
pub fn synthesize_weighted_bist(
    circuit: &Circuit,
    t: &TestSequence,
    faults: &FaultList,
    cfg: &SynthesisConfig,
) -> SynthesisResult {
    Synthesis::new(circuit, t, faults).config(cfg.clone()).run()
}

/// Builds the screening sample: the target fault plus the first
/// `size - 1` other undetected targets (ascending index over the
/// segment's live list — the same faults the old per-rank scan picked,
/// built once per segment instead of once per candidate, and
/// independent of the speculation width).
fn screening_sample(faults: &FaultList, live: &[usize], fi: usize, size: usize) -> FaultList {
    let all = faults.faults();
    let mut picked: Vec<Fault> = vec![all[fi]];
    for &i in live {
        if picked.len() >= size.max(1) {
            break;
        }
        if i != fi {
            picked.push(all[i]);
        }
    }
    FaultList::from_faults(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_circuits::s27;

    fn setup() -> (Circuit, TestSequence, FaultList) {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        (c, t, faults)
    }

    #[test]
    fn s27_reaches_deterministic_coverage() {
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        assert_eq!(r.target_count(), 32, "T detects all 32 faults");
        assert!(r.coverage_guaranteed());
        assert!(!r.omega.is_empty());
        assert!(r.abandoned.iter().all(|&a| !a));
    }

    #[test]
    fn subsequences_are_much_shorter_than_t() {
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        assert!(
            r.max_subsequence_len() <= t.len(),
            "subsequences never exceed |T|"
        );
    }

    #[test]
    fn sample_first_does_not_change_coverage() {
        let (c, t, faults) = setup();
        let with = synthesize_weighted_bist(
            &c,
            &t,
            &faults,
            &SynthesisConfig {
                sequence_length: 100,
                sample_first: true,
                sample_size: 4,
                ..SynthesisConfig::default()
            },
        );
        let without = synthesize_weighted_bist(
            &c,
            &t,
            &faults,
            &SynthesisConfig {
                sequence_length: 100,
                sample_first: false,
                sample_size: 4,
                ..SynthesisConfig::default()
            },
        );
        assert!(with.coverage_guaranteed());
        assert!(without.coverage_guaranteed());
    }

    #[test]
    fn short_l_g_abandons_late_faults_instead_of_hanging() {
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 4, // shorter than the max detection time (9)
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        assert!(r.abandoned.iter().any(|&a| a));
        assert!(!r.coverage_guaranteed());
    }

    #[test]
    fn omega_assignments_actually_detect() {
        // Re-simulating Ω's sequences must reproduce the detected set.
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        let sim = FaultSim::new(&c);
        let mut detected = vec![false; faults.len()];
        for sel in &r.omega {
            let flags = sim
                .query(&faults)
                .sequence(&sel.sequence(cfg.sequence_length))
                .detected();
            for (d, f) in detected.iter_mut().zip(flags) {
                *d |= f;
            }
        }
        for (i, (&target, &hit)) in r.target.iter().zip(&detected).enumerate() {
            if target {
                assert!(hit, "target fault {i} not covered by Ω");
            }
        }
    }

    #[test]
    fn max_assignment_budget_truncates_and_resumes_bit_identically() {
        use crate::runctl::{Budget, Checkpoint, RunControl};
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 100,
            run: RunOptions::default().telemetry(Telemetry::enabled()),
            ..SynthesisConfig::default()
        };
        let dir = std::env::temp_dir().join("wbist-resume-s27");
        std::fs::create_dir_all(&dir).unwrap();
        let full_ckpt = dir.join("full.ckpt");
        let full = Synthesis::new(&c, &t, &faults)
            .config(cfg.clone())
            .run_controlled(&RunControl::default().checkpoint(&full_ckpt));
        assert!(!full.is_truncated());
        let full_counters = cfg.run.telemetry.counters();
        let total = full.result().omega.len();
        assert!(total >= 2, "need several assignments to interrupt between");

        for k in 1..total {
            let ckpt_path = dir.join(format!("cut-{k}.ckpt"));
            let cut_cfg = SynthesisConfig {
                run: RunOptions::default().telemetry(Telemetry::enabled()),
                ..cfg.clone()
            };
            let ctl = RunControl::default()
                .budget(Budget::default().max_assignments(k))
                .checkpoint(&ckpt_path);
            let cut = Synthesis::new(&c, &t, &faults)
                .config(cut_cfg)
                .run_controlled(&ctl);
            assert!(cut.is_truncated(), "k={k} should truncate");
            assert_eq!(cut.result().omega.len(), k);
            assert_eq!(cut.result().omega[..], full.result().omega[..k]);

            let resumed_cfg = SynthesisConfig {
                run: RunOptions::default().telemetry(Telemetry::enabled()),
                ..cfg.clone()
            };
            let resumed_tel = resumed_cfg.run.telemetry.clone();
            let resumed = Synthesis::new(&c, &t, &faults)
                .config(resumed_cfg)
                .resume_from(Checkpoint::load(&ckpt_path).expect("checkpoint loads"))
                .expect("checkpoint matches this run")
                .run_controlled(&RunControl::default().checkpoint(&ckpt_path));
            assert!(!resumed.is_truncated());
            assert_eq!(resumed.result().omega, full.result().omega, "k={k}");
            assert_eq!(resumed.result().detected, full.result().detected);
            assert_eq!(resumed.result().abandoned, full.result().abandoned);
            assert_eq!(resumed_tel.counters(), full_counters, "k={k} counters");
            std::fs::remove_file(&ckpt_path).ok();
        }
        std::fs::remove_file(&full_ckpt).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        use crate::runctl::{Checkpoint, CheckpointError, RunControl};
        let (c, t, faults) = setup();
        let cfg = SynthesisConfig {
            sequence_length: 100,
            ..SynthesisConfig::default()
        };
        let dir = std::env::temp_dir().join("wbist-resume-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        let _ = Synthesis::new(&c, &t, &faults)
            .config(cfg.clone())
            .run_controlled(&RunControl::default().checkpoint(&path));
        let ckpt = Checkpoint::load(&path).expect("checkpoint loads");
        let other = SynthesisConfig {
            sequence_length: 99,
            ..cfg
        };
        let err = Synthesis::new(&c, &t, &faults)
            .config(other)
            .resume_from(ckpt)
            .unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_fault_list_is_fine() {
        let (c, t, _) = setup();
        let r = synthesize_weighted_bist(
            &c,
            &t,
            &FaultList::from_faults(vec![]),
            &SynthesisConfig::default(),
        );
        assert!(r.omega.is_empty());
        assert_eq!(r.target_count(), 0);
        assert!(r.coverage_guaranteed());
    }
}
