//! Full BIST self-test session with MISR response compaction.
//!
//! The paper's architecture (its Figure 1) generates stimuli; a complete
//! self-test additionally compacts the circuit's responses into a
//! signature. This module closes that loop: it applies the whole session
//! (every weighted sequence back to back, with a circuit reset between
//! assignments, exactly as the on-chip session counter would), absorbs
//! the primary outputs into a [`Misr`], and evaluates each target fault
//! twice —
//!
//! * **by observation**: would a tester watching the outputs every cycle
//!   see a discrepancy? (this is the detection notion used everywhere
//!   else in the workspace), and
//! * **by signature**: does the fault's final MISR signature provably
//!   differ from the golden signature?
//!
//! The gap between the two is *aliasing* plus *X-masking*: a MISR can
//! lose a detection to signature cancellation, and any `X` absorbed into
//! a signature makes the comparison inconclusive. The session report
//! quantifies both — the classic reasons real BIST flows gate signature
//! capture behind an initialization phase, which [`SessionConfig::capture_from`]
//! models.

use crate::select::SelectedAssignment;
use wbist_netlist::{Circuit, FaultList};
use wbist_sim::{Logic3, Misr, RunOptions, SerialFaultSim, TestSequence};

/// Configuration of a BIST session run.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// MISR stages.
    pub misr_width: usize,
    /// Cycles per weight assignment (`L_G`).
    pub sequence_length: usize,
    /// Cycles (per assignment) before signature capture starts; skipping
    /// the unknown-state prefix keeps `X` out of the signatures.
    pub capture_from: usize,
    /// Shared run options; the per-fault session evaluation fans faults
    /// out over `run.sim`'s worker threads.
    pub run: RunOptions,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            misr_width: 16,
            sequence_length: 100,
            capture_from: 0,
            run: RunOptions::default(),
        }
    }
}

/// The outcome of a BIST session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The golden (fault-free) signature per assignment session.
    pub golden: Vec<Vec<Logic3>>,
    /// Whether every golden signature is free of unknowns.
    pub golden_known: bool,
    /// Per fault: detected by cycle-accurate output observation.
    pub detected_by_observation: Vec<bool>,
    /// Per fault: detected by signature comparison.
    pub detected_by_signature: Vec<bool>,
    /// Faults observable at the outputs whose signatures did not
    /// provably differ (aliasing or X-masking).
    pub lost_in_signature: usize,
}

impl SessionReport {
    /// Observation-based detection count.
    pub fn observed(&self) -> usize {
        self.detected_by_observation.iter().filter(|&&d| d).count()
    }

    /// Signature-based detection count.
    pub fn signed(&self) -> usize {
        self.detected_by_signature.iter().filter(|&&d| d).count()
    }
}

/// Runs the complete BIST session for the assignments of `omega` against
/// `faults`.
///
/// The circuit state is reset (to the all-`X` power-up state) at the
/// start of each assignment's sequence, matching the per-session restart
/// semantics the synthesis procedure simulates with. The MISR is reset
/// at the same points; its per-session signatures are compared
/// independently, so a fault is signature-detected if *any* session's
/// signature provably differs.
///
/// # Panics
///
/// Panics if the circuit is not levelized, `omega` is empty, or the
/// configuration has a zero width/length.
pub fn run_bist_session(
    circuit: &Circuit,
    faults: &FaultList,
    omega: &[SelectedAssignment],
    cfg: &SessionConfig,
) -> SessionReport {
    assert!(!omega.is_empty(), "session needs at least one assignment");
    assert!(cfg.misr_width > 0, "MISR width must be positive");
    assert!(cfg.sequence_length > 0, "L_G must be positive");
    let tel = cfg.run.telemetry.clone();
    let _span = tel.span("session");
    let sim = SerialFaultSim::new(circuit);
    let sequences: Vec<TestSequence> = omega
        .iter()
        .map(|sel| sel.sequence(cfg.sequence_length))
        .collect();

    // Golden streams and signatures.
    let golden_streams: Vec<Vec<Vec<Logic3>>> = sequences
        .iter()
        .map(|seq| sim.output_stream(None, seq))
        .collect();
    let golden: Vec<Vec<Logic3>> = golden_streams
        .iter()
        .map(|stream| signature(stream, cfg))
        .collect();
    let golden_known = golden.iter().all(|sig| sig.iter().all(|s| s.is_known()));

    // Faults are independent: fan them out through the shared worker
    // pool. Every participant shares the read-only simulator, golden
    // streams, and signatures; results land in disjoint per-fault slots,
    // so the merge is deterministic.
    let n_faults = faults.len();
    let threads = cfg
        .run
        .sim
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, n_faults.max(1));
    let token = &cfg.run.cancel;
    let eval_fault = |fault| {
        let mut observed_any = false;
        let mut signed_any = false;
        for (si, seq) in sequences.iter().enumerate() {
            // Budget trip: stop evaluating; flags found so far are
            // genuine, faults not reached simply stay undetected.
            if token.cancelled().is_some() {
                break;
            }
            let stream = sim.output_stream(Some(fault), seq);
            // Observation: any cycle with a binary-vs-binary conflict.
            let observed = stream
                .iter()
                .zip(&golden_streams[si])
                .any(|(bad, good)| bad.iter().zip(good).any(|(b, g)| b.conflicts(*g)));
            observed_any |= observed;
            // Signature: provable difference of this session's MISRs.
            let sig = signature(&stream, cfg);
            signed_any |= sig.iter().zip(&golden[si]).any(|(a, b)| a.conflicts(*b));
            if observed_any && signed_any {
                break;
            }
        }
        (observed_any, signed_any)
    };
    let mut detected_by_observation = vec![false; n_faults];
    let mut detected_by_signature = vec![false; n_faults];
    if threads <= 1 {
        for (fi, &fault) in faults.faults().iter().enumerate() {
            let (o, s) = eval_fault(fault);
            detected_by_observation[fi] = o;
            detected_by_signature[fi] = s;
        }
    } else {
        let eval_fault = &eval_fault;
        let jobs: Vec<(usize, wbist_netlist::Fault)> = faults
            .faults()
            .iter()
            .enumerate()
            .map(|(fi, &fault)| (fi, fault))
            .collect();
        let (results, stats) = wbist_sim::pool::scatter(
            threads,
            jobs,
            || (),
            |(fi, fault), _state| (fi, eval_fault(fault)),
        );
        tel.add_effort("pool.tasks", stats.tasks);
        tel.add_effort("pool.steals", stats.stolen);
        for (fi, (o, s)) in results {
            detected_by_observation[fi] = o;
            detected_by_signature[fi] = s;
        }
    }

    if let Some(reason) = cfg.run.cancel.cancelled() {
        crate::runctl::note_truncation(&tel, reason);
    }
    let lost_in_signature = detected_by_observation
        .iter()
        .zip(&detected_by_signature)
        .filter(|&(&o, &s)| o && !s)
        .count();
    tel.add("session.assignments", omega.len() as u64);
    tel.add("session.faults", n_faults as u64);
    tel.add(
        "session.observed",
        detected_by_observation.iter().filter(|&&d| d).count() as u64,
    );
    tel.add(
        "session.signed",
        detected_by_signature.iter().filter(|&&d| d).count() as u64,
    );
    tel.add("session.lost_in_signature", lost_in_signature as u64);

    SessionReport {
        golden,
        golden_known,
        detected_by_observation,
        detected_by_signature,
        lost_in_signature,
    }
}

fn signature(stream: &[Vec<Logic3>], cfg: &SessionConfig) -> Vec<Logic3> {
    let mut misr = Misr::with_default_taps(cfg.misr_width);
    for row in stream.iter().skip(cfg.capture_from) {
        misr.absorb(row);
    }
    misr.signature().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_circuits::s27;

    fn setup() -> (Circuit, FaultList, Vec<SelectedAssignment>, usize) {
        let c = s27::circuit();
        let t = s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&c);
        let l_g = 64;
        let cfg = SynthesisConfig {
            sequence_length: l_g,
            ..SynthesisConfig::default()
        };
        let r = synthesize_weighted_bist(&c, &t, &faults, &cfg);
        (c, faults, r.omega, l_g)
    }

    #[test]
    fn observation_matches_parallel_engine() {
        let (c, faults, omega, l_g) = setup();
        let cfg = SessionConfig {
            sequence_length: l_g,
            ..SessionConfig::default()
        };
        let report = run_bist_session(&c, &faults, &omega, &cfg);
        // Observation-based detection must equal the parallel engine's
        // union over the same sequences.
        let sim = wbist_sim::FaultSim::new(&c);
        let mut expect = vec![false; faults.len()];
        for sel in &omega {
            for (e, f) in expect
                .iter_mut()
                .zip(sim.query(&faults).sequence(&sel.sequence(l_g)).detected())
            {
                *e |= f;
            }
        }
        assert_eq!(report.detected_by_observation, expect);
        assert_eq!(report.observed(), 32);
    }

    #[test]
    fn capture_window_rescues_golden_signature() {
        let (c, faults, omega, l_g) = setup();
        // s27's outputs can be X in the first cycles; skipping a prefix
        // keeps the golden signatures clean.
        let poisoned = run_bist_session(
            &c,
            &faults,
            &omega,
            &SessionConfig {
                sequence_length: l_g,
                capture_from: 0,
                ..SessionConfig::default()
            },
        );
        let clean = run_bist_session(
            &c,
            &faults,
            &omega,
            &SessionConfig {
                sequence_length: l_g,
                capture_from: 8,
                ..SessionConfig::default()
            },
        );
        assert!(clean.golden_known, "skipping the prefix removes X");
        // Signature detection can only improve with a clean golden.
        assert!(clean.signed() >= poisoned.signed());
    }

    #[test]
    fn signature_detection_close_to_observation() {
        let (c, faults, omega, l_g) = setup();
        let report = run_bist_session(
            &c,
            &faults,
            &omega,
            &SessionConfig {
                sequence_length: l_g,
                capture_from: 8,
                misr_width: 16,
                run: RunOptions::default(),
            },
        );
        // Signature detection is a subset of observation...
        for (o, s) in report
            .detected_by_observation
            .iter()
            .zip(&report.detected_by_signature)
        {
            assert!(*o || !*s, "signature detection implies observability");
        }
        // ...and the losses are accounted for.
        assert_eq!(
            report.lost_in_signature,
            report.observed() - report.signed()
        );
        // A 16-bit MISR over ~100 cycles loses at most a few faults.
        assert!(
            report.lost_in_signature <= 4,
            "excessive aliasing: {}",
            report.lost_in_signature
        );
    }
}
