//! Speculative candidate evaluation for the selection loop.
//!
//! The §4.2 walk evaluates candidate ranks one at a time: generate
//! `T_G`, screen it against a small sample, fault-simulate it, keep it
//! if it detects something new. Whether `T_G` detects a fault is a pure
//! function of the circuit and `T_G` — it does not depend on the
//! `detected` bitmap — so the next `K` ranks can be evaluated
//! *concurrently* against a frozen snapshot of the state and their
//! results **committed in strict rank order**. The commit point is the
//! only place state changes, which makes the speculation exact: Ω, the
//! detection flags, and every deterministic telemetry counter are
//! bit-identical to the sequential walk at any width and worker count.
//!
//! Three invariants carry the proof:
//!
//! 1. **Snapshots are segment-frozen.** The screening sample and the
//!    dense live-fault list only change when an assignment is kept; a
//!    kept assignment discards every later in-flight result (they were
//!    computed against a now-stale snapshot) and the walk re-gathers
//!    from the next rank. Committed results are therefore always
//!    evaluated against exactly the state the sequential walk would
//!    have used.
//! 2. **Counters ride private handles.** Each evaluation records its
//!    `sim.*` counters into a private [`Telemetry`] handle, merged into
//!    the main handle in commit order; discarded evaluations are never
//!    merged, so the deterministic trace cannot see the speculation
//!    width. The width-dependent totals (`select.speculation_*`) go to
//!    the effort space, which is excluded from the trace by contract.
//! 3. **Cancellation commits a prefix.** A budget that trips mid-wave
//!    stops the commit loop at the first result whose evaluation saw
//!    the tripped token; later results are discarded, the checkpoint
//!    still names the last kept rank, and a resumed run replays from
//!    there — the same contract the sequential walk has.
//!
//! The [`SequenceMemo`] layered underneath exploits that distinct
//! assignments at small `L_S` frequently generate *identical* `T_G`
//! (clamped ranks literally repeat assignments, and short subsequences
//! expand to the same periodic stream). The memo keys candidates by the
//! packed bits of the generated sequence; a hit skips the screen and
//! the simulation outright. Entries live exactly as long as the
//! snapshot they were evaluated under (cleared on every keep and at
//! every new target fault), so a hit is always exact, and — because
//! checkpoints are only written at keeps — a resumed run rebuilds the
//! same (empty) memo state the uninterrupted run had at that point.

use std::collections::HashSet;

use crate::assign::{CandidateSets, WeightAssignment};
use crate::weights::WeightSet;
use wbist_netlist::FaultList;
use wbist_sim::{CancelToken, FaultSim, TestSequence};
use wbist_telemetry::Telemetry;

/// Hard cap on memo entries per segment; inserts beyond it are dropped
/// (deterministically — the cap depends only on the committed walk).
/// Bounds memory on pathological runs where one segment tries tens of
/// thousands of distinct sequences.
const MEMO_CAP: usize = 4096;

/// Hash-consed set of generated sequences already evaluated in the
/// current segment (the stretch between two kept assignments).
#[derive(Debug, Default)]
pub(crate) struct SequenceMemo {
    seen: HashSet<Vec<u64>>,
}

impl SequenceMemo {
    pub(crate) fn new() -> SequenceMemo {
        SequenceMemo::default()
    }

    /// Forgets everything; called whenever the snapshot the entries
    /// were evaluated under changes (a keep, or a new target fault).
    pub(crate) fn clear(&mut self) {
        self.seen.clear();
    }

    pub(crate) fn contains(&self, key: &[u64]) -> bool {
        self.seen.contains(key)
    }

    /// Records a fully evaluated, committed, keep-free sequence.
    pub(crate) fn insert(&mut self, key: Vec<u64>) {
        if self.seen.len() < MEMO_CAP {
            self.seen.insert(key);
        }
    }
}

/// Packs a generated sequence into the words the memo keys on. Exact:
/// two sequences share a key iff they are bit-for-bit equal (the
/// trailing word pins the shape).
pub(crate) fn sequence_key(tg: &TestSequence) -> Vec<u64> {
    let bits = tg.len() * tg.num_inputs();
    let mut words = Vec::with_capacity(bits / 64 + 2);
    let mut w = 0u64;
    let mut k = 0u32;
    for u in 0..tg.len() {
        for &b in tg.row(u) {
            w |= (b as u64) << k;
            k += 1;
            if k == 64 {
                words.push(w);
                w = 0;
                k = 0;
            }
        }
    }
    if k > 0 {
        words.push(w);
    }
    words.push(((tg.len() as u64) << 32) | tg.num_inputs() as u64);
    words
}

/// What one speculative evaluation produced.
#[derive(Debug)]
pub(crate) struct EvalDone {
    /// The screening sample rejected the sequence (no full simulation).
    pub screen_skip: bool,
    /// Indices *into the segment's live list* that the sequence
    /// detects. Exact regardless of commit-time state: detection is
    /// independent of the `detected` bitmap.
    pub newly: Vec<usize>,
    /// The evaluation's private counter handle, merged at commit.
    pub tel: Telemetry,
    /// The cancellation token tripped before the evaluation finished;
    /// its results are a valid prefix but must not be committed to Ω.
    pub cancelled: bool,
}

/// One gathered candidate rank, in walk order.
#[derive(Debug)]
pub(crate) struct WaveEntry {
    pub rank: usize,
    pub assignment: WeightAssignment,
    pub tg: TestSequence,
    pub key: Vec<u64>,
    /// Resolved without simulation: the memo (or an earlier entry of
    /// this very wave) already evaluated an identical sequence.
    pub memo_hit: bool,
    /// Filled by [`evaluate_wavefront`] for non-memo-hit entries.
    pub eval: Option<EvalDone>,
}

/// Collects the next (up to) `width` admissible candidate ranks at
/// subsequence length `ls`, advancing the rank cursor `j` past every
/// rank it examined. Inadmissible ranks (no length-`ls` subsequence, or
/// an empty candidate set) are skipped without being counted, exactly
/// like the sequential walk's `continue`s.
pub(crate) fn gather(
    sets: &CandidateSets,
    s: &WeightSet,
    ls: usize,
    j: &mut usize,
    width: usize,
    memo: &SequenceMemo,
    l_g: usize,
) -> Vec<WaveEntry> {
    let mut wave: Vec<WaveEntry> = Vec::new();
    while wave.len() < width.max(1) && *j < sets.max_rank() {
        let rank = *j;
        *j += 1;
        if !sets.rank_has_length(rank, ls) {
            continue;
        }
        let Some(assignment) = sets.assignment_at(s, rank) else {
            continue;
        };
        let tg = assignment.generate(l_g);
        let key = sequence_key(&tg);
        // An identical sequence earlier in this same wave acts like a
        // memo entry: if it is reached it commits first and inserts the
        // key, so this rank resolves as a hit — and if it is not
        // reached (a keep or a budget cut before it), this rank is
        // discarded along with it.
        let memo_hit = memo.contains(&key) || wave.iter().any(|e| e.key == key);
        wave.push(WaveEntry {
            rank,
            assignment,
            tg,
            key,
            memo_hit,
            eval: None,
        });
    }
    wave
}

/// Evaluates every non-memo-hit entry of the wave — screen, then full
/// simulation against the segment's frozen live list — fanning the
/// entries out over a `std::thread::scope` worker pool (the `wbist-sim`
/// batch-pool idiom, one level up). Results land back in the entries;
/// returns how many evaluations were launched.
///
/// Each evaluation runs on a [`FaultSim::worker_clone`] with a private
/// telemetry handle, so nothing is recorded into the main handle here —
/// the caller merges committed results in rank order.
pub(crate) fn evaluate_wavefront(
    sim: &FaultSim<'_>,
    token: &CancelToken,
    wave: &mut [WaveEntry],
    sample: Option<&FaultList>,
    live_faults: &FaultList,
    tel_enabled: bool,
) -> usize {
    let todo: Vec<usize> = wave
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.memo_hit)
        .map(|(i, _)| i)
        .collect();
    if todo.is_empty() {
        return 0;
    }
    let pool = sim
        .options()
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let evaluate = |tg: &TestSequence, threads: usize| -> EvalDone {
        let tel = if tel_enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let esim = sim.worker_clone(tel.clone(), threads);
        let screen_skip = match sample {
            Some(sample) => !esim.detects_any(sample, tg),
            None => false,
        };
        let newly = if screen_skip || live_faults.is_empty() {
            Vec::new()
        } else {
            esim.detected_indices(live_faults, tg)
        };
        // Read after the queries: the kernels poll the same token per
        // cycle, so a cut-short query implies the trip is visible here.
        let cancelled = token.cancelled().is_some();
        EvalDone {
            screen_skip,
            newly,
            tel,
            cancelled,
        }
    };
    if todo.len() == 1 || pool == 1 {
        // Inline: a lone evaluation keeps the full batch-level pool.
        for &i in &todo {
            wave[i].eval = Some(evaluate(&wave[i].tg, pool));
        }
    } else {
        let workers = pool.min(todo.len());
        let inner = (pool / workers).max(1);
        let mut per_worker: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
        for (k, &i) in todo.iter().enumerate() {
            per_worker[k % workers].push(i);
        }
        let shared: &[WaveEntry] = wave;
        let evaluate = &evaluate;
        let mut slots: Vec<(usize, EvalDone)> = Vec::with_capacity(todo.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|i| (i, evaluate(&shared[i].tg, inner)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                slots.extend(handle.join().expect("speculation worker panicked"));
            }
        });
        for (i, done) in slots {
            wave[i].eval = Some(done);
        }
    }
    todo.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: &[&str]) -> TestSequence {
        TestSequence::parse_rows(rows).expect("valid rows")
    }

    #[test]
    fn sequence_key_is_exact() {
        let a = seq(&["01", "10"]);
        let b = seq(&["01", "10"]);
        let c = seq(&["01", "11"]);
        assert_eq!(sequence_key(&a), sequence_key(&b));
        assert_ne!(sequence_key(&a), sequence_key(&c));
        // Same bits, different shape: the shape word separates them.
        let wide = seq(&["0110"]);
        assert_ne!(sequence_key(&a), sequence_key(&wide));
    }

    #[test]
    fn sequence_key_crosses_word_boundaries() {
        // 3 inputs × 50 units = 150 bits → 3 words + shape.
        let rows: Vec<String> = (0..50).map(|u| format!("{:03b}", u % 8)).collect();
        let row_refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let long = seq(&row_refs);
        let key = sequence_key(&long);
        assert_eq!(key.len(), 150_usize.div_ceil(64) + 1);
        assert_eq!(key, sequence_key(&long.clone()));
    }

    #[test]
    fn memo_caps_and_clears() {
        let mut memo = SequenceMemo::new();
        let key = vec![1u64, 2];
        memo.insert(key.clone());
        assert!(memo.contains(&key));
        memo.clear();
        assert!(!memo.contains(&key));
    }
}
