//! Speculative candidate evaluation for the selection loop.
//!
//! The §4.2 walk evaluates candidate ranks one at a time: generate
//! `T_G`, screen it against a small sample, fault-simulate it, keep it
//! if it detects something new. Whether `T_G` detects a fault is a pure
//! function of the circuit and `T_G` — it does not depend on the
//! `detected` bitmap — so the next `K` ranks can be evaluated
//! *concurrently* against a frozen snapshot of the state and their
//! results **committed in strict rank order**. The commit point is the
//! only place state changes, which makes the speculation exact: Ω, the
//! detection flags, and every deterministic telemetry counter are
//! bit-identical to the sequential walk at any width and worker count.
//!
//! Three invariants carry the proof:
//!
//! 1. **Snapshots are segment-frozen.** The screening sample and the
//!    dense live-fault list only change when an assignment is kept; a
//!    kept assignment discards every later in-flight result (they were
//!    computed against a now-stale snapshot) and the walk re-gathers
//!    from the next rank. Committed results are therefore always
//!    evaluated against exactly the state the sequential walk would
//!    have used.
//! 2. **Counters ride private handles.** Each evaluation records its
//!    `sim.*` counters into a private [`Telemetry`] handle, merged into
//!    the main handle in commit order; discarded evaluations are never
//!    merged, so the deterministic trace cannot see the speculation
//!    width. The width-dependent totals (`select.speculation_*`, the
//!    prefix-reuse figures) go to the effort space, which is excluded
//!    from the trace by contract.
//! 3. **Cancellation commits a prefix.** A budget that trips mid-wave
//!    stops the commit loop at the first result whose evaluation saw
//!    the tripped token; later results are discarded, the checkpoint
//!    still names the last kept rank, and a resumed run replays from
//!    there — the same contract the sequential walk has.
//!
//! The [`PrefixTraceCache`] layered underneath exploits the structure of
//! the rank walk: consecutive candidates at one `L_S` share long
//! generated-sequence prefixes by construction (periodic per-input
//! streams change one input's period at a time, and clamped ranks
//! literally repeat whole sequences). Each evaluation *prepares* its
//! sequence against the cache — the good-machine trace resumes at the
//! first divergent input row, the screen and the dense query share that
//! one trace, and the dense query resumes every fault batch from the
//! latest checkpointed faulty-plane snapshot inside the shared prefix.
//! Resumed evaluations are bit-identical to from-scratch ones (the
//! snapshots carry cumulative stats and detections), so the cache is
//! invisible to the deterministic trace. Entries are installed only at
//! the commit point, and only for committed, keep-free, uncancelled
//! results: an aborted wavefront can never publish state the sequential
//! walk would not have had. This replaced the PR-5 exact-match sequence
//! memo, which keyed on whole packed sequences and therefore never
//! fired on real circuits (`memo_hits: 0` across the benchmark set).

use crate::assign::{CandidateSets, WeightAssignment};
use crate::weights::WeightSet;
use wbist_netlist::FaultList;
use wbist_sim::{CancelToken, FaultSim, PrefixTraceCache, TestSequence};
use wbist_telemetry::Telemetry;

/// What one speculative evaluation produced.
#[derive(Debug)]
pub(crate) struct EvalDone {
    /// The screening sample rejected the sequence (no full simulation).
    pub screen_skip: bool,
    /// Indices *into the segment's live list* that the sequence
    /// detects. Exact regardless of commit-time state: detection is
    /// independent of the `detected` bitmap.
    pub newly: Vec<usize>,
    /// The evaluation's private counter handle, merged at commit.
    pub tel: Telemetry,
    /// The cancellation token tripped before the evaluation finished;
    /// its results are a valid prefix but must not be committed to Ω.
    pub cancelled: bool,
    /// Prefix-cache reuse events this evaluation benefited from
    /// (good-trace resume, screen→dense trace sharing, faulty-plane
    /// batch resume). Width-dependent → effort space.
    pub prefix_hits: u64,
    /// Simulation cycles those reuse events skipped.
    pub cycles_skipped: u64,
    /// 1 when the good-trace rebuild was cone-seeded. Effort space,
    /// like every prefix-reuse figure.
    pub cone_seeded: u64,
    /// Good-machine gate evaluations spent rebuilding the trace suffix.
    pub trace_gates_evaluated: u64,
    /// Good-machine gate evaluations cone seeding avoided relative to a
    /// full per-cycle rescan of the suffix.
    pub gates_rescanned_saved: u64,
    /// Snapshots newly compressed into the install's spill store.
    pub snapshot_spills: u64,
    /// Bytes the install's spilled snapshots pin.
    pub snapshot_bytes: u64,
    /// The dense query declined snapshot capture (above the spill cap).
    /// Deterministic — a pure function of the query shape.
    pub snapshot_capture_denied: bool,
    /// Cache entry to publish if this evaluation commits cleanly.
    pub install: Option<wbist_sim::CacheInstall>,
}

/// One gathered candidate rank, in walk order.
#[derive(Debug)]
pub(crate) struct WaveEntry {
    pub rank: usize,
    pub assignment: WeightAssignment,
    pub tg: TestSequence,
    /// Filled by [`evaluate_wavefront`].
    pub eval: Option<EvalDone>,
}

/// Collects the next (up to) `width` admissible candidate ranks at
/// subsequence length `ls`, advancing the rank cursor `j` past every
/// rank it examined. Inadmissible ranks (no length-`ls` subsequence, or
/// an empty candidate set) are skipped without being counted, exactly
/// like the sequential walk's `continue`s.
pub(crate) fn gather(
    sets: &CandidateSets,
    s: &WeightSet,
    ls: usize,
    j: &mut usize,
    width: usize,
    l_g: usize,
) -> Vec<WaveEntry> {
    let mut wave: Vec<WaveEntry> = Vec::new();
    while wave.len() < width.max(1) && *j < sets.max_rank() {
        let rank = *j;
        *j += 1;
        if !sets.rank_has_length(rank, ls) {
            continue;
        }
        let Some(assignment) = sets.assignment_at(s, rank) else {
            continue;
        };
        let tg = assignment.generate(l_g);
        wave.push(WaveEntry {
            rank,
            assignment,
            tg,
            eval: None,
        });
    }
    wave
}

/// Evaluates every entry of the wave — screen, then full simulation
/// against the segment's frozen live list — fanning the entries out
/// through the shared worker pool ([`wbist_sim::pool`], the same pool
/// the per-batch sim fan-out uses one level down). Results land back in
/// the entries; returns how many evaluations were launched.
///
/// Each evaluation runs on a [`FaultSim::worker_clone`] with a private
/// telemetry handle, so the only thing recorded into the main handle
/// here is the effort-space pool dispatch accounting
/// (`pool.tasks`/`pool.steals`) — the caller merges committed results
/// in rank order.
///
/// With `cache`, evaluations are *prepared* against the prefix cache
/// (see the module docs). The cache is read-only for the whole wave —
/// installs happen at the caller's commit point — so concurrent
/// evaluations all see the same frozen entries and the reuse a given
/// candidate gets depends only on the committed walk before its wave,
/// never on worker scheduling.
pub(crate) fn evaluate_wavefront(
    sim: &FaultSim<'_>,
    token: &CancelToken,
    wave: &mut [WaveEntry],
    sample: Option<&FaultList>,
    live_faults: &FaultList,
    cache: Option<&PrefixTraceCache>,
    tel: &Telemetry,
) -> usize {
    if wave.is_empty() {
        return 0;
    }
    let tel_enabled = tel.is_enabled();
    let todo: Vec<usize> = (0..wave.len()).collect();
    let pool = sim
        .options()
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let evaluate = |tg: &TestSequence, threads: usize| -> EvalDone {
        let tel = if tel_enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let esim = sim.worker_clone(tel.clone(), threads);
        let mut prefix_hits = 0u64;
        let mut cycles_skipped = 0u64;
        let mut cone_seeded = 0u64;
        let mut trace_gates_evaluated = 0u64;
        let mut gates_rescanned_saved = 0u64;
        let mut snapshot_spills = 0u64;
        let mut snapshot_bytes = 0u64;
        let mut snapshot_capture_denied = false;
        let (screen_skip, newly, install) = match cache {
            Some(cache) => {
                let prep = esim.prepare_sequence(Some(cache), tg);
                if prep.reused_cycles() > 0 {
                    prefix_hits += 1;
                    cycles_skipped += prep.reused_cycles() as u64;
                }
                cone_seeded = prep.cone_seeded() as u64;
                trace_gates_evaluated = prep.trace_gates_evaluated();
                gates_rescanned_saved = prep.trace_gates_saved();
                let screened = sample.is_some();
                let screen_skip = match sample {
                    Some(sample) => !esim.query(sample).prepared(&prep).any(),
                    None => false,
                };
                if screen_skip || live_faults.is_empty() {
                    (screen_skip, Vec::new(), Some(esim.trace_install(&prep)))
                } else {
                    if screened {
                        // The dense query reuses the good trace the
                        // screen already computed — one good simulation
                        // for the pair instead of two.
                        prefix_hits += 1;
                        cycles_skipped += tg.len() as u64;
                    }
                    let out = esim
                        .query(live_faults)
                        .prepared(&prep)
                        .cache(cache)
                        .outcome();
                    if out.resumed_cycles > 0 {
                        prefix_hits += 1;
                        cycles_skipped += out.resumed_cycles;
                    }
                    snapshot_spills = out.snapshot_spills;
                    snapshot_bytes = out.snapshot_bytes;
                    snapshot_capture_denied = out.snapshot_capture_denied;
                    (screen_skip, out.detected, Some(out.install))
                }
            }
            None => {
                let screen_skip = match sample {
                    Some(sample) => !esim.query(sample).sequence(tg).any(),
                    None => false,
                };
                let newly = if screen_skip || live_faults.is_empty() {
                    Vec::new()
                } else {
                    esim.query(live_faults).sequence(tg).detected_indices()
                };
                (screen_skip, newly, None)
            }
        };
        // Read after the queries: the kernels poll the same token per
        // cycle, so a cut-short query implies the trip is visible here.
        let cancelled = token.cancelled().is_some();
        EvalDone {
            screen_skip,
            newly,
            tel,
            cancelled,
            prefix_hits,
            cycles_skipped,
            cone_seeded,
            trace_gates_evaluated,
            gates_rescanned_saved,
            snapshot_spills,
            snapshot_bytes,
            snapshot_capture_denied,
            install,
        }
    };
    if todo.len() == 1 || pool == 1 {
        // Inline: a lone evaluation keeps the full batch-level pool.
        for &i in &todo {
            wave[i].eval = Some(evaluate(&wave[i].tg, pool));
        }
    } else {
        let workers = pool.min(todo.len());
        let inner = (pool / workers).max(1);
        let shared: &[WaveEntry] = wave;
        let evaluate = &evaluate;
        let (slots, stats) = wbist_sim::pool::scatter(
            workers,
            todo.clone(),
            || (),
            |i, _state| (i, evaluate(&shared[i].tg, inner)),
        );
        tel.add_effort("pool.tasks", stats.tasks);
        tel.add_effort("pool.steals", stats.stolen);
        for (i, done) in slots {
            wave[i].eval = Some(done);
        }
    }
    todo.len()
}
