//! Subsequence weights: the paper's basic objects.
//!
//! A *weight* is a finite 0/1 subsequence `α`. Assigning `α` to a primary
//! input means the input receives the periodic sequence `α^r = α α α …`.
//! At an arbitrary time unit `u'`, the stream `α^r` carries
//! `α(u' % L_S)` where `L_S` is the length of `α` (paper, Section 3).

use std::fmt;
use std::str::FromStr;

/// A finite 0/1 subsequence `α` used as a weight.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subsequence {
    bits: Vec<bool>,
}

/// Error returned when parsing a [`Subsequence`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSubsequenceError {
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for ParseSubsequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid subsequence character {:?}", self.ch)
    }
}

impl std::error::Error for ParseSubsequenceError {}

impl Subsequence {
    /// Creates a subsequence from bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty — a weight must produce a value at every
    /// time unit.
    pub fn new(bits: Vec<bool>) -> Self {
        assert!(!bits.is_empty(), "subsequence must be non-empty");
        Subsequence { bits }
    }

    /// The length `L_S` of the subsequence.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false; subsequences are non-empty by construction. Provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw bits of `α`.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The value carried by the periodic stream `α^r` at time unit `u`:
    /// `α(u % L_S)`.
    #[inline]
    pub fn value_at(&self, u: usize) -> bool {
        self.bits[u % self.bits.len()]
    }

    /// The first `len` values of the periodic stream `α^r`.
    pub fn stream(&self, len: usize) -> Vec<bool> {
        (0..len).map(|u| self.value_at(u)).collect()
    }

    /// Derives the subsequence `α` of length `ls` that reproduces `track`
    /// over the window of time units `u - ls + 1 ..= u`:
    /// `α(u' % ls) = track(u')` (paper, Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `ls == 0`, `ls > u + 1` (the window would start before
    /// time 0) or `u >= track.len()`.
    pub fn derive(track: &[bool], u: usize, ls: usize) -> Self {
        assert!(ls > 0, "subsequence length must be positive");
        assert!(ls <= u + 1, "window starts before time 0");
        assert!(u < track.len(), "u beyond end of track");
        let mut bits = vec![false; ls];
        for u_prime in (u + 1 - ls)..=u {
            bits[u_prime % ls] = track[u_prime];
        }
        Subsequence { bits }
    }

    /// Whether `α^r` matches `track` perfectly on the last `L_S` time
    /// units ending at `u`, i.e. `track(u') == α(u' % L_S)` for
    /// `u - L_S + 1 <= u' <= u`. Returns `false` when the window would
    /// start before time 0.
    pub fn matches_window(&self, track: &[bool], u: usize) -> bool {
        let ls = self.bits.len();
        if ls > u + 1 || u >= track.len() {
            return false;
        }
        ((u + 1 - ls)..=u).all(|u_prime| track[u_prime] == self.value_at(u_prime))
    }

    /// The number of time units `u'` at which `α^r` matches `track`
    /// (the paper's `n_m`).
    pub fn count_matches(&self, track: &[bool]) -> usize {
        track
            .iter()
            .enumerate()
            .filter(|&(u, &v)| v == self.value_at(u))
            .count()
    }

    /// The primitive root of `α`: the shortest prefix `p` such that `α`
    /// is `p` repeated an integer number of times. Two subsequences
    /// produce the same stream when repeated iff they have equal primitive
    /// roots (e.g. `01` and `0101`).
    pub fn primitive_root(&self) -> Subsequence {
        let n = self.bits.len();
        for d in 1..=n {
            if !n.is_multiple_of(d) {
                continue;
            }
            if (0..n).all(|k| self.bits[k] == self.bits[k % d]) {
                return Subsequence {
                    bits: self.bits[..d].to_vec(),
                };
            }
        }
        unreachable!("d = n always divides and matches");
    }

    /// Whether `self` and `other` produce identical streams when repeated.
    pub fn same_stream(&self, other: &Subsequence) -> bool {
        self.primitive_root() == other.primitive_root()
    }
}

impl FromStr for Subsequence {
    type Err = ParseSubsequenceError;

    /// Parses `"0"`/`"1"` text, e.g. `"100"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                c => return Err(ParseSubsequenceError { ch: c }),
            }
        }
        if bits.is_empty() {
            return Err(ParseSubsequenceError { ch: ' ' });
        }
        Ok(Subsequence { bits })
    }
}

impl fmt::Display for Subsequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(s: &str) -> Subsequence {
        s.parse().expect("test literals are valid")
    }

    fn track(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn stream_is_periodic() {
        let a = sub("100");
        assert_eq!(
            a.stream(8),
            track("10010010"),
            "repeating 100 gives 10010010…"
        );
        assert!(a.value_at(0));
        assert!(!a.value_at(1));
        assert!(a.value_at(3));
    }

    #[test]
    fn paper_example_matches_t0() {
        // Paper §2: T_0 = 0101011001, u = 9.
        let t0 = track("0101011001");
        // α = 1 matches at u=9 and at five time units total.
        let a1 = sub("1");
        assert!(a1.matches_window(&t0, 9));
        assert_eq!(a1.count_matches(&t0), 5);
        // α = 01 matches time units 8 and 9, 8 matches total.
        let a01 = sub("01");
        assert!(a01.matches_window(&t0, 9));
        assert_eq!(a01.count_matches(&t0), 8);
        // α = 100 matches at 7, 8, 9 and 7 matches total.
        let a100 = sub("100");
        assert!(a100.matches_window(&t0, 9));
        assert_eq!(a100.count_matches(&t0), 7);
    }

    #[test]
    fn paper_example_derivation_0110() {
        // Paper §3: T_0 = 0101011001, u = 8, L_S = 4 → α = 0110,
        // whose repetition 011001100… matches T_0 at times 5..=8.
        let t0 = track("0101011001");
        let a = Subsequence::derive(&t0, 8, 4);
        assert_eq!(a.to_string(), "0110");
        assert!(a.matches_window(&t0, 8));
        assert_eq!(a.stream(9), track("011001100"));
    }

    #[test]
    fn paper_example_derivation_other_inputs() {
        // Paper §3 continues: for input 1 α = 0000, input 2 α = 0100.
        let t1 = track("1010100000");
        assert_eq!(Subsequence::derive(&t1, 8, 4).to_string(), "0000");
        // T_2 from Table 1: 1000101001 — wait, read column i=2:
        // u0..u9 = 1,0,1,0,0,1,0,0,0,1.
        let t2 = track("1010010001");
        assert_eq!(Subsequence::derive(&t2, 8, 4).to_string(), "0100");
    }

    #[test]
    fn derive_inverts_matching() {
        // Whatever we derive must match its own window.
        let tr = track("110100101101");
        for u in 0..tr.len() {
            for ls in 1..=(u + 1) {
                let a = Subsequence::derive(&tr, u, ls);
                assert!(a.matches_window(&tr, u), "u={u} ls={ls}");
            }
        }
    }

    #[test]
    fn window_out_of_range_is_no_match() {
        let a = sub("101");
        assert!(!a.matches_window(&track("11"), 1)); // window before t=0
        assert!(!a.matches_window(&track("101"), 5)); // u beyond track
    }

    #[test]
    fn primitive_roots() {
        assert_eq!(sub("0101").primitive_root(), sub("01"));
        assert_eq!(sub("00").primitive_root(), sub("0"));
        assert_eq!(sub("0110").primitive_root(), sub("0110"));
        assert!(sub("01").same_stream(&sub("010101")));
        assert!(!sub("01").same_stream(&sub("10")));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "01", "100", "11001"] {
            assert_eq!(sub(s).to_string(), s);
        }
        assert!("01x".parse::<Subsequence>().is_err());
        assert!("".parse::<Subsequence>().is_err());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn derive_rejects_early_window() {
        let _ = Subsequence::derive(&track("1010"), 1, 3);
    }
}
