//! The set of weights `S` (paper, Section 3).
//!
//! `S` accumulates subsequences derived from the deterministic test
//! sequence `T`. For a detection time `u` and a length `L_S`, the
//! subsequence added for input `i` is the unique `α` of length `L_S` with
//! `α(u' % L_S) = T_i(u')` for the window `u - L_S + 1 ..= u`; repeating
//! it reproduces `T_i` perfectly over that window.
//!
//! Duplicate subsequences are kept only once, but — following the paper —
//! subsequences that produce identical *streams* (`0` vs `00`) are kept as
//! distinct members of `S`, because they occupy different lengths and the
//! assignment-selection machinery is organized per length. Stream
//! deduplication happens later, in the hardware step.

use crate::subseq::Subsequence;
use std::collections::HashMap;
use wbist_sim::TestSequence;

/// The ordered set `S` of candidate weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightSet {
    subs: Vec<Subsequence>,
    index: HashMap<Subsequence, usize>,
}

impl WeightSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        WeightSet::default()
    }

    /// Builds the set of *all* subsequences of length 1 to `max_len` —
    /// the `S` the paper's Table 4 uses for its worked example.
    ///
    /// # Panics
    ///
    /// Panics if `max_len == 0` or `max_len > 20` (the set has `2^(L+1)-2`
    /// members; larger requests are almost certainly mistakes).
    pub fn all_up_to(max_len: usize) -> Self {
        assert!((1..=20).contains(&max_len), "max_len must be 1..=20");
        let mut s = WeightSet::new();
        for ls in 1..=max_len {
            for code in 0..(1u32 << ls) {
                // The paper's Table 4 orders each length block 0,1 / 00,10,
                // 01,11 / … — i.e. bit for the *earlier* time unit varies
                // slowest… inspecting the table: 00,10,01,11 means the
                // first position is the fastest-varying. Encode that order.
                let bits: Vec<bool> = (0..ls).map(|k| code >> k & 1 == 1).collect();
                s.insert(Subsequence::new(bits));
            }
        }
        s
    }

    /// Inserts a subsequence if not already present; returns its index in
    /// `S`.
    pub fn insert(&mut self, sub: Subsequence) -> usize {
        if let Some(&i) = self.index.get(&sub) {
            return i;
        }
        let i = self.subs.len();
        self.index.insert(sub.clone(), i);
        self.subs.push(sub);
        i
    }

    /// Extends `S` with the subsequences of length `ls` derived from every
    /// input track of `t`, for the window ending at detection time `u`
    /// (paper, Section 3). Returns the indices of the derived
    /// subsequences, one per input.
    ///
    /// # Panics
    ///
    /// Panics if `ls == 0`, `ls > u + 1`, or `u >= t.len()`.
    pub fn extend_for(&mut self, t: &TestSequence, u: usize, ls: usize) -> Vec<usize> {
        (0..t.num_inputs())
            .map(|i| {
                let track = t.input_track(i);
                self.insert(Subsequence::derive(&track, u, ls))
            })
            .collect()
    }

    /// Number of subsequences in `S`.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether `S` is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The subsequence with index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> &Subsequence {
        &self.subs[j]
    }

    /// The index of `sub` in `S`, if present.
    pub fn position(&self, sub: &Subsequence) -> Option<usize> {
        self.index.get(sub).copied()
    }

    /// Iterates over `(index, subsequence)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Subsequence)> {
        self.subs.iter().enumerate()
    }

    /// The largest subsequence length currently in `S` (0 when empty).
    pub fn max_len(&self) -> usize {
        self.subs.iter().map(Subsequence::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_up_to_matches_table4() {
        // Paper Table 4: j: 0..13 → 0,1,00,10,01,11,000,100,010,110,001,
        // 101,011,111.
        let s = WeightSet::all_up_to(3);
        let expect = [
            "0", "1", "00", "10", "01", "11", "000", "100", "010", "110", "001", "101", "011",
            "111",
        ];
        assert_eq!(s.len(), expect.len());
        for (j, text) in expect.iter().enumerate() {
            assert_eq!(s.get(j).to_string(), *text, "index {j}");
        }
    }

    #[test]
    fn insert_dedupes() {
        let mut s = WeightSet::new();
        let a = s.insert("01".parse().expect("valid"));
        let b = s.insert("01".parse().expect("valid"));
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
        // But 0 and 00 are distinct members (same stream, different length).
        s.insert("0".parse().expect("valid"));
        s.insert("00".parse().expect("valid"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn extend_for_derives_per_input() {
        // Paper §3 example: u = 8, L_S = 4 on the s27 sequence adds
        // 0110, 0000, 0100 (and 0110 again for input 3).
        let t = wbist_sim::TestSequence::parse_rows(&[
            "0111", "1001", "0111", "1001", "0100", "1011", "1001", "0000", "0000", "1011",
        ])
        .expect("valid rows");
        let mut s = WeightSet::new();
        let idx = s.extend_for(&t, 8, 4);
        assert_eq!(s.get(idx[0]).to_string(), "0110");
        assert_eq!(s.get(idx[1]).to_string(), "0000");
        assert_eq!(s.get(idx[2]).to_string(), "0100");
        assert_eq!(idx[3], idx[0], "inputs 0 and 3 share 0110");
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_len(), 4);
    }

    #[test]
    fn position_lookup() {
        let s = WeightSet::all_up_to(2);
        assert_eq!(s.position(&"01".parse().expect("valid")), Some(4));
        assert_eq!(s.position(&"000".parse().expect("valid")), None);
    }
}
