//! Hardware cost model for the synthesized test generator.
//!
//! Reports the figures a DFT engineer would ask about before adopting
//! the scheme: how many flip-flops, gates and literals the generator
//! costs, split into its architectural pieces (weight FSMs, counters,
//! multiplexers), plus the Table-6 FSM summary (`num`/`out` columns).

use crate::fsm::FsmBank;
use crate::generator::TestGenerator;

/// A cost breakdown of one synthesized test generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Number of weight FSMs (= distinct subsequence lengths; the
    /// Table-6 `num` column).
    pub num_fsms: usize,
    /// Total FSM outputs (= deduplicated subsequences; the Table-6
    /// `out` column).
    pub fsm_outputs: usize,
    /// State bits across all weight FSMs.
    pub fsm_state_bits: u32,
    /// Two-level literals of all FSM output functions.
    pub output_literals: usize,
    /// Two-level literals of all FSM next-state functions.
    pub next_state_literals: usize,
    /// Flip-flops in the whole generator (FSMs + phase + session
    /// counters).
    pub total_dffs: usize,
    /// Gates in the whole generator netlist.
    pub total_gates: usize,
    /// Gate-input literals in the whole generator netlist.
    pub total_literals: usize,
}

/// Computes the cost report for a synthesized generator.
pub fn generator_cost(gen: &TestGenerator) -> CostReport {
    let bank = &gen.bank;
    CostReport {
        num_fsms: bank.num_fsms(),
        fsm_outputs: bank.total_outputs(),
        fsm_state_bits: bank.total_state_bits(),
        output_literals: logic_literals(bank, true),
        next_state_literals: logic_literals(bank, false),
        total_dffs: gen.circuit.num_dffs(),
        total_gates: gen.circuit.num_gates(),
        total_literals: gen.circuit.literal_count(),
    }
}

impl CostReport {
    /// Records the report into `telemetry` as `hw.*` counters, so a
    /// traced pipeline run carries the generator's cost accounting
    /// alongside the simulation effort.
    pub fn record(&self, telemetry: &wbist_telemetry::Telemetry) {
        telemetry.add("hw.fsms", self.num_fsms as u64);
        telemetry.add("hw.fsm_outputs", self.fsm_outputs as u64);
        telemetry.add("hw.fsm_state_bits", self.fsm_state_bits as u64);
        telemetry.add("hw.output_literals", self.output_literals as u64);
        telemetry.add("hw.next_state_literals", self.next_state_literals as u64);
        telemetry.add("hw.dffs", self.total_dffs as u64);
        telemetry.add("hw.gates", self.total_gates as u64);
        telemetry.add("hw.literals", self.total_literals as u64);
    }
}

fn logic_literals(bank: &FsmBank, outputs: bool) -> usize {
    bank.fsms()
        .iter()
        .map(|f| {
            let sops = if outputs {
                f.output_logic()
            } else {
                f.next_state_logic()
            };
            sops.iter().map(|s| s.literals()).sum::<usize>()
        })
        .sum()
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "weight FSMs: {} ({} outputs, {} state bits)",
            self.num_fsms, self.fsm_outputs, self.fsm_state_bits
        )?;
        writeln!(
            f,
            "FSM logic: {} output literals, {} next-state literals",
            self.output_literals, self.next_state_literals
        )?;
        write!(
            f,
            "generator netlist: {} DFFs, {} gates, {} literals",
            self.total_dffs, self.total_gates, self.total_literals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::build_generator;
    use wbist_core::{SelectedAssignment, Subsequence, WeightAssignment};

    fn sel(subs: &[&str]) -> SelectedAssignment {
        SelectedAssignment {
            assignment: WeightAssignment::new(
                subs.iter()
                    .map(|s| s.parse::<Subsequence>().expect("valid"))
                    .collect(),
            ),
            detection_time: 0,
            rank: 0,
            newly_detected: 0,
        }
    }

    #[test]
    fn cost_report_is_consistent() {
        let omega = vec![
            sel(&["01", "0", "100", "1"]),
            sel(&["100", "00", "01", "100"]),
        ];
        let gen = build_generator(&omega, 16).expect("synthesis succeeds");
        let cost = generator_cost(&gen);
        // Subsequences after stream dedup: 01, 0, 100, 1 (00 ≡ 0).
        assert_eq!(cost.fsm_outputs, 4);
        assert_eq!(cost.num_fsms, 3, "lengths 1, 2, 3");
        // 0 state bits (len 1) + 1 (len 2) + 2 (len 3).
        assert_eq!(cost.fsm_state_bits, 3);
        assert!(cost.total_dffs >= 3, "FSM bits + counters");
        assert!(cost.total_gates > 0);
        assert!(cost.total_literals >= cost.total_gates);
        let text = cost.to_string();
        assert!(text.contains("weight FSMs: 3"));
    }

    #[test]
    fn record_mirrors_the_report() {
        let omega = vec![sel(&["01", "0"])];
        let gen = build_generator(&omega, 16).expect("synthesis succeeds");
        let cost = generator_cost(&gen);
        let tel = wbist_telemetry::Telemetry::enabled();
        cost.record(&tel);
        assert_eq!(tel.counter("hw.fsms"), cost.num_fsms as u64);
        assert_eq!(tel.counter("hw.gates"), cost.total_gates as u64);
        assert_eq!(tel.counter("hw.literals"), cost.total_literals as u64);
    }
}
