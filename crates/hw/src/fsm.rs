//! Weight FSMs (paper, Section 3 and the `FSMs` columns of Table 6).
//!
//! A weight represented by a subsequence `α` of length `L_S` is produced
//! by an autonomous FSM: a modulo-`L_S` counter over `⌈log2 L_S⌉` state
//! bits plus one output function per subsequence. All subsequences of the
//! same length share one FSM (the counter is common; only the output
//! logic differs), so the number of FSMs equals the number of distinct
//! subsequence lengths and the number of FSM outputs equals the number of
//! distinct subsequences.
//!
//! Before grouping, subsequences that produce identical streams when
//! repeated (`01` vs `0101`) are replaced by their primitive roots and
//! deduplicated, as the paper prescribes for the implementation step.

use crate::qm::{minimize, Sop};
use wbist_core::{SelectedAssignment, Subsequence};

/// One FSM producing every subsequence of one length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightFsm {
    /// The shared period `L_S` of this FSM's outputs.
    pub length: usize,
    /// The subsequences produced, one output each.
    pub outputs: Vec<Subsequence>,
}

impl WeightFsm {
    /// Number of state variables: `⌈log2 L_S⌉` (0 for `L_S = 1`).
    pub fn state_bits(&self) -> u32 {
        usize::BITS - (self.length - 1).leading_zeros()
    }

    /// Number of reachable states (= `L_S`).
    pub fn num_states(&self) -> usize {
        self.length
    }

    /// The transition/output table, one row per reachable state in visit
    /// order: `(state, next_state, output bits)` — the shape of the
    /// paper's Table 3.
    pub fn table(&self) -> Vec<(usize, usize, Vec<bool>)> {
        (0..self.length)
            .map(|s| {
                let next = (s + 1) % self.length;
                let outs = self.outputs.iter().map(|a| a.bits()[s]).collect();
                (s, next, outs)
            })
            .collect()
    }

    /// Minimized output functions over the state bits, with unreachable
    /// state codes as don't-cares (the paper's observation (2)).
    pub fn output_logic(&self) -> Vec<Sop> {
        let bits = self.state_bits().max(1);
        let dc: Vec<u32> = (self.length as u32..(1u32 << bits)).collect();
        self.outputs
            .iter()
            .map(|a| {
                let on: Vec<u32> = (0..self.length as u32)
                    .filter(|&s| a.bits()[s as usize])
                    .collect();
                minimize(bits, &on, &dc)
            })
            .collect()
    }

    /// Minimized next-state functions (one per state bit) of the
    /// modulo-`L_S` counter, unreachable codes as don't-cares.
    pub fn next_state_logic(&self) -> Vec<Sop> {
        let bits = self.state_bits();
        if bits == 0 {
            return Vec::new();
        }
        let dc: Vec<u32> = (self.length as u32..(1u32 << bits)).collect();
        (0..bits)
            .map(|bit| {
                let on: Vec<u32> = (0..self.length as u32)
                    .filter(|&s| {
                        let next = (s + 1) % self.length as u32;
                        next >> bit & 1 == 1
                    })
                    .collect();
                minimize(bits, &on, &dc)
            })
            .collect()
    }
}

/// The bank of weight FSMs implementing a set of subsequences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsmBank {
    fsms: Vec<WeightFsm>,
}

impl FsmBank {
    /// Builds the bank for an explicit set of subsequences: primitive-root
    /// deduplication, then one FSM per remaining length (ascending).
    pub fn from_subsequences(subs: &[Subsequence]) -> Self {
        let mut roots: Vec<Subsequence> = Vec::new();
        for s in subs {
            let r = s.primitive_root();
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        let mut lengths: Vec<usize> = roots.iter().map(Subsequence::len).collect();
        lengths.sort_unstable();
        lengths.dedup();
        let fsms = lengths
            .into_iter()
            .map(|len| WeightFsm {
                length: len,
                outputs: roots.iter().filter(|r| r.len() == len).cloned().collect(),
            })
            .collect();
        FsmBank { fsms }
    }

    /// Builds the bank for the subsequences used by a set of selected
    /// weight assignments (the hardware for `Ω`).
    pub fn from_assignments(omega: &[SelectedAssignment]) -> Self {
        let subs: Vec<Subsequence> = omega
            .iter()
            .flat_map(|sel| sel.assignment.subsequences().iter().cloned())
            .collect();
        Self::from_subsequences(&subs)
    }

    /// The FSMs, ordered by increasing length.
    pub fn fsms(&self) -> &[WeightFsm] {
        &self.fsms
    }

    /// Number of FSMs (the Table-6 `num` column).
    pub fn num_fsms(&self) -> usize {
        self.fsms.len()
    }

    /// Total outputs across all FSMs (the Table-6 `out` column).
    pub fn total_outputs(&self) -> usize {
        self.fsms.iter().map(|f| f.outputs.len()).sum()
    }

    /// Total state bits across all FSMs.
    pub fn total_state_bits(&self) -> u32 {
        self.fsms.iter().map(WeightFsm::state_bits).sum()
    }

    /// Looks up which FSM output produces the stream of `sub` (after
    /// primitive-root reduction). Returns `(fsm index, output index)`.
    pub fn locate(&self, sub: &Subsequence) -> Option<(usize, usize)> {
        let root = sub.primitive_root();
        for (fi, fsm) in self.fsms.iter().enumerate() {
            if fsm.length == root.len() {
                if let Some(oi) = fsm.outputs.iter().position(|o| *o == root) {
                    return Some((fi, oi));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(text: &str) -> Subsequence {
        text.parse().expect("valid")
    }

    #[test]
    fn table3_fsm() {
        // Paper Table 3: one FSM producing 00010, 01011 and 11001.
        let fsm = WeightFsm {
            length: 5,
            outputs: vec![sub("00010"), sub("01011"), sub("11001")],
        };
        assert_eq!(fsm.state_bits(), 3);
        assert_eq!(fsm.num_states(), 5);
        let table = fsm.table();
        // Row A (state 0): next B, outputs 0,0,1.
        assert_eq!(table[0], (0, 1, vec![false, false, true]));
        // Row D (state 3): next E, outputs 1,1,0.
        assert_eq!(table[3], (3, 4, vec![true, true, false]));
        // Row E (state 4): wraps to A, outputs 0,1,1.
        assert_eq!(table[4], (4, 0, vec![false, true, true]));
    }

    #[test]
    fn output_logic_matches_table() {
        let fsm = WeightFsm {
            length: 5,
            outputs: vec![sub("00010"), sub("01011"), sub("11001")],
        };
        let logic = fsm.output_logic();
        assert_eq!(logic.len(), 3);
        for (oi, sop) in logic.iter().enumerate() {
            for s in 0..5u32 {
                assert_eq!(
                    sop.eval(s),
                    fsm.outputs[oi].bits()[s as usize],
                    "output {oi} state {s}"
                );
            }
        }
    }

    #[test]
    fn next_state_logic_counts_mod_l() {
        let fsm = WeightFsm {
            length: 5,
            outputs: vec![sub("00010")],
        };
        let ns = fsm.next_state_logic();
        assert_eq!(ns.len(), 3);
        for s in 0..5u32 {
            let expect = (s + 1) % 5;
            for (bit, n) in ns.iter().enumerate() {
                assert_eq!(n.eval(s), expect >> bit & 1 == 1, "state {s} bit {bit}");
            }
        }
    }

    #[test]
    fn bank_dedupes_identical_streams() {
        // 01 and 0101 produce the same stream; 0 and 00 likewise.
        let bank =
            FsmBank::from_subsequences(&[sub("01"), sub("0101"), sub("0"), sub("00"), sub("110")]);
        assert_eq!(bank.total_outputs(), 3, "01, 0, 110 remain");
        assert_eq!(bank.num_fsms(), 3, "lengths 1, 2, 3");
    }

    #[test]
    fn locate_finds_roots() {
        let bank = FsmBank::from_subsequences(&[sub("01"), sub("110")]);
        let (f, o) = bank.locate(&sub("0101")).expect("stream exists");
        assert_eq!(bank.fsms()[f].outputs[o], sub("01"));
        assert!(bank.locate(&sub("111")).is_none());
    }

    #[test]
    fn length_one_fsm_has_no_state() {
        let fsm = WeightFsm {
            length: 1,
            outputs: vec![sub("1"), sub("0")],
        };
        assert_eq!(fsm.state_bits(), 0);
        assert!(fsm.next_state_logic().is_empty());
        let logic = fsm.output_logic();
        assert_eq!(logic[0], Sop::One);
        assert_eq!(logic[1], Sop::Zero);
    }

    #[test]
    fn state_bits_formula() {
        for (len, bits) in [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)] {
            let fsm = WeightFsm {
                length: len,
                outputs: vec![Subsequence::new(vec![true; len])],
            };
            assert_eq!(fsm.state_bits(), bits, "len {len}");
        }
    }
}
