//! Structural synthesis of the complete test generator (paper, Figure 1).
//!
//! The generated hardware is itself a [`Circuit`] in the workspace's own
//! netlist IR, which makes it simulatable by `wbist-sim` — the tests run
//! the synthesized netlist and compare its output streams bit-for-bit
//! against [`WeightAssignment::generate`], a hardware-in-the-loop
//! self-check.
//!
//! Structure (one clock domain, one synchronous active-high `rst` input):
//!
//! * a **phase counter** counting `0 .. L_G-1` (one weighted sequence per
//!   weight assignment);
//! * a **session counter** of `⌈log2 |Ω|⌉` bits advancing when the phase
//!   counter wraps — the `s_1 s_2` control inputs of Figure 1;
//! * one **weight FSM** per subsequence length (shared output logic per
//!   subsequence, modulo-`L_S` counter, reset at every session boundary so
//!   each weighted sequence starts at `α(0)`);
//! * an **output multiplexer** per circuit input selecting the FSM output
//!   of the subsequence the current assignment gives that input.
//!
//! [`WeightAssignment::generate`]: wbist_core::WeightAssignment::generate

use crate::fsm::FsmBank;
use crate::qm::Sop;
use wbist_core::SelectedAssignment;
use wbist_netlist::{Circuit, GateKind, NetId, NetlistError};

/// A synthesized test generator.
#[derive(Debug, Clone)]
pub struct TestGenerator {
    /// The structural netlist: inputs `rst`; outputs `OUT<i>`, one per
    /// circuit-under-test input.
    pub circuit: Circuit,
    /// The weight FSM bank implementing the subsequences.
    pub bank: FsmBank,
    /// Number of weight assignments the session counter walks through.
    pub num_assignments: usize,
    /// Cycles per assignment (`L_G`).
    pub sequence_length: usize,
}

/// Builds the Figure-1 test generator for the assignments of `omega`,
/// applying `sequence_length` cycles per assignment.
///
/// # Errors
///
/// Returns a [`NetlistError`] if synthesis produces an invalid netlist
/// (cannot happen for well-formed inputs; surfaced rather than unwrapped
/// so callers keep a typed error path).
///
/// # Panics
///
/// Panics if `omega` is empty or `sequence_length == 0`.
pub fn build_generator(
    omega: &[SelectedAssignment],
    sequence_length: usize,
) -> Result<TestGenerator, NetlistError> {
    assert!(!omega.is_empty(), "need at least one weight assignment");
    assert!(sequence_length > 0, "L_G must be positive");
    let bank = FsmBank::from_assignments(omega);
    let num_inputs = omega[0].assignment.num_inputs();

    let mut c = Circuit::new("weight_test_generator");
    let rst = c.add_input("rst");
    let nrst = c.add_gate(GateKind::Not, "nrst", &[rst])?;

    let mut b = Builder {
        c: &mut c,
        nrst,
        tmp: 0,
    };

    // Phase counter: 0 .. L_G - 1.
    let (phase_bits, phase_wrap) = b.modulo_counter("ph", sequence_length, None)?;
    let _ = phase_bits;

    // Session counter: advances on phase wrap, wraps freely.
    let sess_width = usize::BITS - (omega.len().max(2) - 1).leading_zeros();
    let session_bits = b.binary_counter("se", sess_width as usize, phase_wrap)?;

    // Weight FSMs: reset on session boundary so every T_G starts at α(0).
    // When L_G == 1 the phase wraps every cycle, i.e. the FSMs stay in
    // state 0 — expressed with a constant-1 clear.
    // fsm_outputs[fi][oi] = net carrying that subsequence's stream.
    let fsm_clear = match phase_wrap {
        Some(w) => Some(w),
        None => Some(b.c.add_const("const1", true)?),
    };
    let mut fsm_outputs: Vec<Vec<NetId>> = Vec::new();
    for (fi, fsm) in bank.fsms().iter().enumerate() {
        let clear = fsm_clear;
        let (state, _) = b.modulo_counter(&format!("f{fi}"), fsm.length, clear)?;
        let logic = fsm.output_logic();
        let mut outs = Vec::new();
        for (oi, sop) in logic.iter().enumerate() {
            outs.push(b.sop(&format!("f{fi}z{oi}"), sop, &state)?);
        }
        fsm_outputs.push(outs);
    }

    // Session decoders: one per assignment.
    let decodes: Vec<NetId> = (0..omega.len())
        .map(|a| b.eq_const(&format!("dec{a}"), &session_bits, a))
        .collect::<Result<_, _>>()?;

    // Per-input multiplexers.
    for i in 0..num_inputs {
        let mut terms = Vec::new();
        for (a, sel) in omega.iter().enumerate() {
            let sub = &sel.assignment.subsequences()[i];
            let (fi, oi) = bank
                .locate(sub)
                .expect("bank was built from these assignments");
            let term = b.c.add_gate(
                GateKind::And,
                &format!("mux{i}a{a}"),
                &[decodes[a], fsm_outputs[fi][oi]],
            )?;
            terms.push(term);
        }
        let out = if terms.len() == 1 {
            b.c.add_gate(GateKind::Buf, &format!("OUT{i}"), &terms)?
        } else {
            b.c.add_gate(GateKind::Or, &format!("OUT{i}"), &terms)?
        };
        b.c.mark_output(out);
    }

    let circuit = c.levelize()?;
    Ok(TestGenerator {
        circuit,
        bank,
        num_assignments: omega.len(),
        sequence_length,
    })
}

/// A synthesized *hybrid* test generator: pseudo-random LFSR sessions
/// followed by weighted-sequence sessions (the paper's future-work
/// extension, implemented in `wbist-core`'s
/// [`hybrid`](wbist_core::hybrid) module).
#[derive(Debug, Clone)]
pub struct HybridGenerator {
    /// The structural netlist: input `rst`; outputs `OUT<i>`.
    pub circuit: Circuit,
    /// The weight FSM bank for the weighted sessions.
    pub bank: FsmBank,
    /// Leading pure-random sessions.
    pub num_random_sessions: usize,
    /// Weighted sessions following the random phase.
    pub num_assignments: usize,
    /// Cycles per session (`L_G`).
    pub sequence_length: usize,
    /// LFSR stages.
    pub lfsr_width: u32,
}

/// Builds the hybrid Figure-1 generator: `random_sessions` LFSR-driven
/// sessions, then one session per assignment of `omega`. The on-chip
/// LFSR resets to state `…0001` and input `i` taps stage `i % width`, so
/// the random stimulus matches
/// [`Lfsr::parallel_sequence`](wbist_atpg::Lfsr::parallel_sequence) with
/// seed 1 bit-for-bit.
///
/// # Errors
///
/// Returns a [`NetlistError`] if synthesis produces an invalid netlist
/// (cannot happen for well-formed inputs).
///
/// # Panics
///
/// Panics if `omega` is empty, `sequence_length == 0`, or `lfsr_width`
/// is outside `2..=32`.
pub fn build_hybrid_generator(
    omega: &[SelectedAssignment],
    sequence_length: usize,
    random_sessions: usize,
    lfsr_width: u32,
) -> Result<HybridGenerator, NetlistError> {
    assert!(!omega.is_empty(), "need at least one weight assignment");
    assert!(sequence_length > 0, "L_G must be positive");
    let bank = FsmBank::from_assignments(omega);
    let num_inputs = omega[0].assignment.num_inputs();
    let total_sessions = random_sessions + omega.len();

    let mut c = Circuit::new("hybrid_test_generator");
    let rst = c.add_input("rst");
    let nrst = c.add_gate(GateKind::Not, "nrst", &[rst])?;
    let mut b = Builder {
        c: &mut c,
        nrst,
        tmp: 0,
    };

    let (_, phase_wrap) = b.modulo_counter("ph", sequence_length, None)?;
    let sess_width = usize::BITS - (total_sessions.max(2) - 1).leading_zeros();
    let session_bits = b.binary_counter("se", sess_width as usize, phase_wrap)?;
    let fsm_clear = match phase_wrap {
        Some(w) => Some(w),
        None => Some(b.c.add_const("const1", true)?),
    };

    // The shared LFSR (free-running; reset to state 1).
    let lfsr_bits = b.lfsr("lfsr", lfsr_width, rst)?;

    // Weight FSMs.
    let mut fsm_outputs: Vec<Vec<NetId>> = Vec::new();
    for (fi, fsm) in bank.fsms().iter().enumerate() {
        let (state, _) = b.modulo_counter(&format!("f{fi}"), fsm.length, fsm_clear)?;
        let logic = fsm.output_logic();
        let mut outs = Vec::new();
        for (oi, sop) in logic.iter().enumerate() {
            outs.push(b.sop(&format!("f{fi}z{oi}"), sop, &state)?);
        }
        fsm_outputs.push(outs);
    }

    // Session decoders for every session (random and weighted).
    let decodes: Vec<NetId> = (0..total_sessions)
        .map(|s| b.eq_const(&format!("dec{s}"), &session_bits, s))
        .collect::<Result<_, _>>()?;
    // One "random phase" strobe: OR of the random-session decodes.
    let in_random = if random_sessions == 0 {
        None
    } else if random_sessions == 1 {
        Some(decodes[0])
    } else {
        Some(b.c.add_gate(GateKind::Or, "in_random", &decodes[..random_sessions])?)
    };

    // Per-input multiplexers: the random phase taps the LFSR, weighted
    // sessions tap the FSM outputs.
    for i in 0..num_inputs {
        let mut terms = Vec::new();
        if let Some(ir) = in_random {
            let tap = lfsr_bits[i % lfsr_bits.len()];
            terms.push(b.c.add_gate(GateKind::And, &format!("mux{i}r"), &[ir, tap])?);
        }
        for (a, sel) in omega.iter().enumerate() {
            let sub = &sel.assignment.subsequences()[i];
            let (fi, oi) = bank
                .locate(sub)
                .expect("bank was built from these assignments");
            terms.push(b.c.add_gate(
                GateKind::And,
                &format!("mux{i}a{a}"),
                &[decodes[random_sessions + a], fsm_outputs[fi][oi]],
            )?);
        }
        let out = if terms.len() == 1 {
            b.c.add_gate(GateKind::Buf, &format!("OUT{i}"), &terms)?
        } else {
            b.c.add_gate(GateKind::Or, &format!("OUT{i}"), &terms)?
        };
        b.c.mark_output(out);
    }

    let circuit = c.levelize()?;
    Ok(HybridGenerator {
        circuit,
        bank,
        num_random_sessions: random_sessions,
        num_assignments: omega.len(),
        sequence_length,
        lfsr_width,
    })
}

/// Small structural-synthesis helper bound to one circuit.
pub(crate) struct Builder<'a> {
    pub(crate) c: &'a mut Circuit,
    pub(crate) nrst: NetId,
    pub(crate) tmp: usize,
}

impl Builder<'_> {
    pub(crate) fn fresh(&mut self, prefix: &str) -> String {
        self.tmp += 1;
        format!("{prefix}_t{}", self.tmp)
    }

    /// Adds a gate with a fresh generated name.
    pub(crate) fn gate(
        &mut self,
        kind: GateKind,
        prefix: &str,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = self.fresh(prefix);
        self.c.add_gate(kind, &name, inputs)
    }

    /// A modulo-`m` counter with synchronous reset (`rst` and optional
    /// `clear`). Returns the state-bit nets (LSB first; empty when
    /// `m == 1`) and the wrap signal (state == m-1; constant 1 when
    /// `m == 1`).
    pub(crate) fn modulo_counter(
        &mut self,
        prefix: &str,
        m: usize,
        clear: Option<NetId>,
    ) -> Result<(Vec<NetId>, Option<NetId>), NetlistError> {
        if m == 1 {
            // Stateless: wraps every cycle.
            return Ok((Vec::new(), None));
        }
        let width = (usize::BITS - (m - 1).leading_zeros()) as usize;
        let bits: Vec<NetId> = (0..width)
            .map(|k| self.c.add_dff(&format!("{prefix}_q{k}"), None))
            .collect::<Result<_, _>>()?;
        let wrap = self.eq_const(&format!("{prefix}_wrap"), &bits, m - 1)?;
        // Increment logic with synchronous clears.
        let mut carry: Option<NetId> = None; // None = constant 1
        for (k, &bit) in bits.iter().enumerate() {
            let inc = match carry {
                None => self.gate(GateKind::Not, prefix, &[bit])?,
                Some(ca) => self.gate(GateKind::Xor, prefix, &[bit, ca])?,
            };
            // next = nrst & !wrap & (!clear) & inc
            let mut ands = vec![self.nrst, inc];
            let nwrap = self.gate(GateKind::Not, prefix, &[wrap])?;
            ands.push(nwrap);
            if let Some(cl) = clear {
                let ncl = self.gate(GateKind::Not, prefix, &[cl])?;
                ands.push(ncl);
            }
            let next = self.gate(GateKind::And, prefix, &ands)?;
            self.c.connect_dff_data(bit, next)?;
            // Carry chain: AND of the bits below the next position.
            carry = Some(match carry {
                None => bit,
                Some(ca) => self.gate(GateKind::And, prefix, &[ca, bit])?,
            });
            let _ = k;
        }
        Ok((bits, Some(wrap)))
    }

    /// A free-running binary counter that increments only when `enable`
    /// is high (constantly, when `enable` is `None`). Returns the state
    /// bits (LSB first).
    pub(crate) fn binary_counter(
        &mut self,
        prefix: &str,
        width: usize,
        enable: Option<NetId>,
    ) -> Result<Vec<NetId>, NetlistError> {
        let bits: Vec<NetId> = (0..width)
            .map(|k| self.c.add_dff(&format!("{prefix}_q{k}"), None))
            .collect::<Result<_, _>>()?;
        let mut carry: Option<NetId> = enable;
        for &bit in &bits {
            let inc = match carry {
                None => self.gate(GateKind::Not, prefix, &[bit])?,
                Some(ca) => self.gate(GateKind::Xor, prefix, &[bit, ca])?,
            };
            let next = self.gate(GateKind::And, prefix, &[self.nrst, inc])?;
            self.c.connect_dff_data(bit, next)?;
            carry = Some(match carry {
                None => bit,
                Some(ca) => self.gate(GateKind::And, prefix, &[ca, bit])?,
            });
        }
        Ok(bits)
    }

    /// A comparator: output is 1 when the counter bits equal `value`.
    pub(crate) fn eq_const(
        &mut self,
        name: &str,
        bits: &[NetId],
        value: usize,
    ) -> Result<NetId, NetlistError> {
        let mut lits = Vec::with_capacity(bits.len());
        for (k, &bit) in bits.iter().enumerate() {
            if value >> k & 1 == 1 {
                lits.push(bit);
            } else {
                lits.push(self.gate(GateKind::Not, name, &[bit])?);
            }
        }
        if lits.len() == 1 {
            self.c.add_gate(GateKind::Buf, name, &lits)
        } else {
            self.c.add_gate(GateKind::And, name, &lits)
        }
    }

    /// A Fibonacci LFSR with `width` stages: stage `k` shifts from stage
    /// `k+1`; the top stage takes the feedback parity of the tapped
    /// stages (taps shared with `wbist_atpg::tap_mask`). `rst` forces the
    /// register to state `…0001`, matching the software model seeded
    /// with 1. Returns the stage nets (stage 0 first).
    pub(crate) fn lfsr(
        &mut self,
        prefix: &str,
        width: u32,
        rst: NetId,
    ) -> Result<Vec<NetId>, NetlistError> {
        let taps = wbist_atpg::tap_mask(width);
        let stages: Vec<NetId> = (0..width)
            .map(|k| self.c.add_dff(&format!("{prefix}_q{k}"), None))
            .collect::<Result<_, _>>()?;
        // Feedback parity of the tapped stages.
        let mut fb: Option<NetId> = None;
        for (k, &st) in stages.iter().enumerate() {
            if taps >> k & 1 == 1 {
                fb = Some(match fb {
                    None => st,
                    Some(acc) => self.gate(GateKind::Xor, prefix, &[acc, st])?,
                });
            }
        }
        let fb = fb.expect("maximal-length taps are non-empty");
        for (k, &st) in stages.iter().enumerate() {
            let from = if (k as u32) < width - 1 {
                stages[k + 1]
            } else {
                fb
            };
            let shifted = self.gate(GateKind::And, prefix, &[self.nrst, from])?;
            let next = if k == 0 {
                // Reset forces a 1 into stage 0 so the register never
                // locks up in the all-zero state.
                self.gate(GateKind::Or, prefix, &[rst, shifted])?
            } else {
                shifted
            };
            self.c.connect_dff_data(st, next)?;
        }
        Ok(stages)
    }

    /// Materializes a minimized SOP over `vars` (LSB-first state bits).
    pub(crate) fn sop(
        &mut self,
        name: &str,
        sop: &Sop,
        vars: &[NetId],
    ) -> Result<NetId, NetlistError> {
        match sop {
            Sop::Zero => {
                // NOR(x, NOT x) would work, but a constant is cleaner.
                self.c.add_const(name, false)
            }
            Sop::One => self.c.add_const(name, true),
            Sop::Terms(terms) => {
                let mut term_nets = Vec::with_capacity(terms.len());
                for t in terms {
                    let mut lits = Vec::new();
                    for (k, &var) in vars.iter().enumerate() {
                        if t.mask >> k & 1 == 0 {
                            continue;
                        }
                        if t.value >> k & 1 == 1 {
                            lits.push(var);
                        } else {
                            lits.push(self.gate(GateKind::Not, name, &[var])?);
                        }
                    }
                    let net = if lits.len() == 1 {
                        lits[0]
                    } else {
                        self.gate(GateKind::And, name, &lits)?
                    };
                    term_nets.push(net);
                }
                if term_nets.len() == 1 {
                    self.c.add_gate(GateKind::Buf, name, &term_nets)
                } else {
                    self.c.add_gate(GateKind::Or, name, &term_nets)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_core::{Subsequence, WeightAssignment};
    use wbist_sim::{Logic3, LogicSim, TestSequence};

    fn sel(subs: &[&str]) -> SelectedAssignment {
        SelectedAssignment {
            assignment: WeightAssignment::new(
                subs.iter()
                    .map(|s| s.parse::<Subsequence>().expect("valid"))
                    .collect(),
            ),
            detection_time: 0,
            rank: 0,
            newly_detected: 0,
        }
    }

    /// Simulates the generator netlist and returns the output rows
    /// produced after reset (cycle 1 onward).
    fn run(gen: &TestGenerator, cycles: usize) -> Vec<Vec<Logic3>> {
        let mut rows = vec![vec![true]]; // rst = 1
        rows.extend(std::iter::repeat_n(vec![false], cycles));
        let seq = TestSequence::from_rows(rows).expect("rectangular");
        let outs = LogicSim::new(&gen.circuit)
            .outputs(&seq)
            .expect("width matches");
        outs[1..].to_vec()
    }

    #[test]
    fn single_assignment_streams_match_generate() {
        let omega = vec![sel(&["01", "0", "100", "1"])];
        let l_g = 12;
        let gen = build_generator(&omega, l_g).expect("synthesis succeeds");
        let expect = omega[0].assignment.generate(l_g);
        let got = run(&gen, l_g);
        for (u, row) in got.iter().enumerate() {
            for (i, &g) in row.iter().enumerate().take(4) {
                assert_eq!(g, Logic3::from(expect.value(u, i)), "cycle {u} output {i}");
            }
        }
    }

    #[test]
    fn multiple_assignments_switch_at_session_boundary() {
        let omega = vec![sel(&["01", "1"]), sel(&["100", "0"]), sel(&["1", "110"])];
        let l_g = 7; // deliberately not a multiple of any subsequence length
        let gen = build_generator(&omega, l_g).expect("synthesis succeeds");
        let got = run(&gen, 3 * l_g);
        for (a, sel) in omega.iter().enumerate() {
            let expect = sel.assignment.generate(l_g);
            for u in 0..l_g {
                for (i, &g) in got[a * l_g + u].iter().enumerate().take(2) {
                    assert_eq!(
                        g,
                        Logic3::from(expect.value(u, i)),
                        "assignment {a} cycle {u} output {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn generator_is_a_valid_circuit() {
        let omega = vec![sel(&["01", "0"]), sel(&["11", "10"])];
        let gen = build_generator(&omega, 4).expect("synthesis succeeds");
        assert!(gen.circuit.is_levelized());
        assert_eq!(gen.circuit.num_outputs(), 2);
        assert_eq!(gen.num_assignments, 2);
    }

    #[test]
    fn shared_fsm_outputs_are_reused() {
        // Both assignments use "01": the bank holds it once.
        let omega = vec![sel(&["01", "0"]), sel(&["01", "1"])];
        let gen = build_generator(&omega, 4).expect("synthesis succeeds");
        assert_eq!(gen.bank.total_outputs(), 3, "01, 0, 1");
        assert_eq!(gen.bank.num_fsms(), 2, "lengths 1 and 2");
    }

    #[test]
    fn hybrid_random_phase_matches_software_lfsr() {
        let omega = vec![sel(&["01", "0", "100", "1"])];
        let l_g = 10;
        let width = 8u32;
        let gen = build_hybrid_generator(&omega, l_g, 2, width).expect("synthesis succeeds");
        let got = run_hybrid(&gen, 2 * l_g);
        let mut soft = wbist_atpg::Lfsr::new(width, 1);
        let expect = soft.parallel_sequence(4, 2 * l_g);
        for (u, row) in got.iter().enumerate() {
            for (i, &g) in row.iter().enumerate().take(4) {
                assert_eq!(
                    g,
                    Logic3::from(expect.value(u, i)),
                    "random cycle {u} input {i}"
                );
            }
        }
    }

    #[test]
    fn hybrid_weighted_phase_matches_generate() {
        let omega = vec![sel(&["01", "0", "100", "1"]), sel(&["1", "10", "0", "110"])];
        let l_g = 9;
        let gen = build_hybrid_generator(&omega, l_g, 3, 8).expect("synthesis succeeds");
        let got = run_hybrid(&gen, (3 + 2) * l_g);
        for (a, sel) in omega.iter().enumerate() {
            let expect = sel.assignment.generate(l_g);
            for u in 0..l_g {
                for (i, &g) in got[(3 + a) * l_g + u].iter().enumerate().take(4) {
                    assert_eq!(
                        g,
                        Logic3::from(expect.value(u, i)),
                        "assignment {a} cycle {u} input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_with_zero_random_sessions_equals_plain() {
        let omega = vec![sel(&["01", "1"]), sel(&["100", "0"])];
        let l_g = 6;
        let hybrid = build_hybrid_generator(&omega, l_g, 0, 8).expect("synthesis succeeds");
        let plain = build_generator(&omega, l_g).expect("synthesis succeeds");
        let a = run_hybrid(&hybrid, 2 * l_g);
        let b = run(&plain, 2 * l_g);
        assert_eq!(a, b);
    }

    /// Simulates the hybrid generator netlist post-reset.
    fn run_hybrid(gen: &HybridGenerator, cycles: usize) -> Vec<Vec<Logic3>> {
        let mut rows = vec![vec![true]];
        rows.extend(std::iter::repeat_n(vec![false], cycles));
        let seq = TestSequence::from_rows(rows).expect("rectangular");
        let outs = LogicSim::new(&gen.circuit)
            .outputs(&seq)
            .expect("width matches");
        outs[1..].to_vec()
    }

    #[test]
    fn l_g_one_works() {
        let omega = vec![sel(&["1"]), sel(&["0"])];
        let gen = build_generator(&omega, 1).expect("synthesis succeeds");
        let got = run(&gen, 2);
        assert_eq!(got[0][0], Logic3::One);
        assert_eq!(got[1][0], Logic3::Zero);
    }
}
