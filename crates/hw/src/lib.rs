//! BIST hardware generation for the weighted test-sequence scheme.
//!
//! Turns the output of `wbist-core` (a set of selected weight
//! assignments `Ω`) into hardware:
//!
//! * [`fsm`] — groups the subsequences into weight FSMs (one per length,
//!   shared modulo counter, one output per subsequence) after
//!   primitive-root deduplication — the paper's Section 3 and the
//!   `FSMs` columns of its Table 6;
//! * [`qm`] — an exact two-level minimizer (Quine–McCluskey + greedy
//!   cover) used for the FSM output and next-state functions, exploiting
//!   unreachable states as don't-cares;
//! * [`generator`] — synthesizes the complete Figure-1 test generator
//!   (phase counter, session counter, FSMs, per-input multiplexers) as a
//!   `wbist-netlist` [`Circuit`](wbist_netlist::Circuit), simulatable by
//!   `wbist-sim` for hardware-in-the-loop validation;
//! * [`verilog`] — structural Verilog emission for any circuit,
//!   including the synthesized generator;
//! * [`cost`] — flip-flop / gate / literal cost reporting.
//!
//! # Example
//!
//! ```
//! use wbist_core::{SelectedAssignment, Subsequence, WeightAssignment};
//! use wbist_hw::{build_generator, generator_cost, to_verilog};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let assignment = WeightAssignment::new(vec![
//!     "01".parse::<Subsequence>()?,
//!     "0".parse::<Subsequence>()?,
//!     "100".parse::<Subsequence>()?,
//!     "1".parse::<Subsequence>()?,
//! ]);
//! let omega = vec![SelectedAssignment {
//!     assignment,
//!     detection_time: 9,
//!     rank: 0,
//!     newly_detected: 9,
//! }];
//! let gen = build_generator(&omega, 12)?;
//! let verilog = to_verilog(&gen.circuit);
//! assert!(verilog.contains("module weight_test_generator"));
//! println!("{}", generator_cost(&gen));
//! # Ok(())
//! # }
//! ```

pub mod cost;
pub mod fsm;
pub mod generator;
pub mod qm;
pub mod selftest;
pub mod verilog;

pub use cost::{generator_cost, CostReport};
pub use fsm::{FsmBank, WeightFsm};
pub use generator::{build_generator, build_hybrid_generator, HybridGenerator, TestGenerator};
pub use qm::{minimize, Implicant, Sop};
pub use selftest::{build_self_test, SelfTestDesign};
pub use verilog::to_verilog;
