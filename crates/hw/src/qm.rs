//! Two-level logic minimization (Quine–McCluskey with a greedy cover).
//!
//! Used to synthesize the output functions of the weight FSMs: each
//! output is a function of the FSM state bits, with the unreachable
//! states (indices ≥ `L_S` within the `2^⌈log2 L_S⌉` code space) as
//! don't-cares — exactly the structure the paper's Section 3 points out.
//!
//! The implementation is exact prime-implicant generation followed by an
//! essential-prime extraction and a greedy cover of the remainder; for
//! the FSM sizes that occur here (≤ 8 state bits) this is instantaneous
//! and the covers are minimal or near-minimal.

/// A product term (cube) over `n` variables: variable `i` participates
/// when bit `i` of `mask` is set, with polarity bit `i` of `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Implicant {
    /// Cared-about variable positions.
    pub mask: u32,
    /// Required values on the cared positions (subset of `mask`).
    pub value: u32,
}

impl Implicant {
    /// Whether the cube contains the minterm.
    #[inline]
    pub fn covers(&self, minterm: u32) -> bool {
        minterm & self.mask == self.value
    }

    /// Number of literals in the product term.
    pub fn literals(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// A minimized sum-of-products cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sop {
    /// The function is constantly 0.
    Zero,
    /// The function is constantly 1.
    One,
    /// OR of the product terms.
    Terms(Vec<Implicant>),
}

impl Sop {
    /// Evaluates the cover on an input assignment.
    pub fn eval(&self, input: u32) -> bool {
        match self {
            Sop::Zero => false,
            Sop::One => true,
            Sop::Terms(terms) => terms.iter().any(|t| t.covers(input)),
        }
    }

    /// Total literal count (0 for constants).
    pub fn literals(&self) -> usize {
        match self {
            Sop::Zero | Sop::One => 0,
            Sop::Terms(terms) => terms.iter().map(|t| t.literals() as usize).sum(),
        }
    }

    /// Number of product terms (0 for constants).
    pub fn num_terms(&self) -> usize {
        match self {
            Sop::Zero | Sop::One => 0,
            Sop::Terms(terms) => terms.len(),
        }
    }
}

/// Minimizes the function over `num_vars` variables whose on-set is
/// `on` and whose don't-care set is `dc` (both given as minterm indices;
/// overlapping entries are treated as don't-cares).
///
/// # Panics
///
/// Panics if `num_vars > 16`, or any minterm is out of range.
pub fn minimize(num_vars: u32, on: &[u32], dc: &[u32]) -> Sop {
    assert!(num_vars <= 16, "minimizer supports up to 16 variables");
    let space = 1u64 << num_vars;
    for &m in on.iter().chain(dc) {
        assert!((m as u64) < space, "minterm {m} out of range");
    }
    let mut on: Vec<u32> = on.to_vec();
    on.sort_unstable();
    on.dedup();
    let mut dc: Vec<u32> = dc.to_vec();
    dc.sort_unstable();
    dc.dedup();
    on.retain(|m| !dc.contains(m));

    if on.is_empty() {
        return Sop::Zero;
    }
    if on.len() as u64 + dc.len() as u64 == space {
        return Sop::One;
    }

    let primes = prime_implicants(num_vars, &on, &dc);
    let cover = select_cover(&on, &primes);
    if cover.len() == 1 && cover[0].mask == 0 {
        return Sop::One;
    }
    Sop::Terms(cover)
}

/// Generates all prime implicants by iterative cube merging.
fn prime_implicants(num_vars: u32, on: &[u32], dc: &[u32]) -> Vec<Implicant> {
    let full_mask = if num_vars == 32 {
        !0u32
    } else {
        (1u32 << num_vars) - 1
    };
    let mut current: Vec<Implicant> = on
        .iter()
        .chain(dc)
        .map(|&m| Implicant {
            mask: full_mask,
            value: m,
        })
        .collect();
    current.sort_unstable();
    current.dedup();

    let mut primes: Vec<Implicant> = Vec::new();
    while !current.is_empty() {
        let mut merged_flag = vec![false; current.len()];
        let mut next: Vec<Implicant> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                let (a, b) = (current[i], current[j]);
                if a.mask != b.mask {
                    continue;
                }
                let diff = a.value ^ b.value;
                if diff.count_ones() == 1 {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.push(Implicant {
                        mask: a.mask & !diff,
                        value: a.value & !diff,
                    });
                }
            }
        }
        for (k, &f) in merged_flag.iter().enumerate() {
            if !f {
                primes.push(current[k]);
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Essential primes first, then greedy: largest on-set coverage, ties
/// broken toward fewer literals.
fn select_cover(on: &[u32], primes: &[Implicant]) -> Vec<Implicant> {
    let mut cover: Vec<Implicant> = Vec::new();
    let mut uncovered: Vec<u32> = on.to_vec();

    // Essential primes: minterms covered by exactly one prime.
    for &m in on {
        let covering: Vec<&Implicant> = primes.iter().filter(|p| p.covers(m)).collect();
        if covering.len() == 1 && !cover.contains(covering[0]) {
            cover.push(*covering[0]);
        }
    }
    uncovered.retain(|&m| !cover.iter().any(|p| p.covers(m)));

    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .filter(|p| !cover.contains(p))
            .max_by_key(|p| {
                let gain = uncovered.iter().filter(|&&m| p.covers(m)).count();
                (gain, std::cmp::Reverse(p.literals()))
            })
            .expect("primes cover every on-set minterm");
        cover.push(*best);
        uncovered.retain(|&m| !best.covers(m));
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: the cover equals the spec on every cared input.
    fn verify(num_vars: u32, on: &[u32], dc: &[u32], sop: &Sop) {
        for input in 0..(1u32 << num_vars) {
            if dc.contains(&input) {
                continue;
            }
            assert_eq!(
                sop.eval(input),
                on.contains(&input),
                "mismatch at input {input:0b}"
            );
        }
    }

    #[test]
    fn constants() {
        assert_eq!(minimize(3, &[], &[]), Sop::Zero);
        assert_eq!(minimize(2, &[0, 1, 2, 3], &[]), Sop::One);
        assert_eq!(minimize(2, &[0, 3], &[1, 2]), Sop::One);
    }

    #[test]
    fn classic_example() {
        // f(a,b,c,d) = Σ(4,8,10,11,12,15) + d(9,14): a textbook case.
        let on = [4, 8, 10, 11, 12, 15];
        let dc = [9, 14];
        let sop = minimize(4, &on, &dc);
        verify(4, &on, &dc, &sop);
        // Known minimal cover has 3-4 terms.
        assert!(sop.num_terms() <= 4);
    }

    #[test]
    fn xor_needs_all_minterms() {
        // XOR of 3 variables: no merging possible, 4 terms of 3 literals.
        let on = [0b001, 0b010, 0b100, 0b111];
        let sop = minimize(3, &on, &[]);
        verify(3, &on, &[], &sop);
        assert_eq!(sop.num_terms(), 4);
        assert_eq!(sop.literals(), 12);
    }

    #[test]
    fn single_variable_functions() {
        let sop = minimize(3, &[4, 5, 6, 7], &[]);
        verify(3, &[4, 5, 6, 7], &[], &sop);
        assert_eq!(sop.literals(), 1, "f = a (the MSB)");
    }

    #[test]
    fn dont_cares_shrink_covers() {
        // On-set {1}, DC {3,5,7} over 3 vars → f = bit0 (1 literal).
        let sop = minimize(3, &[1], &[3, 5, 7]);
        verify(3, &[1], &[3, 5, 7], &sop);
        assert_eq!(sop.literals(), 1);
    }

    #[test]
    fn exhaustive_small_functions() {
        // All 256 functions of 3 variables, no DCs: brute-force verify.
        for code in 0u32..256 {
            let on: Vec<u32> = (0..8).filter(|&m| code >> m & 1 == 1).collect();
            let sop = minimize(3, &on, &[]);
            verify(3, &on, &[], &sop);
        }
    }

    #[test]
    fn exhaustive_with_dontcares() {
        // All (on, dc) partitions over 2 variables.
        for on_code in 0u32..16 {
            for dc_code in 0u32..16 {
                if on_code & dc_code != 0 {
                    continue;
                }
                let on: Vec<u32> = (0..4).filter(|&m| on_code >> m & 1 == 1).collect();
                let dc: Vec<u32> = (0..4).filter(|&m| dc_code >> m & 1 == 1).collect();
                let sop = minimize(2, &on, &dc);
                verify(2, &on, &dc, &sop);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn minterm_range_checked() {
        let _ = minimize(2, &[4], &[]);
    }
}
