//! Complete self-test synthesis: generator + CUT + MISR in one netlist.
//!
//! The paper's Figure 1 covers stimulus generation; a deployable BIST
//! block also contains the circuit under test and a response compactor.
//! [`build_self_test`] fuses all three into a single synchronous
//! netlist with one input (`rst`) and the MISR signature bits as
//! outputs:
//!
//! * the Figure-1 weight generator drives the CUT's inputs directly
//!   (no external test access needed);
//! * the CUT is instantiated unmodified — in particular its flip-flops
//!   get **no reset**, exactly the paper's no-flip-flop-modification
//!   constraint; coverage still holds because the synthesis procedure's
//!   all-`X` simulation is initial-state-independent;
//! * a MISR absorbs the CUT outputs, gated by a *capture window*
//!   comparator on the phase counter (absorbing only once the session
//!   has run `capture_from` cycles keeps the unknown power-up values
//!   out of the signature).
//!
//! The result is simulatable by `wbist-sim`: the tests run the fused
//! netlist fault-free to obtain the golden signature, then re-run it
//! with faults injected *into the embedded CUT* and check that the
//! final signature differs — self-test of the synthesized self-test.

use crate::fsm::FsmBank;
use crate::generator::Builder;
use crate::qm::minimize;
use std::collections::HashMap;
use wbist_core::SelectedAssignment;
use wbist_netlist::{Circuit, Driver, GateKind, NetId, NetlistError};

/// A fused self-test design.
#[derive(Debug, Clone)]
pub struct SelfTestDesign {
    /// The fused netlist: input `rst`; outputs `SIG<k>` (MISR stages).
    pub circuit: Circuit,
    /// Mapping from CUT net names to nets of the fused circuit, for
    /// injecting faults into the embedded CUT.
    pub cut_nets: HashMap<String, NetId>,
    /// The weight FSM bank.
    pub bank: FsmBank,
    /// Sessions (weight assignments) the schedule walks through.
    pub num_assignments: usize,
    /// Cycles per session.
    pub sequence_length: usize,
    /// MISR width.
    pub misr_width: usize,
    /// Total cycles of one complete self-test (excluding the reset
    /// cycle).
    pub total_cycles: usize,
}

/// Builds the fused self-test block for `cut` under the schedule
/// `omega` (one session of `sequence_length` cycles per assignment),
/// compacting responses into a `misr_width`-stage MISR that starts
/// capturing `capture_from` cycles into each session.
///
/// # Errors
///
/// Returns a [`NetlistError`] if synthesis produces an invalid netlist
/// (cannot happen for well-formed inputs).
///
/// # Panics
///
/// Panics if `omega` is empty, the assignment width does not match the
/// CUT's inputs, `sequence_length == 0`, `misr_width == 0`, or
/// `capture_from >= sequence_length`.
pub fn build_self_test(
    cut: &Circuit,
    omega: &[SelectedAssignment],
    sequence_length: usize,
    misr_width: usize,
    capture_from: usize,
) -> Result<SelfTestDesign, NetlistError> {
    assert!(!omega.is_empty(), "need at least one weight assignment");
    assert!(sequence_length > 0, "L_G must be positive");
    assert!(misr_width > 0, "MISR needs at least one stage");
    assert!(
        capture_from < sequence_length,
        "capture window must open within the session"
    );
    assert_eq!(
        omega[0].assignment.num_inputs(),
        cut.num_inputs(),
        "assignment width must match the CUT"
    );
    let bank = FsmBank::from_assignments(omega);

    let mut c = Circuit::new(format!("{}_selftest", cut.name()));
    let rst = c.add_input("rst");
    let nrst = c.add_gate(GateKind::Not, "nrst", &[rst])?;
    let mut b = Builder {
        c: &mut c,
        nrst,
        tmp: 0,
    };

    // ── Stimulus generator (Figure 1) ────────────────────────────────
    let (phase_bits, phase_wrap) = b.modulo_counter("ph", sequence_length, None)?;
    let sess_width = usize::BITS - (omega.len().max(2) - 1).leading_zeros();
    let session_bits = b.binary_counter("se", sess_width as usize, phase_wrap)?;
    let fsm_clear = match phase_wrap {
        Some(w) => Some(w),
        None => Some(b.c.add_const("const1", true)?),
    };
    let mut fsm_outputs: Vec<Vec<NetId>> = Vec::new();
    for (fi, fsm) in bank.fsms().iter().enumerate() {
        let (state, _) = b.modulo_counter(&format!("f{fi}"), fsm.length, fsm_clear)?;
        let logic = fsm.output_logic();
        let mut outs = Vec::new();
        for (oi, sop) in logic.iter().enumerate() {
            outs.push(b.sop(&format!("f{fi}z{oi}"), sop, &state)?);
        }
        fsm_outputs.push(outs);
    }
    let decodes: Vec<NetId> = (0..omega.len())
        .map(|a| b.eq_const(&format!("dec{a}"), &session_bits, a))
        .collect::<Result<_, _>>()?;
    let mut stimulus: Vec<NetId> = Vec::with_capacity(cut.num_inputs());
    for i in 0..cut.num_inputs() {
        let mut terms = Vec::new();
        for (a, sel) in omega.iter().enumerate() {
            let sub = &sel.assignment.subsequences()[i];
            let (fi, oi) = bank
                .locate(sub)
                .expect("bank was built from these assignments");
            terms.push(b.gate(GateKind::And, "mux", &[decodes[a], fsm_outputs[fi][oi]])?);
        }
        let out = if terms.len() == 1 {
            b.gate(GateKind::Buf, "stim", &terms)?
        } else {
            b.gate(GateKind::Or, "stim", &terms)?
        };
        stimulus.push(out);
    }

    // ── Embedded CUT (unmodified; nets prefixed `cut_`) ──────────────
    let mut cut_nets: HashMap<String, NetId> = HashMap::new();
    // CUT primary inputs are driven by the stimulus muxes via buffers.
    for (i, &pi) in cut.inputs().iter().enumerate() {
        let name = format!("cut_{}", cut.net_name(pi));
        let net = b.c.add_gate(GateKind::Buf, &name, &[stimulus[i]])?;
        cut_nets.insert(cut.net_name(pi).to_string(), net);
    }
    for dff in cut.dffs() {
        let name = format!("cut_{}", cut.net_name(dff.q));
        let q = b.c.add_dff(&name, None)?;
        cut_nets.insert(cut.net_name(dff.q).to_string(), q);
    }
    for idx in 0..cut.num_nets() {
        let net = NetId::from_index(idx);
        if let Driver::Const(v) = cut.driver(net) {
            let name = format!("cut_{}", cut.net_name(net));
            let k = b.c.add_const(&name, v)?;
            cut_nets.insert(cut.net_name(net).to_string(), k);
        }
    }
    for &gid in cut.topo_gates() {
        let g = cut.gate(gid);
        let inputs: Vec<NetId> = g
            .inputs
            .iter()
            .map(|&i| cut_nets[cut.net_name(i)])
            .collect();
        let name = format!("cut_{}", cut.net_name(g.output));
        let out = b.c.add_gate(g.kind, &name, &inputs)?;
        cut_nets.insert(cut.net_name(g.output).to_string(), out);
    }
    for dff in cut.dffs() {
        let d = dff.d.expect("levelized CUTs have connected DFFs");
        let q = cut_nets[cut.net_name(dff.q)];
        b.c.connect_dff_data(q, cut_nets[cut.net_name(d)])?;
    }

    // ── MISR with capture gating ──────────────────────────────────────
    // capture = (phase >= capture_from), as a minimized SOP over the
    // phase bits (constant 1 when the window opens at 0).
    let capture = if capture_from == 0 || phase_bits.is_empty() {
        b.c.add_const("capture", true)?
    } else {
        let w = phase_bits.len() as u32;
        let on: Vec<u32> = (capture_from as u32..(1u32 << w)).collect();
        let sop = minimize(w, &on, &[]);
        b.sop("capture", &sop, &phase_bits)?
    };
    let taps = default_taps(misr_width);
    let stages: Vec<NetId> = (0..misr_width)
        .map(|k| b.c.add_dff(&format!("misr_q{k}"), None))
        .collect::<Result<_, _>>()?;
    // Feedback parity of the tapped stages.
    let mut fb: Option<NetId> = None;
    for (k, &st) in stages.iter().enumerate() {
        if taps[k] {
            fb = Some(match fb {
                None => st,
                Some(acc) => b.gate(GateKind::Xor, "misr_fb", &[acc, st])?,
            });
        }
    }
    let fb = fb.expect("default taps are non-empty");
    // Fold the CUT outputs into per-stage injections, gated by capture.
    let cut_outputs: Vec<NetId> = cut
        .outputs()
        .iter()
        .map(|&o| cut_nets[cut.net_name(o)])
        .collect();
    for (k, &st) in stages.iter().enumerate() {
        let mut inject: Option<NetId> = None;
        for (oi, &po) in cut_outputs.iter().enumerate() {
            if oi % misr_width == k {
                inject = Some(match inject {
                    None => po,
                    Some(acc) => b.gate(GateKind::Xor, "misr_in", &[acc, po])?,
                });
            }
        }
        let from = if k == 0 { fb } else { stages[k - 1] };
        let shifted = match inject {
            Some(inj) => {
                let gated = b.gate(GateKind::And, "misr_gate", &[inj, capture])?;
                b.gate(GateKind::Xor, "misr_x", &[from, gated])?
            }
            None => from,
        };
        let next = b.gate(GateKind::And, "misr_n", &[b.nrst, shifted])?;
        b.c.connect_dff_data(st, next)?;
    }
    for (k, &st) in stages.iter().enumerate() {
        let sig = b.c.add_gate(GateKind::Buf, &format!("SIG{k}"), &[st])?;
        b.c.mark_output(sig);
    }

    let total_cycles = omega.len() * sequence_length;
    let circuit = c.levelize()?;
    Ok(SelfTestDesign {
        circuit,
        cut_nets,
        bank,
        num_assignments: omega.len(),
        sequence_length,
        misr_width,
        total_cycles,
    })
}

/// The default MISR taps used by [`build_self_test`] — the same shape as
/// `wbist_sim::Misr::with_default_taps`.
fn default_taps(width: usize) -> Vec<bool> {
    let mut taps = vec![false; width];
    taps[width - 1] = true;
    taps[0] = true;
    if width > 2 {
        taps[width / 2] = true;
    }
    taps
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_core::{synthesize_weighted_bist, SynthesisConfig};
    use wbist_netlist::{FaultList, FaultSite};
    use wbist_sim::{Logic3, SerialFaultSim, TestSequence};

    fn setup() -> (Circuit, FaultList, Vec<SelectedAssignment>, usize) {
        let cut = wbist_circuits::s27::circuit();
        let t = wbist_circuits::s27::paper_test_sequence();
        let faults = FaultList::checkpoints(&cut);
        let l_g = 32;
        let r = synthesize_weighted_bist(
            &cut,
            &t,
            &faults,
            &SynthesisConfig {
                sequence_length: l_g,
                ..SynthesisConfig::default()
            },
        );
        (cut, faults, r.omega, l_g)
    }

    /// One reset cycle then the whole schedule.
    fn stimulus(total: usize) -> TestSequence {
        let mut rows = vec![vec![true]];
        rows.extend(std::iter::repeat_n(vec![false], total));
        TestSequence::from_rows(rows).expect("rectangular")
    }

    #[test]
    fn fused_design_builds_and_produces_binary_signature() {
        let (cut, _faults, omega, l_g) = setup();
        let design = build_self_test(&cut, &omega, l_g, 8, 8).expect("synthesis succeeds");
        assert_eq!(design.circuit.num_inputs(), 1, "only rst");
        assert_eq!(design.circuit.num_outputs(), 8, "signature bits");
        let sim = wbist_sim::LogicSim::new(&design.circuit);
        let outs = sim
            .outputs(&stimulus(design.total_cycles))
            .expect("width matches");
        let last = outs.last().expect("non-empty");
        assert!(
            last.iter().all(|v| v.is_known()),
            "golden signature must be binary, got {last:?}"
        );
    }

    #[test]
    fn embedded_cut_faults_flip_the_signature() {
        let (cut, faults, omega, l_g) = setup();
        let design = build_self_test(&cut, &omega, l_g, 16, 8).expect("synthesis succeeds");
        let stim = stimulus(design.total_cycles);
        let sim = SerialFaultSim::new(&design.circuit);
        let golden = sim.output_stream(None, &stim);
        let golden_sig = golden.last().expect("non-empty");

        // Translate every stem fault of the CUT into the fused netlist
        // and count how many flip the final signature.
        let mut translated = 0usize;
        let mut flipped = 0usize;
        for f in &faults {
            let FaultSite::Stem(net) = f.site() else {
                continue; // pin/DFF-data faults need gate-id mapping
            };
            let fused_net = design.cut_nets[cut.net_name(net)];
            let fault = f.with_site(FaultSite::Stem(fused_net));
            translated += 1;
            let bad = sim.output_stream(Some(fault), &stim);
            let bad_sig = bad.last().expect("non-empty");
            if golden_sig.iter().zip(bad_sig).any(|(g, b)| g.conflicts(*b)) {
                flipped += 1;
            }
        }
        assert!(translated >= 10, "s27 has many stem checkpoint faults");
        // A 16-bit MISR over the full session catches essentially all of
        // them (aliasing would need a 2^-16 coincidence).
        assert!(
            flipped * 10 >= translated * 9,
            "only {flipped}/{translated} faults flip the signature"
        );
    }

    #[test]
    fn capture_window_constant_when_zero() {
        let (cut, _faults, omega, l_g) = setup();
        let design = build_self_test(&cut, &omega, l_g, 8, 0).expect("synthesis succeeds");
        // With capture from cycle 0 the X power-up state may poison the
        // signature — exactly the failure the capture window exists to
        // prevent. It must still build and simulate.
        let sim = wbist_sim::LogicSim::new(&design.circuit);
        let outs = sim
            .outputs(&stimulus(design.total_cycles))
            .expect("width matches");
        let last = outs.last().expect("non-empty");
        // s27's first cycles produce X on G17, so some stage is X.
        assert!(last.contains(&Logic3::X));
    }

    #[test]
    fn validates_configuration() {
        let (cut, _faults, omega, l_g) = setup();
        assert!(std::panic::catch_unwind(|| {
            build_self_test(&cut, &omega, l_g, 8, l_g).ok();
        })
        .is_err());
    }
}
