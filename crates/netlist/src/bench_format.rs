//! Parser and writer for the ISCAS-89 `.bench` netlist format.
//!
//! The format, as used by the ISCAS-89 sequential benchmarks:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G14 = NOT(G0)
//! G8 = AND(G14, G6)
//! ```
//!
//! Supported gate keywords: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`,
//! `NOT`, `BUF`/`BUFF`, plus `DFF` for flip-flops and `CONST0`/`CONST1`
//! (a common extension) for constants.

use crate::circuit::{Circuit, Driver, GateKind, NetId};
use crate::error::NetlistError;
use std::fmt::Write as _;

/// Parses `.bench` source text into a levelized [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors and any of the
/// validation errors of [`Circuit::levelize`] for structural problems.
pub fn parse(name: &str, src: &str) -> Result<Circuit, NetlistError> {
    if wbist_telemetry::failpoint::should_fire("netlist.bench_parse") {
        return Err(NetlistError::Parse {
            line: 0,
            message: "failpoint `netlist.bench_parse` fired".into(),
        });
    }
    let mut c = Circuit::new(name);
    // Deferred wiring: (line_no, lhs, keyword, args)
    let mut dff_data: Vec<(usize, String, String)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();

    for (ln0, raw) in src.lines().enumerate() {
        let line_no = ln0 + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        let parse_call = |text: &str| -> Result<(String, Vec<String>), NetlistError> {
            let open = text.find('(').ok_or(NetlistError::Parse {
                line: line_no,
                message: "expected `(`".into(),
            })?;
            let close = text.rfind(')').ok_or(NetlistError::Parse {
                line: line_no,
                message: "expected `)`".into(),
            })?;
            if close < open {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "mismatched parentheses".into(),
                });
            }
            let head = text[..open].trim().to_string();
            let args: Vec<String> = text[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            Ok((head, args))
        };

        if let Some(eq) = line.find('=') {
            let lhs = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let (head, args) = parse_call(rhs)?;
            let upper = head.to_ascii_uppercase();
            match upper.as_str() {
                "DFF" => {
                    if args.len() != 1 {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            message: format!("DFF takes one input, got {}", args.len()),
                        });
                    }
                    c.add_dff(&lhs, None)?;
                    dff_data.push((line_no, lhs, args[0].clone()));
                }
                "CONST0" | "CONST1" => {
                    if !args.is_empty() {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            message: format!("{upper} takes no inputs"),
                        });
                    }
                    c.add_const(&lhs, upper == "CONST1")?;
                }
                _ => {
                    let kind =
                        GateKind::from_keyword(&upper).ok_or_else(|| NetlistError::Parse {
                            line: line_no,
                            message: format!("unknown gate keyword `{head}`"),
                        })?;
                    if args.is_empty() {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            message: format!("{upper} needs at least one input"),
                        });
                    }
                    let ins: Vec<NetId> = args.iter().map(|a| c.declare_net(a)).collect();
                    c.add_gate(kind, &lhs, &ins)?;
                }
            }
        } else {
            let (head, args) = parse_call(line)?;
            let upper = head.to_ascii_uppercase();
            if args.len() != 1 {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("{upper} takes one net name"),
                });
            }
            match upper.as_str() {
                "INPUT" => {
                    c.try_add_input(&args[0])?;
                }
                "OUTPUT" => outputs.push(args[0].clone()),
                _ => {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: format!("unknown directive `{head}`"),
                    });
                }
            }
        }
    }

    for (line_no, q, d) in dff_data {
        let qn = c.net_by_name(&q).ok_or_else(|| NetlistError::Parse {
            line: line_no,
            message: format!("flip-flop output `{q}` lost during parsing"),
        })?;
        let dn = c.declare_net(&d);
        c.connect_dff_data(qn, dn)?;
    }
    for o in outputs {
        let net = c.declare_net(&o);
        c.mark_output(net);
    }
    c.levelize()
}

/// Writes a levelized (or raw) [`Circuit`] as `.bench` text.
///
/// The output round-trips through [`parse`] to an equivalent circuit.
pub fn write(c: &Circuit) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {}", c.name());
    let _ = writeln!(
        s,
        "# {} inputs  {} outputs  {} D-type flipflops  {} gates",
        c.num_inputs(),
        c.num_outputs(),
        c.num_dffs(),
        c.num_gates()
    );
    for &i in c.inputs() {
        let _ = writeln!(s, "INPUT({})", c.net_name(i));
    }
    for &o in c.outputs() {
        let _ = writeln!(s, "OUTPUT({})", c.net_name(o));
    }
    s.push('\n');
    for dff in c.dffs() {
        match dff.d {
            Some(d) => {
                let _ = writeln!(s, "{} = DFF({})", c.net_name(dff.q), c.net_name(d));
            }
            // An unconnected data input cannot be expressed in `.bench`;
            // leave a comment instead of panicking mid-write.
            None => {
                let _ = writeln!(
                    s,
                    "# {} = DFF(?)  unconnected data input",
                    c.net_name(dff.q)
                );
            }
        }
    }
    for (_, g) in c.iter_gates() {
        let ins: Vec<&str> = g.inputs.iter().map(|&i| c.net_name(i)).collect();
        let _ = writeln!(
            s,
            "{} = {}({})",
            c.net_name(g.output),
            g.kind,
            ins.join(", ")
        );
    }
    // Constants (rare; extension keywords).
    for idx in 0..c.num_nets() {
        let net = NetId::from_index(idx);
        if let Driver::Const(v) = c.driver(net) {
            let _ = writeln!(s, "{} = CONST{}()", c.net_name(net), if v { 1 } else { 0 });
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r"
# a toy circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(g)
g = NAND(a, q)
y = XOR(g, b)
";

    #[test]
    fn parses_toy() {
        let c = parse("toy", TOY).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn roundtrip() {
        let c = parse("toy", TOY).unwrap();
        let text = write(&c);
        let c2 = parse("toy2", &text).unwrap();
        assert_eq!(c.num_inputs(), c2.num_inputs());
        assert_eq!(c.num_outputs(), c2.num_outputs());
        assert_eq!(c.num_dffs(), c2.num_dffs());
        assert_eq!(c.num_gates(), c2.num_gates());
        // Gate kinds survive in order of creation.
        for (g1, g2) in c.gates().iter().zip(c2.gates()) {
            assert_eq!(g1.kind, g2.kind);
            assert_eq!(g1.inputs.len(), g2.inputs.len());
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse(
            "c",
            "  \n# hi\nINPUT(x) # trailing\nOUTPUT(y)\ny = NOT(x)\n",
        )
        .unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn unknown_keyword_is_parse_error() {
        let err = parse("c", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn missing_paren_is_parse_error() {
        let err = parse("c", "INPUT a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn dff_with_two_inputs_rejected() {
        let err = parse("c", "INPUT(a)\nq = DFF(a, a)\nOUTPUT(q)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn undriven_reference_rejected() {
        let err = parse("c", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenNet { .. }));
    }

    #[test]
    fn const_extension() {
        let c = parse("c", "INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n").unwrap();
        let k = c.net_by_name("k").unwrap();
        assert_eq!(c.driver(k), Driver::Const(true));
        let text = write(&c);
        assert!(text.contains("CONST1"));
        parse("c2", &text).unwrap();
    }

    #[test]
    fn forward_references_ok() {
        // y uses g before g is defined.
        let c = parse("c", "INPUT(a)\nOUTPUT(y)\ny = NOT(g)\ng = BUFF(a)\n").unwrap();
        assert_eq!(c.num_gates(), 2);
    }
}
