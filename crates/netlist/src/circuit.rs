//! The gate-level circuit IR.
//!
//! A [`Circuit`] is a set of *nets* (named signals), each driven by exactly
//! one of: a primary input, a D flip-flop output, a logic gate output, or a
//! constant. Primary outputs and observation points reference nets. The
//! combinational core must be acyclic; every cycle has to pass through a
//! flip-flop ([`Circuit::levelize`] verifies this).

use crate::error::NetlistError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (signal) within one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Index of this net into per-net arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index.
    ///
    /// Callers are responsible for the index being in range for the circuit
    /// the id will be used with; out-of-range ids surface as
    /// [`NetlistError::UnknownNet`] from circuit methods.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

/// Identifier of a gate within one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Index of this gate into per-gate arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The boolean function computed by a [`Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Complement of the AND of all inputs.
    Nand,
    /// Logical OR of all inputs.
    Or,
    /// Complement of the OR of all inputs.
    Nor,
    /// Parity (XOR) of all inputs.
    Xor,
    /// Complement of the parity of all inputs.
    Xnor,
    /// Complement of the single input.
    Not,
    /// Identity on the single input.
    Buf,
}

impl GateKind {
    /// Returns `true` if this kind accepts `n` inputs.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Not | GateKind::Buf => n == 1,
            _ => n >= 1,
        }
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// An input at its controlling value determines the output regardless of
    /// the other inputs. XOR/XNOR and single-input gates have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate complements its "natural" output (NAND/NOR/XNOR/NOT).
    pub fn inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The canonical upper-case `.bench` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive). `BUF` and `BUFF` are
    /// both accepted.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s.to_ascii_uppercase().as_str() {
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A combinational gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The boolean function.
    pub kind: GateKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The net driven by this gate.
    pub output: NetId,
}

/// A D flip-flop. State updates on every (implicit) clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dff {
    /// The state output net (present state).
    pub q: NetId,
    /// The data input net (next state). `None` until connected.
    pub d: Option<NetId>,
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Primary input with the given PI index.
    Input(usize),
    /// Flip-flop output with the given DFF index.
    Dff(usize),
    /// Output of the given gate.
    Gate(GateId),
    /// Constant value.
    Const(bool),
    /// Declared but not yet driven (illegal after [`Circuit::levelize`]).
    Undriven,
}

/// One load of a net: either a gate input pin or a flip-flop data input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// Input pin `pin` of gate `gate`.
    GatePin {
        /// The consuming gate.
        gate: GateId,
        /// Zero-based pin position.
        pin: usize,
    },
    /// Data input of the DFF with this index.
    DffData(usize),
}

/// A gate-level synchronous sequential circuit.
///
/// Build one with the `add_*` methods, then call [`Circuit::levelize`] to
/// validate it and compute the topological gate order required by the
/// simulators. Most consumers only ever see levelized circuits.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Driver>,
    by_name: HashMap<String, NetId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    observation_points: Vec<NetId>,
    /// Topological order of gates; empty until levelized.
    topo: Vec<GateId>,
    /// Per-net loads; computed by levelize.
    fanout: Vec<Vec<Load>>,
    levelized: bool,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            net_names: Vec::new(),
            drivers: Vec::new(),
            by_name: HashMap::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            observation_points: Vec::new(),
            topo: Vec::new(),
            fanout: Vec::new(),
            levelized: false,
        }
    }

    /// The circuit name (e.g. `"s27"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn intern(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_string());
        self.drivers.push(Driver::Undriven);
        self.by_name.insert(name.to_string(), id);
        id
    }

    fn set_driver(&mut self, id: NetId, driver: Driver) -> Result<(), NetlistError> {
        match self.drivers[id.index()] {
            Driver::Undriven => {
                self.drivers[id.index()] = driver;
                Ok(())
            }
            _ => Err(NetlistError::DuplicateDriver {
                name: self.net_names[id.index()].clone(),
            }),
        }
    }

    /// Declares (or references) a net by name without driving it.
    ///
    /// Useful when wiring forward references; the net must eventually be
    /// driven before [`Circuit::levelize`].
    pub fn declare_net(&mut self, name: &str) -> NetId {
        self.invalidate();
        self.intern(name)
    }

    /// Adds a primary input and returns its net.
    ///
    /// # Panics
    ///
    /// Panics if the name already has a driver; use [`Circuit::try_add_input`]
    /// to handle that case as an error.
    pub fn add_input(&mut self, name: &str) -> NetId {
        self.try_add_input(name).expect("input net already driven")
    }

    /// Adds a primary input, failing if the net is already driven.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateDriver`] if `name` is already driven.
    pub fn try_add_input(&mut self, name: &str) -> Result<NetId, NetlistError> {
        self.invalidate();
        let id = self.intern(name);
        let pi_index = self.inputs.len();
        self.set_driver(id, Driver::Input(pi_index))?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a D flip-flop whose state output net is `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateDriver`] if `name` is already driven.
    pub fn add_dff(&mut self, name: &str, data: Option<NetId>) -> Result<NetId, NetlistError> {
        self.invalidate();
        let q = self.intern(name);
        let dff_index = self.dffs.len();
        self.set_driver(q, Driver::Dff(dff_index))?;
        self.dffs.push(Dff { q, d: data });
        Ok(q)
    }

    /// Connects the data input of the DFF whose output is `q`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotADff`] if `q` is not a flip-flop output.
    pub fn connect_dff_data(&mut self, q: NetId, d: NetId) -> Result<(), NetlistError> {
        self.invalidate();
        match self.drivers.get(q.index()) {
            Some(Driver::Dff(k)) => {
                let k = *k;
                self.dffs[k].d = Some(d);
                Ok(())
            }
            Some(_) => Err(NetlistError::NotADff {
                name: self.net_names[q.index()].clone(),
            }),
            None => Err(NetlistError::UnknownNet { index: q.index() }),
        }
    }

    /// Adds a gate driving a net named `name` and returns that net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the kind cannot take the number
    /// of inputs supplied, or [`NetlistError::DuplicateDriver`] if `name` is
    /// already driven.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        name: &str,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        self.invalidate();
        if !kind.arity_ok(inputs.len()) {
            return Err(NetlistError::BadArity {
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        let out = self.intern(name);
        let gid = GateId(self.gates.len() as u32);
        self.set_driver(out, Driver::Gate(gid))?;
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Adds a constant-valued net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateDriver`] if `name` is already driven.
    pub fn add_const(&mut self, name: &str, value: bool) -> Result<NetId, NetlistError> {
        self.invalidate();
        let id = self.intern(name);
        self.set_driver(id, Driver::Const(value))?;
        Ok(id)
    }

    /// Marks a net as a primary output. A net may be both a PO and feed
    /// further logic. Marking the same net twice is idempotent.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Adds an observation point on `net`. Observation points behave like
    /// extra primary outputs for fault detection but are reported
    /// separately. Idempotent; a net that is already a PO is ignored.
    pub fn add_observation_point(&mut self, net: NetId) {
        if !self.outputs.contains(&net) && !self.observation_points.contains(&net) {
            self.observation_points.push(net);
        }
    }

    /// Returns a copy of this circuit with exactly the given observation
    /// points (replacing any existing ones).
    pub fn with_observation_points(&self, points: &[NetId]) -> Circuit {
        let mut c = self.clone();
        c.observation_points.clear();
        for &p in points {
            c.add_observation_point(p);
        }
        c
    }

    /// Looks a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this circuit.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// The driver of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this circuit.
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// Iterates over the constant-driven nets and their values, in net
    /// index order. Compiled simulators use this to pre-resolve constant
    /// sources instead of re-scanning every net's [`Driver`] per cycle.
    pub fn const_nets(&self) -> impl Iterator<Item = (NetId, bool)> + '_ {
        self.drivers
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d {
                Driver::Const(v) => Some((NetId::from_index(i), *v)),
                _ => None,
            })
    }

    /// Number of nets (signals).
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Primary input nets in PI order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets in PO order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The observation-point nets (excluding regular POs).
    pub fn observation_points(&self) -> &[NetId] {
        &self.observation_points
    }

    /// All observed nets: primary outputs followed by observation points.
    pub fn observed_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.outputs
            .iter()
            .copied()
            .chain(self.observation_points.iter().copied())
    }

    /// The flip-flops in DFF-index order.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// The gates in creation order. Use [`Circuit::topo_gates`] for
    /// evaluation order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// One gate by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(GateId, &Gate)` pairs in creation order.
    pub fn iter_gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Gates in topological (evaluation) order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn topo_gates(&self) -> &[GateId] {
        assert!(self.levelized, "circuit must be levelized first");
        &self.topo
    }

    /// Loads (gate pins and DFF data inputs) of a net.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn loads(&self, net: NetId) -> &[Load] {
        assert!(self.levelized, "circuit must be levelized first");
        &self.fanout[net.index()]
    }

    /// Total fanout of a net: gate pins + DFF data loads + 1 if it is a PO,
    /// +1 if it is an observation point.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn fanout_count(&self, net: NetId) -> usize {
        let mut n = self.loads(net).len();
        if self.outputs.contains(&net) {
            n += 1;
        }
        if self.observation_points.contains(&net) {
            n += 1;
        }
        n
    }

    /// Whether [`Circuit::levelize`] has validated this circuit.
    pub fn is_levelized(&self) -> bool {
        self.levelized
    }

    fn invalidate(&mut self) {
        self.levelized = false;
        self.topo.clear();
        self.fanout.clear();
    }

    /// Validates the circuit and computes the topological gate order and the
    /// fanout tables. Returns the circuit itself for chaining.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UndrivenNet`] — some referenced net has no driver,
    ///   or a DFF has no data input.
    /// * [`NetlistError::CombinationalLoop`] — a cycle not broken by a DFF.
    /// * [`NetlistError::NoInputs`] — no primary inputs.
    pub fn levelize(mut self) -> Result<Circuit, NetlistError> {
        if self.inputs.is_empty() {
            return Err(NetlistError::NoInputs);
        }
        // Every net must be driven and every DFF connected.
        for (i, d) in self.drivers.iter().enumerate() {
            if matches!(d, Driver::Undriven) {
                return Err(NetlistError::UndrivenNet {
                    name: self.net_names[i].clone(),
                });
            }
        }
        for dff in &self.dffs {
            if dff.d.is_none() {
                return Err(NetlistError::UndrivenNet {
                    name: format!("{} (flip-flop data input)", self.net_names[dff.q.index()]),
                });
            }
        }

        // Fanout tables.
        let mut fanout: Vec<Vec<Load>> = vec![Vec::new(); self.net_names.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for (pin, &inp) in gate.inputs.iter().enumerate() {
                fanout[inp.index()].push(Load::GatePin {
                    gate: GateId(gi as u32),
                    pin,
                });
            }
        }
        for (di, dff) in self.dffs.iter().enumerate() {
            let d = dff.d.expect("checked above");
            fanout[d.index()].push(Load::DffData(di));
        }

        // Kahn topological sort over gates. Sources: PIs, DFF outputs,
        // constants. A gate is ready when all its input nets are resolved.
        let n_gates = self.gates.len();
        let mut unresolved_inputs: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|&&i| matches!(self.drivers[i.index()], Driver::Gate(_)))
                    .count()
            })
            .collect();
        let mut ready: Vec<GateId> = unresolved_inputs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(i, _)| GateId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n_gates);
        let mut head = 0;
        while head < ready.len() {
            let gid = ready[head];
            head += 1;
            topo.push(gid);
            let out = self.gates[gid.index()].output;
            for load in &fanout[out.index()] {
                if let Load::GatePin { gate, .. } = *load {
                    let c = &mut unresolved_inputs[gate.index()];
                    *c -= 1;
                    if *c == 0 {
                        ready.push(gate);
                    }
                }
            }
        }
        if topo.len() != n_gates {
            // Find a witness net on the cycle.
            let witness = self
                .gates
                .iter()
                .enumerate()
                .find(|&(i, _)| unresolved_inputs[i] > 0)
                .map(|(_, g)| self.net_names[g.output.index()].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalLoop { witness });
        }

        self.topo = topo;
        self.fanout = fanout;
        self.levelized = true;
        Ok(self)
    }

    /// Counts literals: the total number of gate input pins. A rough
    /// area proxy used by the hardware cost model.
    pub fn literal_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let q = c.add_dff("q", None).unwrap();
        let g = c.add_gate(GateKind::Nand, "g", &[a, q]).unwrap();
        c.connect_dff_data(q, g).unwrap();
        let y = c.add_gate(GateKind::Xor, "y", &[g, b]).unwrap();
        c.mark_output(y);
        c
    }

    #[test]
    fn builds_and_levelizes() {
        let c = toy().levelize().unwrap();
        assert_eq!(c.num_nets(), 5);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.topo_gates().len(), 2);
        // g must come before y.
        let g = match c.driver(c.net_by_name("g").unwrap()) {
            Driver::Gate(id) => id,
            _ => unreachable!(),
        };
        assert_eq!(c.topo_gates()[0], g);
    }

    #[test]
    fn duplicate_driver_rejected() {
        let mut c = Circuit::new("dup");
        let a = c.add_input("a");
        c.add_gate(GateKind::Buf, "x", &[a]).unwrap();
        let err = c.add_gate(GateKind::Buf, "x", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDriver { .. }));
    }

    #[test]
    fn undriven_net_rejected() {
        let mut c = Circuit::new("undriven");
        let a = c.add_input("a");
        let ghost = c.declare_net("ghost");
        let y = c.add_gate(GateKind::And, "y", &[a, ghost]).unwrap();
        c.mark_output(y);
        let err = c.levelize().unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenNet { .. }));
    }

    #[test]
    fn combinational_loop_rejected() {
        let mut c = Circuit::new("loop");
        let a = c.add_input("a");
        let x = c.declare_net("x");
        let y = c.add_gate(GateKind::And, "y", &[a, x]).unwrap();
        c.add_gate(GateKind::Buf, "x", &[y]).unwrap();
        c.mark_output(y);
        let err = c.levelize().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn dff_breaks_cycle() {
        // Feedback through a DFF is fine.
        let c = toy().levelize().unwrap();
        assert!(c.is_levelized());
    }

    #[test]
    fn missing_dff_data_rejected() {
        let mut c = Circuit::new("nodata");
        let a = c.add_input("a");
        c.add_dff("q", None).unwrap();
        let y = c.add_gate(GateKind::Buf, "y", &[a]).unwrap();
        c.mark_output(y);
        let err = c.levelize().unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenNet { .. }));
    }

    #[test]
    fn no_inputs_rejected() {
        let mut c = Circuit::new("empty");
        let k = c.add_const("one", true).unwrap();
        c.mark_output(k);
        let err = c.levelize().unwrap_err();
        assert!(matches!(err, NetlistError::NoInputs));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut c = Circuit::new("arity");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let err = c.add_gate(GateKind::Not, "y", &[a, b]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn fanout_counts() {
        let c = toy().levelize().unwrap();
        let g = c.net_by_name("g").unwrap();
        // g feeds the XOR and the DFF data input.
        assert_eq!(c.fanout_count(g), 2);
        let y = c.net_by_name("y").unwrap();
        // y is only a PO.
        assert_eq!(c.fanout_count(y), 1);
    }

    #[test]
    fn observation_points_are_tracked() {
        let mut c = toy();
        let g = c.net_by_name("g").unwrap();
        c.add_observation_point(g);
        c.add_observation_point(g); // idempotent
        let c = c.levelize().unwrap();
        assert_eq!(c.observation_points(), &[g]);
        assert_eq!(c.observed_nets().count(), 2);
    }

    #[test]
    fn observation_point_on_po_ignored() {
        let mut c = toy();
        let y = c.net_by_name("y").unwrap();
        c.add_observation_point(y);
        assert!(c.observation_points().is_empty());
    }

    #[test]
    fn gate_kind_roundtrip() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ] {
            assert_eq!(GateKind::from_keyword(kind.as_str()), Some(kind));
        }
        assert_eq!(GateKind::from_keyword("buf"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_keyword("DFF"), None);
    }
}
