//! Error types for netlist construction and parsing.

use std::fmt;

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net name was declared twice with conflicting drivers.
    DuplicateDriver {
        /// The offending net name.
        name: String,
    },
    /// A net was referenced but never driven by a PI, gate, DFF or constant.
    UndrivenNet {
        /// The offending net name.
        name: String,
    },
    /// The combinational core of the circuit contains a cycle that is not
    /// broken by a flip-flop.
    CombinationalLoop {
        /// Name of one net on the cycle.
        witness: String,
    },
    /// A gate was declared with an arity its kind does not support
    /// (e.g. a `NOT` with two inputs).
    BadArity {
        /// The gate kind as text.
        kind: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A `.bench` source line could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An operation referenced a net id that does not exist in this circuit.
    UnknownNet {
        /// The raw index that was out of range.
        index: usize,
    },
    /// An operation referenced a DFF by a net that is not a DFF output.
    NotADff {
        /// The offending net name.
        name: String,
    },
    /// The circuit has no primary inputs, which the sequence-based
    /// algorithms cannot work with.
    NoInputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateDriver { name } => {
                write!(f, "net `{name}` has more than one driver")
            }
            Self::UndrivenNet { name } => write!(f, "net `{name}` is never driven"),
            Self::CombinationalLoop { witness } => {
                write!(f, "combinational loop through net `{witness}`")
            }
            Self::BadArity { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} inputs")
            }
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::UnknownNet { index } => write!(f, "unknown net index {index}"),
            Self::NotADff { name } => write!(f, "net `{name}` is not a flip-flop output"),
            Self::NoInputs => write!(f, "circuit has no primary inputs"),
        }
    }
}

impl std::error::Error for NetlistError {}
