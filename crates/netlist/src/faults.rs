//! Single stuck-at fault enumeration and structural collapsing.
//!
//! Three enumeration conventions are provided:
//!
//! * [`FaultList::all_lines`] — the uncollapsed universe: both polarities on
//!   every stem (net) and on every gate input pin.
//! * [`FaultList::collapsed`] — the universe reduced by structural
//!   equivalence (fanout-free branch ≡ stem; controlling-value input ≡
//!   output; inverter/buffer input ≡ output).
//! * [`FaultList::checkpoints`] — the classic *checkpoint* set: both
//!   polarities on every primary input, every flip-flop output (pseudo
//!   primary input) and every fanout branch. This is the convention used by
//!   the sequential ATPG literature the reproduced paper builds on: it
//!   yields exactly 32 faults for ISCAS-89 `s27` (the paper's
//!   `f_0 … f_31`) and 22 for the combinational `c17`.
//!
//! Fault identity is positional: a [`Fault`] is meaningful only together
//! with the circuit it was enumerated from.

use crate::circuit::{Circuit, Driver, GateId, Load, NetId};

/// The structural location of a stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// On a net at its driver (affects every load).
    Stem(NetId),
    /// On one input pin of one gate (affects only that gate).
    GatePin {
        /// The consuming gate.
        gate: GateId,
        /// Zero-based pin position.
        pin: usize,
    },
    /// On the data input of the flip-flop with this index (affects only the
    /// value loaded into that flip-flop).
    DffData(usize),
}

/// A single stuck-at fault: a site stuck at `stuck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The stuck value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// Stuck-at-0 at `site`.
    pub fn sa0(site: FaultSite) -> Self {
        Fault { site, stuck: false }
    }

    /// Stuck-at-1 at `site`.
    pub fn sa1(site: FaultSite) -> Self {
        Fault { site, stuck: true }
    }

    /// Human-readable description, e.g. `G11/G10.1 s-a-1`.
    pub fn describe(&self, c: &Circuit) -> String {
        let v = if self.stuck { 1 } else { 0 };
        match self.site {
            FaultSite::Stem(n) => format!("{} s-a-{v}", c.net_name(n)),
            FaultSite::GatePin { gate, pin } => {
                let g = c.gate(gate);
                format!(
                    "{}<-{}' (pin {pin}) s-a-{v}",
                    c.net_name(g.output),
                    c.net_name(g.inputs[pin]),
                )
            }
            FaultSite::DffData(k) => {
                let q = c.dffs()[k].q;
                format!("DFF({})<-data s-a-{v}", c.net_name(q))
            }
        }
    }
}

/// An ordered list of target faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Builds a fault list from explicit faults.
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultList { faults }
    }

    /// The uncollapsed universe: both stuck values on every stem and on
    /// every gate input pin. Constant-driven nets are skipped (a fault on a
    /// tied line is either undetectable or the tied value itself).
    pub fn all_lines(c: &Circuit) -> Self {
        let mut faults = Vec::new();
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            faults.push(Fault::sa0(FaultSite::Stem(net)));
            faults.push(Fault::sa1(FaultSite::Stem(net)));
        }
        for (gid, gate) in c.iter_gates() {
            for pin in 0..gate.inputs.len() {
                let site = FaultSite::GatePin { gate: gid, pin };
                faults.push(Fault::sa0(site));
                faults.push(Fault::sa1(site));
            }
        }
        FaultList { faults }
    }

    /// The classic checkpoint fault set: both polarities on every primary
    /// input stem, every flip-flop output stem (pseudo primary input), and
    /// every fanout branch (each load of a stem with fanout ≥ 2; a stem
    /// that is also observed counts the observation as one of its loads and
    /// contributes its stem fault for it).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn checkpoints(c: &Circuit) -> Self {
        let mut faults = Vec::new();
        for &pi in c.inputs() {
            faults.push(Fault::sa0(FaultSite::Stem(pi)));
            faults.push(Fault::sa1(FaultSite::Stem(pi)));
        }
        for dff in c.dffs() {
            faults.push(Fault::sa0(FaultSite::Stem(dff.q)));
            faults.push(Fault::sa1(FaultSite::Stem(dff.q)));
        }
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            if c.fanout_count(net) < 2 {
                continue;
            }
            for load in c.loads(net) {
                let site = match *load {
                    Load::GatePin { gate, pin } => FaultSite::GatePin { gate, pin },
                    Load::DffData(k) => FaultSite::DffData(k),
                };
                faults.push(Fault::sa0(site));
                faults.push(Fault::sa1(site));
            }
            // The observation tap of an observed fanout stem is represented
            // by the stem fault itself — but only when the stem is not a
            // PI/FF output already enumerated above.
            let is_ppi = matches!(c.driver(net), Driver::Input(_) | Driver::Dff(_));
            let observed = c.observed_nets().any(|o| o == net);
            if observed && !is_ppi {
                faults.push(Fault::sa0(FaultSite::Stem(net)));
                faults.push(Fault::sa1(FaultSite::Stem(net)));
            }
        }
        FaultList { faults }
    }

    /// Structural equivalence collapsing of [`FaultList::all_lines`].
    ///
    /// Rules (applied transitively by union-find):
    ///
    /// 1. a gate-pin fault on a pin fed by a fanout-free stem is equivalent
    ///    to the stem fault of the same polarity;
    /// 2. a controlling-value fault on a gate input is equivalent to the
    ///    corresponding output stem fault (AND: in-0 ≡ out-0; NAND: in-0 ≡
    ///    out-1; OR: in-1 ≡ out-1; NOR: in-1 ≡ out-0);
    /// 3. NOT/BUF input faults are equivalent to output faults (with
    ///    polarity inversion for NOT).
    ///
    /// One representative per class is kept, preferring stems over pins.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn collapsed(c: &Circuit) -> Self {
        use crate::circuit::GateKind;

        // Universe indexing: stems first, then gate pins, ×2 polarities.
        let n_nets = c.num_nets();
        let mut pin_base = vec![0usize; c.num_gates()];
        let mut n_pins = 0usize;
        for (gid, gate) in c.iter_gates() {
            pin_base[gid.index()] = n_pins;
            n_pins += gate.inputs.len();
        }
        let stem_idx = |net: NetId, v: bool| net.index() * 2 + v as usize;
        let pin_idx = |g: GateId, pin: usize, v: bool| {
            n_nets * 2 + (pin_base[g.index()] + pin) * 2 + v as usize
        };
        let total = n_nets * 2 + n_pins * 2;

        let mut uf = UnionFind::new(total);

        for (gid, gate) in c.iter_gates() {
            for (pin, &inp) in gate.inputs.iter().enumerate() {
                // Rule 1: fanout-free branch ≡ stem.
                if c.fanout_count(inp) == 1 {
                    uf.union(pin_idx(gid, pin, false), stem_idx(inp, false));
                    uf.union(pin_idx(gid, pin, true), stem_idx(inp, true));
                }
                // Rules 2 and 3: input ≡ output.
                let out = gate.output;
                match gate.kind {
                    GateKind::And => uf.union(pin_idx(gid, pin, false), stem_idx(out, false)),
                    GateKind::Nand => uf.union(pin_idx(gid, pin, false), stem_idx(out, true)),
                    GateKind::Or => uf.union(pin_idx(gid, pin, true), stem_idx(out, true)),
                    GateKind::Nor => uf.union(pin_idx(gid, pin, true), stem_idx(out, false)),
                    GateKind::Not => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, true));
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, false));
                    }
                    GateKind::Buf => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, false));
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, true));
                    }
                    GateKind::Xor | GateKind::Xnor => {}
                }
            }
        }

        // Pick representatives: for each class, prefer the lowest stem.
        let mut rep: Vec<Option<Fault>> = vec![None; total];
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            for v in [false, true] {
                let root = uf.find(stem_idx(net, v));
                if rep[root].is_none() {
                    rep[root] = Some(Fault {
                        site: FaultSite::Stem(net),
                        stuck: v,
                    });
                }
            }
        }
        for (gid, gate) in c.iter_gates() {
            for pin in 0..gate.inputs.len() {
                for v in [false, true] {
                    let root = uf.find(pin_idx(gid, pin, v));
                    if rep[root].is_none() {
                        rep[root] = Some(Fault {
                            site: FaultSite::GatePin { gate: gid, pin },
                            stuck: v,
                        });
                    }
                }
            }
        }

        let mut faults: Vec<Fault> = rep.into_iter().flatten().collect();
        faults.sort();
        faults.dedup();
        FaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// Retains only the faults for which `keep` returns true.
    pub fn retain(&mut self, keep: impl FnMut(&Fault) -> bool) {
        self.faults.retain(keep);
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultList {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl IntoIterator for FaultList {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

/// Minimal union-find with path halving.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, keeping stems (low indices)
            // as class representatives.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;

    const C17: &str = r"
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn c17_checkpoints_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // 5 PIs (10 faults) + fanout branches of nets 3, 11, 16 (12 faults).
        assert_eq!(FaultList::checkpoints(&c).len(), 22);
    }

    #[test]
    fn c17_collapsed_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // The standard published collapsed fault count for c17.
        assert_eq!(FaultList::collapsed(&c).len(), 22);
    }

    #[test]
    fn c17_all_lines_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // 11 stems * 2 + 12 pins * 2.
        assert_eq!(FaultList::all_lines(&c).len(), 46);
    }

    #[test]
    fn describe_is_readable() {
        let c = bench_format::parse("c17", C17).unwrap();
        let fl = FaultList::checkpoints(&c);
        let texts: Vec<String> = fl.iter().map(|f| f.describe(&c)).collect();
        assert!(texts.iter().any(|t| t.contains("s-a-0")));
        assert!(texts.iter().any(|t| t.contains("s-a-1")));
    }

    #[test]
    fn collapsed_subset_of_universe() {
        let c = bench_format::parse("c17", C17).unwrap();
        let all = FaultList::all_lines(&c);
        let col = FaultList::collapsed(&c);
        assert!(col.len() < all.len());
        for f in &col {
            assert!(all.faults().contains(f));
        }
    }

    #[test]
    fn retain_and_collect() {
        let c = bench_format::parse("c17", C17).unwrap();
        let mut fl = FaultList::checkpoints(&c);
        let n = fl.len();
        fl.retain(|f| f.stuck);
        assert_eq!(fl.len(), n / 2);
        let back: FaultList = fl.iter().copied().collect();
        assert_eq!(back, fl);
    }
}
