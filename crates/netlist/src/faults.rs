//! Fault-model-agnostic fault enumeration and structural collapsing.
//!
//! A [`Fault`] is a model-tagged descriptor: the same structural
//! [`FaultSite`]s carry either single stuck-at faults or transition-delay
//! (gate-delay) faults, selected by [`FaultModel`]. Enumeration and
//! collapsing are per-model through [`FaultUniverse`]:
//!
//! * [`FaultUniverse::enumerate`] — the uncollapsed universe: both
//!   polarities on every stem (net) and on every gate input pin.
//! * [`FaultUniverse::collapsed`] — the universe reduced by structural
//!   equivalence. For stuck-at faults: fanout-free branch ≡ stem;
//!   controlling-value input ≡ output; inverter/buffer input ≡ output.
//!   For transition-delay faults the controlling-value rule is invalid
//!   (a delay fault needs a transition, not a static controlling value),
//!   so only the branch and inverter/buffer rules apply.
//! * [`FaultUniverse::checkpoints`] — the classic *checkpoint* set: both
//!   polarities on every primary input, every flip-flop output (pseudo
//!   primary input) and every fanout branch. This is the convention used by
//!   the sequential ATPG literature the reproduced paper builds on: it
//!   yields exactly 32 faults for ISCAS-89 `s27` (the paper's
//!   `f_0 … f_31`) and 22 for the combinational `c17`.
//!
//! The stuck-at constructors on [`FaultList`] (`all_lines`, `checkpoints`,
//! `collapsed`) remain as thin wrappers over the universe enumerator.
//!
//! Fault identity is positional: a [`Fault`] is meaningful only together
//! with the circuit and model it was enumerated from. Ordering is stable
//! across models — all stuck-at faults sort before all transition-delay
//! faults, then by site and polarity.

use std::fmt;

use crate::circuit::{Circuit, Driver, GateId, Load, NetId};

/// The structural location of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// On a net at its driver (affects every load).
    Stem(NetId),
    /// On one input pin of one gate (affects only that gate).
    GatePin {
        /// The consuming gate.
        gate: GateId,
        /// Zero-based pin position.
        pin: usize,
    },
    /// On the data input of the flip-flop with this index (affects only the
    /// value loaded into that flip-flop).
    DffData(usize),
}

/// A fault model: the behavioural interpretation of a [`FaultSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultModel {
    /// Single stuck-at faults: the site is permanently tied to a value.
    StuckAt,
    /// Transition-delay (gate-delay) faults: the site is slow to make one
    /// transition. A slow-to-rise fault holds the old `0` for one extra
    /// cycle whenever the fault-free value rises; dually for slow-to-fall.
    TransitionDelay,
}

impl FaultModel {
    /// Every supported model, in canonical (ordering) order.
    pub const ALL: [FaultModel; 2] = [FaultModel::StuckAt, FaultModel::TransitionDelay];

    /// Canonical CLI name: `stuck-at` or `transition`.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::StuckAt => "stuck-at",
            FaultModel::TransitionDelay => "transition",
        }
    }

    /// Parses a CLI name (`stuck-at`/`stuckat`/`sa`, `transition`/`td`).
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s {
            "stuck-at" | "stuckat" | "sa" => Some(FaultModel::StuckAt),
            "transition" | "transition-delay" | "td" => Some(FaultModel::TransitionDelay),
            _ => None,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single fault: a structural site interpreted under a fault model.
///
/// The derived ordering sorts all stuck-at faults before all
/// transition-delay faults, then by site, then by polarity — stable no
/// matter which models are mixed in one list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// The site is permanently stuck at `stuck`.
    StuckAt {
        /// Where the fault sits.
        site: FaultSite,
        /// The stuck value: `false` = stuck-at-0, `true` = stuck-at-1.
        stuck: bool,
    },
    /// The site is slow to transition to `slow_to`: whenever the
    /// fault-free value changes from `!slow_to` to `slow_to` between two
    /// consecutive cycles, the faulty machine still sees `!slow_to` in the
    /// capture cycle.
    TransitionDelay {
        /// Where the fault sits.
        site: FaultSite,
        /// The delayed destination value: `true` = slow-to-rise,
        /// `false` = slow-to-fall.
        slow_to: bool,
    },
}

impl Fault {
    /// Stuck-at-0 at `site`.
    pub fn sa0(site: FaultSite) -> Self {
        Fault::StuckAt { site, stuck: false }
    }

    /// Stuck-at-1 at `site`.
    pub fn sa1(site: FaultSite) -> Self {
        Fault::StuckAt { site, stuck: true }
    }

    /// Slow-to-rise transition-delay fault at `site`.
    pub fn slow_to_rise(site: FaultSite) -> Self {
        Fault::TransitionDelay {
            site,
            slow_to: true,
        }
    }

    /// Slow-to-fall transition-delay fault at `site`.
    pub fn slow_to_fall(site: FaultSite) -> Self {
        Fault::TransitionDelay {
            site,
            slow_to: false,
        }
    }

    /// Builds the fault of `model` at `site` with the given polarity
    /// (stuck value for stuck-at, destination value for transition-delay).
    pub fn of(model: FaultModel, site: FaultSite, polarity: bool) -> Self {
        match model {
            FaultModel::StuckAt => Fault::StuckAt {
                site,
                stuck: polarity,
            },
            FaultModel::TransitionDelay => Fault::TransitionDelay {
                site,
                slow_to: polarity,
            },
        }
    }

    /// The structural site the fault sits on.
    pub fn site(&self) -> FaultSite {
        match *self {
            Fault::StuckAt { site, .. } | Fault::TransitionDelay { site, .. } => site,
        }
    }

    /// The fault model this descriptor belongs to.
    pub fn model(&self) -> FaultModel {
        match self {
            Fault::StuckAt { .. } => FaultModel::StuckAt,
            Fault::TransitionDelay { .. } => FaultModel::TransitionDelay,
        }
    }

    /// The polarity bit: the stuck value for a stuck-at fault, the delayed
    /// destination value for a transition-delay fault.
    pub fn polarity(&self) -> bool {
        match *self {
            Fault::StuckAt { stuck, .. } => stuck,
            Fault::TransitionDelay { slow_to, .. } => slow_to,
        }
    }

    /// The same fault relocated to a different site (used when translating
    /// faults between structurally related circuits).
    pub fn with_site(&self, site: FaultSite) -> Self {
        Fault::of(self.model(), site, self.polarity())
    }

    /// The model-specific polarity suffix: `s-a-0`/`s-a-1` for stuck-at,
    /// `slow-to-rise`/`slow-to-fall` for transition-delay.
    fn kind_suffix(&self) -> &'static str {
        match *self {
            Fault::StuckAt { stuck: false, .. } => "s-a-0",
            Fault::StuckAt { stuck: true, .. } => "s-a-1",
            Fault::TransitionDelay { slow_to: true, .. } => "slow-to-rise",
            Fault::TransitionDelay { slow_to: false, .. } => "slow-to-fall",
        }
    }

    /// A named, displayable view resolving net names against `c`, e.g.
    /// `G11 s-a-1` or `G10<-G3' (pin 1) slow-to-rise`.
    pub fn display<'a>(&'a self, c: &'a Circuit) -> FaultDisplay<'a> {
        FaultDisplay { fault: self, c }
    }

    /// Human-readable description, e.g. `G11/G10.1 s-a-1`. Equivalent to
    /// `self.display(c).to_string()`.
    pub fn describe(&self, c: &Circuit) -> String {
        self.display(c).to_string()
    }
}

/// Circuit-free positional rendering: `net#4 s-a-1`, `pin#2.0
/// slow-to-fall`, `dff#1<-data s-a-0`. Use [`Fault::display`] for named
/// output.
impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site() {
            FaultSite::Stem(n) => write!(f, "net#{}", n.index())?,
            FaultSite::GatePin { gate, pin } => write!(f, "pin#{}.{pin}", gate.index())?,
            FaultSite::DffData(k) => write!(f, "dff#{k}<-data")?,
        }
        write!(f, " {}", self.kind_suffix())
    }
}

/// Display adapter produced by [`Fault::display`]: the fault with its net
/// names resolved against a circuit.
#[derive(Debug, Clone, Copy)]
pub struct FaultDisplay<'a> {
    fault: &'a Fault,
    c: &'a Circuit,
}

impl fmt::Display for FaultDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.c;
        match self.fault.site() {
            FaultSite::Stem(n) => write!(f, "{}", c.net_name(n))?,
            FaultSite::GatePin { gate, pin } => {
                let g = c.gate(gate);
                write!(
                    f,
                    "{}<-{}' (pin {pin})",
                    c.net_name(g.output),
                    c.net_name(g.inputs[pin]),
                )?;
            }
            FaultSite::DffData(k) => {
                write!(f, "DFF({})<-data", c.net_name(c.dffs()[k].q))?;
            }
        }
        write!(f, " {}", self.fault.kind_suffix())
    }
}

/// Per-model fault enumeration and collapsing over a circuit.
///
/// Every constructor takes the [`FaultModel`] first: the structural sites
/// are shared between models, the behavioural interpretation (and the set
/// of valid collapsing rules) is not.
#[derive(Debug, Clone, Copy)]
pub struct FaultUniverse;

impl FaultUniverse {
    /// The uncollapsed universe of `model`: both polarities on every stem
    /// and on every gate input pin. Constant-driven nets are skipped (a
    /// stuck fault on a tied line is undetectable or the tied value; a
    /// transition fault on a tied line can never launch).
    pub fn enumerate(model: FaultModel, c: &Circuit) -> FaultList {
        let mut faults = Vec::new();
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            faults.push(Fault::of(model, FaultSite::Stem(net), false));
            faults.push(Fault::of(model, FaultSite::Stem(net), true));
        }
        for (gid, gate) in c.iter_gates() {
            for pin in 0..gate.inputs.len() {
                let site = FaultSite::GatePin { gate: gid, pin };
                faults.push(Fault::of(model, site, false));
                faults.push(Fault::of(model, site, true));
            }
        }
        FaultList { faults }
    }

    /// The classic checkpoint fault set of `model`: both polarities on
    /// every primary input stem, every flip-flop output stem (pseudo
    /// primary input), and every fanout branch (each load of a stem with
    /// fanout ≥ 2; a stem that is also observed counts the observation as
    /// one of its loads and contributes its stem fault for it).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn checkpoints(model: FaultModel, c: &Circuit) -> FaultList {
        let mut faults = Vec::new();
        let mut push = |site: FaultSite| {
            faults.push(Fault::of(model, site, false));
            faults.push(Fault::of(model, site, true));
        };
        for &pi in c.inputs() {
            push(FaultSite::Stem(pi));
        }
        for dff in c.dffs() {
            push(FaultSite::Stem(dff.q));
        }
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            if c.fanout_count(net) < 2 {
                continue;
            }
            for load in c.loads(net) {
                let site = match *load {
                    Load::GatePin { gate, pin } => FaultSite::GatePin { gate, pin },
                    Load::DffData(k) => FaultSite::DffData(k),
                };
                push(site);
            }
            // The observation tap of an observed fanout stem is represented
            // by the stem fault itself — but only when the stem is not a
            // PI/FF output already enumerated above.
            let is_ppi = matches!(c.driver(net), Driver::Input(_) | Driver::Dff(_));
            let observed = c.observed_nets().any(|o| o == net);
            if observed && !is_ppi {
                push(FaultSite::Stem(net));
            }
        }
        FaultList { faults }
    }

    /// Structural equivalence collapsing of [`FaultUniverse::enumerate`].
    ///
    /// Rules (applied transitively by union-find):
    ///
    /// 1. a gate-pin fault on a pin fed by a fanout-free stem is equivalent
    ///    to the stem fault of the same polarity;
    /// 2. **stuck-at only** — a controlling-value fault on a gate input is
    ///    equivalent to the corresponding output stem fault (AND: in-0 ≡
    ///    out-0; NAND: in-0 ≡ out-1; OR: in-1 ≡ out-1; NOR: in-1 ≡ out-0);
    /// 3. NOT/BUF input faults are equivalent to output faults (with
    ///    polarity inversion for NOT — an input slow-to-rise delays the
    ///    output's fall).
    ///
    /// One representative per class is kept, preferring stems over pins.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn collapsed(model: FaultModel, c: &Circuit) -> FaultList {
        use crate::circuit::GateKind;

        // Universe indexing: stems first, then gate pins, ×2 polarities.
        let n_nets = c.num_nets();
        let mut pin_base = vec![0usize; c.num_gates()];
        let mut n_pins = 0usize;
        for (gid, gate) in c.iter_gates() {
            pin_base[gid.index()] = n_pins;
            n_pins += gate.inputs.len();
        }
        let stem_idx = |net: NetId, v: bool| net.index() * 2 + v as usize;
        let pin_idx = |g: GateId, pin: usize, v: bool| {
            n_nets * 2 + (pin_base[g.index()] + pin) * 2 + v as usize
        };
        let total = n_nets * 2 + n_pins * 2;

        let mut uf = UnionFind::new(total);
        let controlling = model == FaultModel::StuckAt;

        for (gid, gate) in c.iter_gates() {
            for (pin, &inp) in gate.inputs.iter().enumerate() {
                // Rule 1: fanout-free branch ≡ stem.
                if c.fanout_count(inp) == 1 {
                    uf.union(pin_idx(gid, pin, false), stem_idx(inp, false));
                    uf.union(pin_idx(gid, pin, true), stem_idx(inp, true));
                }
                // Rules 2 (stuck-at only) and 3: input ≡ output.
                let out = gate.output;
                match gate.kind {
                    GateKind::And if controlling => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, false));
                    }
                    GateKind::Nand if controlling => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, true));
                    }
                    GateKind::Or if controlling => {
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, true));
                    }
                    GateKind::Nor if controlling => {
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, false));
                    }
                    GateKind::Not => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, true));
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, false));
                    }
                    GateKind::Buf => {
                        uf.union(pin_idx(gid, pin, false), stem_idx(out, false));
                        uf.union(pin_idx(gid, pin, true), stem_idx(out, true));
                    }
                    _ => {}
                }
            }
        }

        // Pick representatives: for each class, prefer the lowest stem.
        let mut rep: Vec<Option<Fault>> = vec![None; total];
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            if matches!(c.driver(net), Driver::Const(_)) {
                continue;
            }
            for v in [false, true] {
                let root = uf.find(stem_idx(net, v));
                if rep[root].is_none() {
                    rep[root] = Some(Fault::of(model, FaultSite::Stem(net), v));
                }
            }
        }
        for (gid, gate) in c.iter_gates() {
            for pin in 0..gate.inputs.len() {
                for v in [false, true] {
                    let root = uf.find(pin_idx(gid, pin, v));
                    if rep[root].is_none() {
                        rep[root] =
                            Some(Fault::of(model, FaultSite::GatePin { gate: gid, pin }, v));
                    }
                }
            }
        }

        let mut faults: Vec<Fault> = rep.into_iter().flatten().collect();
        faults.sort();
        faults.dedup();
        FaultList { faults }
    }
}

/// An ordered list of target faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Builds a fault list from explicit faults.
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultList { faults }
    }

    /// Stuck-at shorthand for [`FaultUniverse::enumerate`].
    pub fn all_lines(c: &Circuit) -> Self {
        FaultUniverse::enumerate(FaultModel::StuckAt, c)
    }

    /// Stuck-at shorthand for [`FaultUniverse::checkpoints`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn checkpoints(c: &Circuit) -> Self {
        FaultUniverse::checkpoints(FaultModel::StuckAt, c)
    }

    /// Stuck-at shorthand for [`FaultUniverse::collapsed`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn collapsed(c: &Circuit) -> Self {
        FaultUniverse::collapsed(FaultModel::StuckAt, c)
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// Retains only the faults for which `keep` returns true.
    pub fn retain(&mut self, keep: impl FnMut(&Fault) -> bool) {
        self.faults.retain(keep);
    }

    /// Whether any fault in the list belongs to `model`.
    pub fn has_model(&self, model: FaultModel) -> bool {
        self.faults.iter().any(|f| f.model() == model)
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultList {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl IntoIterator for FaultList {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

/// Minimal union-find with path halving.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, keeping stems (low indices)
            // as class representatives.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;

    const C17: &str = r"
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn c17_checkpoints_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // 5 PIs (10 faults) + fanout branches of nets 3, 11, 16 (12 faults).
        assert_eq!(FaultList::checkpoints(&c).len(), 22);
        // The checkpoint *sites* are model-independent.
        assert_eq!(
            FaultUniverse::checkpoints(FaultModel::TransitionDelay, &c).len(),
            22
        );
    }

    #[test]
    fn c17_collapsed_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // The standard published collapsed fault count for c17.
        assert_eq!(FaultList::collapsed(&c).len(), 22);
    }

    #[test]
    fn c17_transition_collapsed_drops_controlling_rule() {
        let c = bench_format::parse("c17", C17).unwrap();
        let td = FaultUniverse::collapsed(FaultModel::TransitionDelay, &c);
        // Only the fanout-free-branch rule fires on c17 (no NOT/BUF): the
        // 6 fanout-free pins merge into their stems, 46 - 12 = 34.
        assert_eq!(td.len(), 34);
        assert!(td.len() > FaultList::collapsed(&c).len());
        assert!(td.iter().all(|f| f.model() == FaultModel::TransitionDelay));
    }

    #[test]
    fn c17_all_lines_count() {
        let c = bench_format::parse("c17", C17).unwrap();
        // 11 stems * 2 + 12 pins * 2.
        assert_eq!(FaultList::all_lines(&c).len(), 46);
        assert_eq!(
            FaultUniverse::enumerate(FaultModel::TransitionDelay, &c).len(),
            46
        );
    }

    #[test]
    fn describe_is_readable() {
        let c = bench_format::parse("c17", C17).unwrap();
        let fl = FaultList::checkpoints(&c);
        let texts: Vec<String> = fl.iter().map(|f| f.describe(&c)).collect();
        assert!(texts.iter().any(|t| t.contains("s-a-0")));
        assert!(texts.iter().any(|t| t.contains("s-a-1")));
        let td = FaultUniverse::checkpoints(FaultModel::TransitionDelay, &c);
        let texts: Vec<String> = td.iter().map(|f| f.describe(&c)).collect();
        assert!(texts.iter().any(|t| t.contains("slow-to-rise")));
        assert!(texts.iter().any(|t| t.contains("slow-to-fall")));
    }

    #[test]
    fn display_is_circuit_free_and_stable() {
        use crate::circuit::NetId;
        let f = Fault::sa1(FaultSite::Stem(NetId::from_index(4)));
        assert_eq!(f.to_string(), "net#4 s-a-1");
        let g = Fault::slow_to_fall(FaultSite::DffData(1));
        assert_eq!(g.to_string(), "dff#1<-data slow-to-fall");
    }

    #[test]
    fn ordering_is_stable_across_models() {
        use crate::circuit::NetId;
        let site_lo = FaultSite::Stem(NetId::from_index(0));
        let site_hi = FaultSite::DffData(9);
        // Every stuck-at fault sorts before every transition fault.
        assert!(Fault::sa1(site_hi) < Fault::slow_to_fall(site_lo));
        // Within a model: by site, then polarity.
        assert!(Fault::sa0(site_lo) < Fault::sa1(site_lo));
        assert!(Fault::slow_to_fall(site_lo) < Fault::slow_to_rise(site_lo));
    }

    #[test]
    fn accessors_round_trip() {
        let site = FaultSite::GatePin {
            gate: crate::circuit::GateId(3),
            pin: 1,
        };
        for model in FaultModel::ALL {
            for v in [false, true] {
                let f = Fault::of(model, site, v);
                assert_eq!(f.model(), model);
                assert_eq!(f.site(), site);
                assert_eq!(f.polarity(), v);
                assert_eq!(f.with_site(site), f);
            }
        }
        assert_eq!(FaultModel::parse("stuck-at"), Some(FaultModel::StuckAt));
        assert_eq!(
            FaultModel::parse("transition"),
            Some(FaultModel::TransitionDelay)
        );
        assert_eq!(FaultModel::parse("bridging"), None);
    }

    #[test]
    fn collapsed_subset_of_universe() {
        let c = bench_format::parse("c17", C17).unwrap();
        let all = FaultList::all_lines(&c);
        let col = FaultList::collapsed(&c);
        assert!(col.len() < all.len());
        for f in &col {
            assert!(all.faults().contains(f));
        }
    }

    #[test]
    fn retain_and_collect() {
        let c = bench_format::parse("c17", C17).unwrap();
        let mut fl = FaultList::checkpoints(&c);
        let n = fl.len();
        fl.retain(|f| f.polarity());
        assert_eq!(fl.len(), n / 2);
        let back: FaultList = fl.iter().copied().collect();
        assert_eq!(back, fl);
    }
}
