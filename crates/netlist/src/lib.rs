//! Gate-level synchronous sequential netlist intermediate representation.
//!
//! This crate provides the circuit substrate used by every other `wbist`
//! crate: a compact gate-level IR for synchronous sequential circuits in the
//! style of the ISCAS-89 benchmarks, together with
//!
//! * a parser and writer for the ISCAS-89 `.bench` netlist format
//!   ([`bench_format`]),
//! * levelization (topological ordering of the combinational core) with
//!   combinational-loop detection ([`Circuit::levelize`]),
//! * single stuck-at fault enumeration on checkpoint lines and structural
//!   fault collapsing ([`faults`]),
//! * support for *observation points* — extra observed internal lines used
//!   by the observation-point insertion experiments of the reproduced paper.
//!
//! # Example
//!
//! ```
//! use wbist_netlist::{Circuit, GateKind};
//!
//! # fn main() -> Result<(), wbist_netlist::NetlistError> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let q = c.add_dff("q", None)?;
//! let g = c.add_gate(GateKind::Nand, "g", &[a, q])?;
//! c.connect_dff_data(q, g)?;
//! c.add_gate(GateKind::Xor, "y", &[g, b])?;
//! c.mark_output(c.net_by_name("y").unwrap());
//! let c = c.levelize()?;
//! assert_eq!(c.num_inputs(), 2);
//! assert_eq!(c.num_dffs(), 1);
//! # Ok(())
//! # }
//! ```

pub mod bench_format;
pub mod circuit;
pub mod error;
pub mod faults;
pub mod stats;
pub mod transform;

pub use circuit::{Circuit, Dff, Driver, Gate, GateId, GateKind, Load, NetId};
pub use error::NetlistError;
pub use faults::{Fault, FaultDisplay, FaultList, FaultModel, FaultSite, FaultUniverse};
pub use stats::{circuit_stats, CircuitStats};
