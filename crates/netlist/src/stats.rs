//! Structural statistics of a circuit.
//!
//! Used by the experiment reports and the CLI to characterize circuits:
//! combinational depth, fanout distribution, gate-kind mix, and the
//! sequential structure (how many flip-flops sit on feedback paths).

use crate::circuit::{Circuit, Driver, GateKind, Load, NetId};
use std::collections::HashMap;
use std::fmt;

/// Structural statistics of one circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Gate count per kind.
    pub kind_histogram: Vec<(GateKind, usize)>,
    /// Longest combinational path, in gates (0 for gateless circuits).
    pub depth: usize,
    /// Largest fanout of any net.
    pub max_fanout: usize,
    /// Nets with fanout of at least 2 (the fanout stems — checkpoint
    /// branch sites).
    pub fanout_stems: usize,
    /// Total gate input pins (a literal-count area proxy).
    pub literals: usize,
    /// Flip-flops whose state feeds back (transitively) into their own
    /// next-state logic — the hard sequential core.
    pub feedback_dffs: usize,
}

/// Computes the statistics of a levelized circuit.
///
/// # Panics
///
/// Panics if the circuit has not been levelized.
pub fn circuit_stats(c: &Circuit) -> CircuitStats {
    assert!(c.is_levelized(), "circuit must be levelized");

    let mut kind_counts: HashMap<GateKind, usize> = HashMap::new();
    for (_, g) in c.iter_gates() {
        *kind_counts.entry(g.kind).or_insert(0) += 1;
    }
    let mut kind_histogram: Vec<(GateKind, usize)> = kind_counts.into_iter().collect();
    kind_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.as_str().cmp(b.0.as_str())));

    // Depth: longest gate chain, via the topological order.
    let mut net_depth = vec![0usize; c.num_nets()];
    let mut depth = 0;
    for &gid in c.topo_gates() {
        let g = c.gate(gid);
        let d = 1 + g
            .inputs
            .iter()
            .map(|&i| net_depth[i.index()])
            .max()
            .unwrap_or(0);
        net_depth[g.output.index()] = d;
        depth = depth.max(d);
    }

    let mut max_fanout = 0;
    let mut fanout_stems = 0;
    for idx in 0..c.num_nets() {
        let f = c.fanout_count(NetId::from_index(idx));
        max_fanout = max_fanout.max(f);
        if f >= 2 {
            fanout_stems += 1;
        }
    }

    CircuitStats {
        inputs: c.num_inputs(),
        outputs: c.num_outputs(),
        dffs: c.num_dffs(),
        gates: c.num_gates(),
        kind_histogram,
        depth,
        max_fanout,
        fanout_stems,
        literals: c.literal_count(),
        feedback_dffs: feedback_dffs(c),
    }
}

/// Counts flip-flops on structural feedback paths: FF `k` is a feedback
/// FF when its output can reach its own data input through the
/// combinational logic and other flip-flops.
fn feedback_dffs(c: &Circuit) -> usize {
    // Reachability over the directed graph net -> loads' outputs,
    // crossing flip-flops (Q is reached from D).
    let reaches_self = |start: NetId, target_d: NetId| -> bool {
        let mut seen = vec![false; c.num_nets()];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if n == target_d {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            for load in c.loads(n) {
                match *load {
                    Load::GatePin { gate, .. } => stack.push(c.gate(gate).output),
                    Load::DffData(k) => stack.push(c.dffs()[k].q),
                }
            }
        }
        false
    };
    c.dffs()
        .iter()
        .filter(|dff| {
            let d = dff.d.expect("levelized circuits have connected DFFs");
            // From Q, can we reach the net driving D (or D's driver)?
            reaches_self(dff.q, d)
        })
        .count()
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} inputs, {} outputs, {} flip-flops ({} on feedback), {} gates",
            self.inputs, self.outputs, self.dffs, self.feedback_dffs, self.gates
        )?;
        writeln!(
            f,
            "depth {}, max fanout {}, {} fanout stems, {} literals",
            self.depth, self.max_fanout, self.fanout_stems, self.literals
        )?;
        write!(f, "gate mix:")?;
        for (kind, n) in &self.kind_histogram {
            write!(f, " {kind}:{n}")?;
        }
        Ok(())
    }
}

/// Marks whether a net is driven by combinational logic (as opposed to a
/// PI, flip-flop or constant) — a helper several reports use.
pub fn is_combinational(c: &Circuit, net: NetId) -> bool {
    matches!(c.driver(net), Driver::Gate(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;

    const TOY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n";

    #[test]
    fn toy_stats() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let s = circuit_stats(&c);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.depth, 2, "NAND then XOR");
        assert_eq!(s.literals, 4);
        assert_eq!(s.feedback_dffs, 1, "q feeds the NAND that drives it");
        // g drives both the XOR and the DFF.
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.fanout_stems, 1);
    }

    #[test]
    fn s27_like_shape() {
        let c = bench_format::parse(
            "ff_chain",
            "INPUT(a)\nOUTPUT(y)\nq0 = DFF(a)\nq1 = DFF(q0)\ny = BUFF(q1)\n",
        )
        .unwrap();
        let s = circuit_stats(&c);
        assert_eq!(s.dffs, 2);
        assert_eq!(s.feedback_dffs, 0, "a pure shift chain has no feedback");
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn kind_histogram_sorted() {
        let c = bench_format::parse(
            "mix",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = AND(a, b)\nn2 = AND(a, n1)\ny = OR(n1, n2)\n",
        )
        .unwrap();
        let s = circuit_stats(&c);
        assert_eq!(s.kind_histogram[0], (GateKind::And, 2));
        assert_eq!(s.kind_histogram[1], (GateKind::Or, 1));
    }

    #[test]
    fn display_is_informative() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let text = circuit_stats(&c).to_string();
        assert!(text.contains("2 inputs"));
        assert!(text.contains("depth 2"));
        assert!(text.contains("NAND:1"));
    }
}
