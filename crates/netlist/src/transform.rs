//! Netlist transformations for design-for-testability experiments.
//!
//! The observation-point experiments of the reproduced paper treat an
//! observation point as an ideal extra output. On silicon, observation
//! points are usually made cheap by XOR-compacting several observed
//! lines into a single added output. This module provides both:
//!
//! * [`add_ideal_observation_points`] — one observation tap per line
//!   (what the paper's tables assume);
//! * [`add_xor_observation_tree`] — a single extra primary output
//!   computing the XOR of all observed lines (real-hardware style, with
//!   the possibility of *masking*: two simultaneous errors cancel).
//!
//! The fault-coverage difference between the two variants quantifies the
//! price of compaction and is exercised by the `obs_tables` experiments.

use crate::circuit::{Circuit, GateKind, NetId};
use crate::error::NetlistError;

/// Returns a copy of `c` with ideal observation points on `lines`
/// (levelized). Lines that are already primary outputs are skipped.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownNet`] if a line index is out of range.
pub fn add_ideal_observation_points(c: &Circuit, lines: &[NetId]) -> Result<Circuit, NetlistError> {
    for &n in lines {
        if n.index() >= c.num_nets() {
            return Err(NetlistError::UnknownNet { index: n.index() });
        }
    }
    let out = c.with_observation_points(lines);
    out.levelize()
}

/// Returns a copy of `c` with one extra primary output `obs_xor` that
/// computes the XOR of all `lines` (levelized). With an even number of
/// simultaneously erroneous lines the tree masks the error — the
/// realistic trade-off of compacted observation.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownNet`] if a line index is out of range,
/// or [`NetlistError::DuplicateDriver`] if the circuit already has a net
/// named `obs_xor`.
///
/// # Panics
///
/// Panics if `lines` is empty.
pub fn add_xor_observation_tree(c: &Circuit, lines: &[NetId]) -> Result<Circuit, NetlistError> {
    assert!(!lines.is_empty(), "need at least one observed line");
    for &n in lines {
        if n.index() >= c.num_nets() {
            return Err(NetlistError::UnknownNet { index: n.index() });
        }
    }
    let mut out = c.clone();
    let tree = out.add_gate(GateKind::Xor, "obs_xor", lines)?;
    out.mark_output(tree);
    out.levelize()
}

/// Returns the full-scan view of `c`: every flip-flop is removed, its
/// output becomes an extra primary input (the scanned-in state) and its
/// data input becomes an extra primary output (the captured next state).
/// The result is the *combinational core* a scan-BIST scheme tests one
/// time frame at a time — the class of methods (\[20\]-\[22\] in the paper)
/// the weighted-sequence scheme avoids, at the price of per-flip-flop
/// mux hardware and routing the paper's introduction discusses.
///
/// All pre-existing nets and gates keep their ids, so fault lists
/// enumerated on `c` remain valid on the scan view.
///
/// # Errors
///
/// Returns a [`NetlistError`] if reconstruction fails (cannot happen for
/// a levelized input).
pub fn full_scan(c: &Circuit) -> Result<Circuit, NetlistError> {
    let mut out = Circuit::new(format!("{}_scan", c.name()));
    // Recreate nets in identical order so NetIds survive. Net order in a
    // circuit follows first-mention order; we mention every net by name
    // in index order before driving anything.
    for idx in 0..c.num_nets() {
        out.declare_net(c.net_name(crate::circuit::NetId::from_index(idx)));
    }
    // Drive the nets: PIs stay PIs, DFF outputs become scan inputs,
    // gates are recreated in creation order (preserving GateIds).
    for &pi in c.inputs() {
        out.try_add_input(c.net_name(pi))?;
    }
    for dff in c.dffs() {
        out.try_add_input(c.net_name(dff.q))?;
    }
    for idx in 0..c.num_nets() {
        let net = crate::circuit::NetId::from_index(idx);
        if let crate::circuit::Driver::Const(v) = c.driver(net) {
            out.add_const(c.net_name(net), v)?;
        }
    }
    for (_, g) in c.iter_gates() {
        out.add_gate(g.kind, c.net_name(g.output), &g.inputs)?;
    }
    for &po in c.outputs() {
        out.mark_output(po);
    }
    // Captured next-state values are observable through the scan chain.
    for dff in c.dffs() {
        out.mark_output(dff.d.expect("levelized circuits have connected DFFs"));
    }
    out.levelize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;
    use crate::faults::FaultList;

    const TOY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n";

    #[test]
    fn ideal_points_become_observed() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let g = c.net_by_name("g").unwrap();
        let c2 = add_ideal_observation_points(&c, &[g]).unwrap();
        assert_eq!(c2.observation_points(), &[g]);
        assert_eq!(c2.observed_nets().count(), 2);
        // The gate structure is untouched.
        assert_eq!(c2.num_gates(), c.num_gates());
    }

    #[test]
    fn xor_tree_adds_one_gate_and_output() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let g = c.net_by_name("g").unwrap();
        let q = c.net_by_name("q").unwrap();
        let c2 = add_xor_observation_tree(&c, &[g, q]).unwrap();
        assert_eq!(c2.num_gates(), c.num_gates() + 1);
        assert_eq!(c2.num_outputs(), c.num_outputs() + 1);
        assert!(c2.net_by_name("obs_xor").is_some());
    }

    #[test]
    fn observation_points_change_fault_universe() {
        // Checkpoint enumeration counts the new observation tap.
        let c = bench_format::parse("toy", TOY).unwrap();
        let g = c.net_by_name("g").unwrap();
        let before = FaultList::checkpoints(&c).len();
        let c2 = add_ideal_observation_points(&c, &[g]).unwrap();
        let after = FaultList::checkpoints(&c2).len();
        assert!(after >= before);
    }

    #[test]
    fn out_of_range_line_rejected() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let bogus = NetId::from_index(999);
        assert!(matches!(
            add_ideal_observation_points(&c, &[bogus]),
            Err(NetlistError::UnknownNet { index: 999 })
        ));
        assert!(add_xor_observation_tree(&c, &[bogus]).is_err());
    }

    #[test]
    fn full_scan_preserves_ids_and_exposes_state() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let s = full_scan(&c).unwrap();
        assert_eq!(s.num_dffs(), 0);
        assert_eq!(s.num_inputs(), c.num_inputs() + c.num_dffs());
        assert_eq!(s.num_outputs(), c.num_outputs() + c.num_dffs());
        assert_eq!(s.num_gates(), c.num_gates());
        // Net and gate ids survive.
        for idx in 0..c.num_nets() {
            let net = NetId::from_index(idx);
            assert_eq!(c.net_name(net), s.net_name(net));
        }
        for (gid, g) in c.iter_gates() {
            assert_eq!(s.gate(gid).kind, g.kind);
            assert_eq!(s.gate(gid).inputs, g.inputs);
        }
        // The DFF's q net is now a PI; its d net is now observed.
        let q = s.net_by_name("q").unwrap();
        assert!(matches!(s.driver(q), crate::circuit::Driver::Input(_)));
        let g = s.net_by_name("g").unwrap();
        assert!(s.outputs().contains(&g), "captured next state observable");
    }

    #[test]
    fn full_scan_keeps_fault_lists_valid() {
        let c = bench_format::parse("toy", TOY).unwrap();
        let s = full_scan(&c).unwrap();
        // Stem and gate-pin faults of the original can be described
        // against the scan view (ids remain meaningful). DFF-data faults
        // have no direct counterpart — the flip-flops are gone.
        for f in &FaultList::checkpoints(&c) {
            if !matches!(f.site(), crate::faults::FaultSite::DffData(_)) {
                let _ = f.describe(&s);
            }
        }
    }

    #[test]
    fn transforms_do_not_disturb_existing_structure() {
        // Behavioural comparison of ideal vs XOR-tree observation lives
        // in the cross-crate integration tests (the simulator sits above
        // this crate in the dependency order); here we check structure.
        let c = bench_format::parse("toy", TOY).unwrap();
        let g = c.net_by_name("g").unwrap();
        let ideal = add_ideal_observation_points(&c, &[g]).unwrap();
        let tree = add_xor_observation_tree(&c, &[g]).unwrap();
        assert_eq!(ideal.num_inputs(), c.num_inputs());
        assert_eq!(tree.num_inputs(), c.num_inputs());
        assert_eq!(ideal.outputs(), c.outputs());
        assert!(ideal.is_levelized() && tree.is_levelized());
    }
}
