//! Property-based tests for the netlist layer: random valid circuits
//! must levelize, round-trip through `.bench`, and keep their fault
//! lists consistent.

use proptest::prelude::*;
use wbist_netlist::{bench_format, circuit_stats, Circuit, FaultList, GateKind};

/// A recipe for one random, always-valid circuit.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    num_dffs: usize,
    gates: Vec<(u8, Vec<usize>)>, // (kind selector, input picks)
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (1usize..5, 0usize..4, 1usize..4).prop_flat_map(|(num_inputs, num_dffs, num_outputs)| {
        prop::collection::vec(
            (0u8..8, prop::collection::vec(0usize..10_000, 1..4)),
            num_outputs.max(num_dffs * 2).max(2)..24,
        )
        .prop_map(move |gates| Recipe {
            num_inputs,
            num_dffs,
            gates,
            num_outputs,
        })
    })
}

/// Builds the circuit for a recipe. Construction only ever picks
/// already-existing nets as gate inputs, so the result is always valid.
fn build(recipe: &Recipe) -> Circuit {
    let mut c = Circuit::new("prop");
    let mut pool = Vec::new();
    for i in 0..recipe.num_inputs {
        pool.push(c.add_input(&format!("i{i}")));
    }
    let mut dffs = Vec::new();
    for k in 0..recipe.num_dffs {
        let q = c.add_dff(&format!("q{k}"), None).expect("fresh");
        dffs.push(q);
        pool.push(q);
    }
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut outputs = Vec::new();
    for (gi, (ksel, picks)) in recipe.gates.iter().enumerate() {
        let kind = kinds[*ksel as usize % kinds.len()];
        let fanin = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            picks.len()
        };
        let inputs: Vec<_> = (0..fanin)
            .map(|k| pool[picks[k % picks.len()] % pool.len()])
            .collect();
        let out = c
            .add_gate(kind, &format!("g{gi}"), &inputs)
            .expect("fresh names");
        pool.push(out);
        outputs.push(out);
    }
    for (k, &q) in dffs.iter().enumerate() {
        // Feed each DFF from a distinct late gate.
        let src = outputs[outputs.len() - 1 - (k % outputs.len())];
        c.connect_dff_data(q, src).expect("q is a DFF");
    }
    for k in 0..recipe.num_outputs {
        c.mark_output(outputs[outputs.len() - 1 - (k % outputs.len())]);
    }
    c.levelize().expect("recipe circuits are valid")
}

proptest! {
    #[test]
    fn recipes_levelize_and_roundtrip(recipe in arb_recipe()) {
        let c = build(&recipe);
        // Topological order respects dependencies.
        let topo = c.topo_gates();
        prop_assert_eq!(topo.len(), c.num_gates());
        let mut pos = vec![usize::MAX; c.num_gates()];
        for (i, g) in topo.iter().enumerate() {
            pos[g.index()] = i;
        }
        for (gid, g) in c.iter_gates() {
            for &inp in &g.inputs {
                if let wbist_netlist::Driver::Gate(src) = c.driver(inp) {
                    prop_assert!(pos[src.index()] < pos[gid.index()]);
                }
            }
        }
        // Round-trip.
        let text = bench_format::write(&c);
        let c2 = bench_format::parse("rt", &text).expect("roundtrip parses");
        prop_assert_eq!(c.num_gates(), c2.num_gates());
        prop_assert_eq!(c.num_dffs(), c2.num_dffs());
        prop_assert_eq!(c.num_inputs(), c2.num_inputs());
        prop_assert_eq!(c.num_outputs(), c2.num_outputs());
    }

    #[test]
    fn mutated_bench_text_never_panics(
        recipe in arb_recipe(),
        edits in prop::collection::vec((0usize..10_000, 0u8..=255), 0..8),
        cut in 0usize..10_000,
    ) {
        // Corrupt valid `.bench` text with byte substitutions and a
        // truncation: the parser must return a typed error (or a valid
        // circuit), never panic.
        let c = build(&recipe);
        let mut bytes = bench_format::write(&c).into_bytes();
        for &(pos, byte) in &edits {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] = byte;
            }
        }
        bytes.truncate(cut % (bytes.len() + 1));
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = bench_format::parse("mutated", &mutated) {
            // Errors render, and parse errors carry a line number
            // inside the mutated text.
            let msg = e.to_string();
            prop_assert!(!msg.is_empty());
            if let wbist_netlist::NetlistError::Parse { line, .. } = e {
                prop_assert!(line <= mutated.lines().count());
            }
        }
    }

    #[test]
    fn fault_lists_are_consistent(recipe in arb_recipe()) {
        let c = build(&recipe);
        let all = FaultList::all_lines(&c);
        let collapsed = FaultList::collapsed(&c);
        let checkpoints = FaultList::checkpoints(&c);
        prop_assert!(collapsed.len() <= all.len());
        prop_assert!(checkpoints.len() <= all.len());
        // Both polarities per site in the universe → even count.
        prop_assert_eq!(all.len() % 2, 0);
        // Every collapsed representative is a member of the universe.
        for f in &collapsed {
            prop_assert!(all.faults().contains(f));
        }
    }

    #[test]
    fn stats_agree_with_structure(recipe in arb_recipe()) {
        let c = build(&recipe);
        let s = circuit_stats(&c);
        prop_assert_eq!(s.inputs, c.num_inputs());
        prop_assert_eq!(s.gates, c.num_gates());
        prop_assert_eq!(s.dffs, c.num_dffs());
        prop_assert!(s.depth <= c.num_gates());
        prop_assert_eq!(s.literals, c.literal_count());
        prop_assert!(s.feedback_dffs <= s.dffs);
        let kinds_total: usize = s.kind_histogram.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(kinds_total, c.num_gates());
    }

    #[test]
    fn full_scan_is_combinational_and_id_preserving(recipe in arb_recipe()) {
        let c = build(&recipe);
        let s = wbist_netlist::transform::full_scan(&c).expect("converts");
        prop_assert_eq!(s.num_dffs(), 0);
        prop_assert_eq!(s.num_gates(), c.num_gates());
        prop_assert_eq!(s.num_inputs(), c.num_inputs() + c.num_dffs());
        for idx in 0..c.num_nets() {
            let net = wbist_netlist::NetId::from_index(idx);
            prop_assert_eq!(c.net_name(net), s.net_name(net));
        }
    }
}
