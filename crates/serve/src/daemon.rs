//! The `wbist serve` daemon: workers, preemption, drain, signals.
//!
//! A [`Server`] owns the circuit [`Registry`] and the fair
//! [`Scheduler`], plus the job
//! table. Worker threads pop job ids from the scheduler and execute
//! them under per-job cancel tokens with panic isolation; the request
//! loop ([`serve`]) feeds lines from stdin (or a Unix socket) into
//! [`Server::handle_line`] and polls the SIGTERM flag between lines.
//!
//! The resilience invariants (checked by `tests/serve_e2e.rs` and the
//! `serve-resilience` CI job):
//!
//! * a job preempted to its `wbist-ckpt/v1` checkpoint and resumed
//!   later commits a result bit-identical to an uninterrupted run;
//! * a panicking job never takes the daemon down — it is retried with
//!   backoff up to the retry budget, then marked `failed`;
//! * admission control sheds fresh submissions with a structured
//!   `retry_after_ms` rejection instead of queueing without bound;
//! * SIGTERM (or `{"op":"shutdown"}`) drains running jobs to their
//!   checkpoints and exits 0, or 2 when work was left resumable.

use crate::job::{JobRecord, JobState};
use crate::protocol::{self, JobKind, JobSpec, Request};
use crate::registry::Registry;
use crate::scheduler::Scheduler;
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use wbist_core::{
    run_synthesis_job, Outcome, ResumePolicy, RunControl, SynthesisConfig, SynthesisResult,
};
use wbist_netlist::FaultList;
use wbist_sim::{CancelToken, FaultSim, RunOptions, TestSequence, TruncationReason};
use wbist_telemetry::json::Json;
use wbist_telemetry::{failpoint, Telemetry};

/// A job preempted this many times is immune to further *automatic*
/// preemption — a livelock guard so a long job eventually finishes even
/// under constant queue pressure. Explicit `evict` requests still work.
const EVICTION_CAP: u32 = 8;

/// Upper bound on the exponential retry backoff.
const MAX_BACKOFF_MS: u64 = 250;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Simulator threads per job (`SimOptions` thread count).
    pub job_threads: usize,
    /// Queue depth beyond which fresh submissions are shed.
    pub max_queue: usize,
    /// Transient-failure retries per job before `failed`.
    pub retry_max: u32,
    /// Base backoff before a retry re-queues (doubles per retry, capped
    /// at 250 ms).
    pub retry_backoff_ms: u64,
    /// Preempt a running evictable job once it has held a worker this
    /// long while other work queues. `None` disables auto-preemption
    /// (explicit `evict` requests still work).
    pub evict_after_ms: Option<u64>,
    /// Directory for `<job-id>.ckpt` checkpoint files. `None` disables
    /// checkpointing — synth jobs then run non-evictable.
    pub ckpt_dir: Option<PathBuf>,
    /// Whether [`serve`] installs a SIGTERM handler (tests pass false).
    pub handle_signals: bool,
    /// Daemon-wide telemetry; `serve.*` counters land here.
    pub telemetry: Telemetry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            job_threads: 1,
            max_queue: 16,
            retry_max: 2,
            retry_backoff_ms: 10,
            evict_after_ms: None,
            ckpt_dir: None,
            handle_signals: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// What the request loop should do after a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading requests.
    Continue,
    /// Begin the graceful drain.
    Shutdown,
}

/// How a [`serve`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitSummary {
    /// Attempts that entered `Running` over the daemon's lifetime.
    pub attempts: u64,
    /// Jobs drained to a checkpoint at shutdown (terminal `evicted`).
    pub evicted_at_shutdown: u64,
    /// Jobs still queued (never started) when the daemon stopped.
    pub left_queued: u64,
    /// `true` when resumable work was left behind — the daemon's
    /// "valid partial output" condition, reported as exit code 2.
    pub truncated: bool,
}

/// The daemon state shared by the request loop and the workers.
pub struct Server {
    cfg: ServeConfig,
    registry: Registry,
    sched: Scheduler,
    jobs: Mutex<BTreeMap<String, Arc<Mutex<JobRecord>>>>,
    out: Mutex<Box<dyn Write + Send>>,
    tel: Telemetry,
    running: AtomicU64,
    attempts: AtomicU64,
    draining: AtomicBool,
}

impl Server {
    /// A new daemon writing events to `out`.
    pub fn new(cfg: ServeConfig, out: Box<dyn Write + Send>) -> Arc<Server> {
        let tel = cfg.telemetry.clone();
        let max_queue = cfg.max_queue;
        Arc::new(Server {
            cfg,
            registry: Registry::new(),
            sched: Scheduler::new(max_queue),
            jobs: Mutex::new(BTreeMap::new()),
            out: Mutex::new(out),
            tel,
            running: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        })
    }

    /// Spawns the worker threads.
    pub fn start(self: &Arc<Server>) -> Vec<thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|i| {
                let server = Arc::clone(self);
                thread::Builder::new()
                    .name(format!("wbist-serve-worker-{i}"))
                    .spawn(move || server.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    fn job(&self, id: &str) -> Option<Arc<Mutex<JobRecord>>> {
        self.jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
            .cloned()
    }

    /// Test/observability hook: a job's current status payload.
    pub fn job_snapshot(&self, id: &str) -> Option<Json> {
        self.job(id)
            .map(|rec| rec.lock().unwrap_or_else(|p| p.into_inner()).status_json())
    }

    /// Current queued depth (jobs waiting for a worker).
    pub fn queue_depth(&self) -> usize {
        self.sched.depth()
    }

    fn emit(&self, line: &Json) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(out, "{}", line.render());
        let _ = out.flush();
    }

    fn emit_job_event(&self, id: &str, state: &str, extra: Vec<(&str, Json)>) {
        let mut fields = vec![
            ("event", Json::Str("job".to_string())),
            ("id", Json::Str(id.to_string())),
            ("state", Json::Str(state.to_string())),
        ];
        fields.extend(extra);
        self.emit(&Json::obj(fields));
    }

    fn reply_ok(op: &str, extra: Vec<(&str, Json)>) -> Json {
        let mut fields = vec![
            ("reply", Json::Str(op.to_string())),
            ("ok", Json::Bool(true)),
        ];
        fields.extend(extra);
        Json::obj(fields)
    }

    fn reply_err(op: &str, message: impl Into<String>, extra: Vec<(&str, Json)>) -> Json {
        let mut fields = vec![
            ("reply", Json::Str(op.to_string())),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(message.into())),
        ];
        fields.extend(extra);
        Json::obj(fields)
    }

    /// Handles one request line, returning the reply to send back and
    /// whether the daemon should begin draining.
    pub fn handle_line(&self, line: &str) -> (Json, Flow) {
        let line = line.trim();
        if line.is_empty() {
            return (Self::reply_ok("noop", vec![]), Flow::Continue);
        }
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => return (Self::reply_err("parse", e.message, vec![]), Flow::Continue),
        };
        match request {
            Request::Register { name, source } => match self.registry.register(&name, &source) {
                Ok(()) => (
                    Self::reply_ok("register", vec![("name", Json::Str(name))]),
                    Flow::Continue,
                ),
                Err(e) => (
                    Self::reply_err("register", e.to_string(), vec![]),
                    Flow::Continue,
                ),
            },
            Request::Submit(spec) => (self.submit(spec), Flow::Continue),
            Request::Status { id } => match self.job_snapshot(&id) {
                Some(status) => (
                    Self::reply_ok("status", vec![("job", status)]),
                    Flow::Continue,
                ),
                None => (
                    Self::reply_err("status", format!("unknown job `{id}`"), vec![]),
                    Flow::Continue,
                ),
            },
            Request::Stats => (self.stats(), Flow::Continue),
            Request::Cancel { id } => (self.cancel(&id), Flow::Continue),
            Request::Evict { id } => (self.evict(&id), Flow::Continue),
            Request::Failpoint { site, times } => {
                if cfg!(feature = "failpoints") {
                    failpoint::arm(&site, times);
                    (
                        Self::reply_ok("failpoint", vec![("site", Json::Str(site))]),
                        Flow::Continue,
                    )
                } else {
                    (
                        Self::reply_err(
                            "failpoint",
                            "failpoints are not compiled into this build",
                            vec![],
                        ),
                        Flow::Continue,
                    )
                }
            }
            Request::Shutdown => (Self::reply_ok("shutdown", vec![]), Flow::Shutdown),
        }
    }

    fn submit(&self, spec: JobSpec) -> Json {
        if self.draining.load(Ordering::SeqCst) {
            return Self::reply_err("submit", "daemon is draining", vec![]);
        }
        if self.registry.get(&spec.circuit).is_none() {
            return Self::reply_err(
                "submit",
                format!("circuit `{}` is not registered", spec.circuit),
                vec![],
            );
        }
        let id = spec.id.clone();
        let tenant = spec.tenant.clone();
        {
            let mut jobs = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
            if jobs.contains_key(&id) {
                return Self::reply_err("submit", format!("job `{id}` already exists"), vec![]);
            }
            jobs.insert(id.clone(), Arc::new(Mutex::new(JobRecord::new(spec))));
        }
        // Emitted before the scheduler insert so the event stream is
        // ordered: a worker cannot emit `running` until the insert.
        self.emit_job_event(&id, "queued", vec![]);
        match self.sched.submit(&tenant, &id) {
            Ok(()) => {
                self.tel.add("serve.jobs_submitted", 1);
                self.maybe_preempt();
                Self::reply_ok("submit", vec![("id", Json::Str(id))])
            }
            Err(depth) => {
                // Shed: drop the record so the id can be resubmitted.
                self.jobs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&id);
                self.tel.add("serve.jobs_shed", 1);
                self.emit_job_event(&id, "shed", vec![]);
                // Deterministic hint: one base backoff per queued job.
                let retry_after = self.cfg.retry_backoff_ms.max(1) * depth as u64;
                Self::reply_err(
                    "submit",
                    "queue full, job shed",
                    vec![
                        ("shed", Json::Bool(true)),
                        ("depth", Json::UInt(depth as u64)),
                        ("retry_after_ms", Json::UInt(retry_after)),
                    ],
                )
            }
        }
    }

    fn stats(&self) -> Json {
        let counters = Json::Object(
            self.tel
                .counters()
                .into_iter()
                .map(|(k, v)| (k, Json::UInt(v)))
                .collect(),
        );
        Self::reply_ok(
            "stats",
            vec![
                ("queued", Json::UInt(self.sched.depth() as u64)),
                ("running", Json::UInt(self.running.load(Ordering::SeqCst))),
                (
                    "circuits",
                    Json::Array(self.registry.names().into_iter().map(Json::Str).collect()),
                ),
                ("counters", counters),
            ],
        )
    }

    fn cancel(&self, id: &str) -> Json {
        let Some(rec) = self.job(id) else {
            return Self::reply_err("cancel", format!("unknown job `{id}`"), vec![]);
        };
        let mut rec = rec.lock().unwrap_or_else(|p| p.into_inner());
        match rec.state {
            JobState::Queued => {
                if self.sched.remove(&rec.spec.tenant, id) {
                    rec.state = JobState::Cancelled;
                    self.tel.add("serve.jobs_cancelled", 1);
                    drop(rec);
                    self.emit_job_event(id, "cancelled", vec![]);
                    Self::reply_ok("cancel", vec![])
                } else {
                    // The worker popped it between our state read and
                    // the queue removal but has not locked the record
                    // yet; flipping the state makes it skip the attempt.
                    rec.state = JobState::Cancelled;
                    self.tel.add("serve.jobs_cancelled", 1);
                    drop(rec);
                    self.emit_job_event(id, "cancelled", vec![]);
                    Self::reply_ok("cancel", vec![])
                }
            }
            JobState::Running => {
                rec.cancel.cancel(TruncationReason::Cancelled);
                Self::reply_ok("cancel", vec![("cancelling", Json::Bool(true))])
            }
            terminal => Self::reply_err(
                "cancel",
                format!("job `{id}` is already {terminal}"),
                vec![],
            ),
        }
    }

    fn evict(&self, id: &str) -> Json {
        let Some(rec) = self.job(id) else {
            return Self::reply_err("evict", format!("unknown job `{id}`"), vec![]);
        };
        let rec = rec.lock().unwrap_or_else(|p| p.into_inner());
        if rec.state != JobState::Running {
            return Self::reply_err("evict", format!("job `{id}` is not running"), vec![]);
        }
        if !self.evictable(&rec.spec) {
            return Self::reply_err(
                "evict",
                format!("job `{id}` is not evictable (no checkpoint)"),
                vec![],
            );
        }
        rec.cancel.cancel(TruncationReason::Preempted);
        Self::reply_ok("evict", vec![("evicting", Json::Bool(true))])
    }

    /// Whether a job can be preempted to a checkpoint and resumed.
    fn evictable(&self, spec: &JobSpec) -> bool {
        spec.kind == JobKind::Synth && self.cfg.ckpt_dir.is_some()
    }

    /// Preempts the longest-running evictable job when every worker is
    /// busy, work is queued, and the job has exceeded its slice.
    pub fn maybe_preempt(&self) {
        let Some(slice_ms) = self.cfg.evict_after_ms else {
            return;
        };
        if self.sched.depth() == 0
            || self.running.load(Ordering::SeqCst) < self.cfg.workers.max(1) as u64
        {
            return;
        }
        let jobs: Vec<Arc<Mutex<JobRecord>>> = self
            .jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        let slice = Duration::from_millis(slice_ms);
        let mut victim: Option<(Duration, Arc<Mutex<JobRecord>>)> = None;
        for rec_arc in jobs {
            let rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
            if rec.state != JobState::Running
                || !self.evictable(&rec.spec)
                || rec.evictions >= EVICTION_CAP
                || rec.cancel.cancelled().is_some()
            {
                continue;
            }
            let Some(elapsed) = rec.started.map(|s| s.elapsed()) else {
                continue;
            };
            if elapsed < slice {
                continue;
            }
            drop(rec);
            if victim.as_ref().is_none_or(|(best, _)| elapsed > *best) {
                victim = Some((elapsed, rec_arc));
            }
        }
        if let Some((_, rec)) = victim {
            rec.lock()
                .unwrap_or_else(|p| p.into_inner())
                .cancel
                .cancel(TruncationReason::Preempted);
        }
    }

    fn worker_loop(self: Arc<Server>) {
        while let Some(id) = self.sched.next() {
            self.run_job(&id);
        }
    }

    fn ckpt_path(&self, id: &str) -> Option<PathBuf> {
        self.cfg
            .ckpt_dir
            .as_ref()
            .map(|d| d.join(format!("{id}.ckpt")))
    }

    fn run_job(&self, id: &str) {
        let Some(rec_arc) = self.job(id) else {
            return;
        };
        // Arm this attempt.
        let (spec, token) = {
            let mut rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
            if rec.state != JobState::Queued {
                return; // cancelled while queued
            }
            rec.state = JobState::Running;
            rec.attempts += 1;
            rec.started = Some(Instant::now());
            rec.cancel = CancelToken::for_budget(&rec.spec.budget);
            (rec.spec.clone(), rec.cancel.clone())
        };
        self.running.fetch_add(1, Ordering::SeqCst);
        self.attempts.fetch_add(1, Ordering::SeqCst);
        self.emit_job_event(id, "running", vec![]);

        let body = AssertUnwindSafe(|| self.job_body(&spec, &token));
        let outcome = catch_unwind(body);
        self.running.fetch_sub(1, Ordering::SeqCst);

        match outcome {
            Ok(Ok((result, truncation, resumed))) => {
                self.commit(id, &rec_arc, result, truncation, resumed)
            }
            Ok(Err(message)) => {
                // Typed job failure (bad rows, unrecoverable checkpoint):
                // no retry, the input will not get better.
                self.finish_failed(id, &rec_arc, message);
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                self.tel.add("serve.job_panics", 1);
                let retry = {
                    let mut rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
                    if !self.draining.load(Ordering::SeqCst) && rec.retries < self.cfg.retry_max {
                        rec.retries += 1;
                        rec.state = JobState::Queued;
                        Some(rec.retries)
                    } else {
                        None
                    }
                };
                match retry {
                    Some(nth) => {
                        self.tel.add("serve.jobs_retried", 1);
                        self.emit_job_event(
                            id,
                            "retried",
                            vec![
                                ("attempt", Json::UInt(nth as u64)),
                                ("panic", Json::Str(message)),
                            ],
                        );
                        let backoff =
                            (self.cfg.retry_backoff_ms << (nth - 1).min(8)).min(MAX_BACKOFF_MS);
                        thread::sleep(Duration::from_millis(backoff));
                        self.sched.requeue(&spec.tenant, id);
                    }
                    None => self.finish_failed(id, &rec_arc, format!("panicked: {message}")),
                }
            }
        }
    }

    /// The isolated job body: everything that may panic or fail runs
    /// here, under `catch_unwind`. Returns the result payload, the
    /// truncation reason if a budget tripped, and whether the attempt
    /// resumed from a checkpoint.
    #[allow(clippy::type_complexity)]
    fn job_body(
        &self,
        spec: &JobSpec,
        token: &CancelToken,
    ) -> Result<(Json, Option<TruncationReason>, bool), String> {
        failpoint::panic_if_armed("serve.job_run");
        let entry = self
            .registry
            .get(&spec.circuit)
            .ok_or_else(|| format!("circuit `{}` vanished from the registry", spec.circuit))?;
        let job_tel = Telemetry::enabled();
        let run = RunOptions::with_threads(self.cfg.job_threads)
            .telemetry(job_tel.clone())
            .seed(spec.seed)
            .cancel(token.clone())
            .compiled(entry.compiled.clone());
        let faults = FaultList::checkpoints(&entry.circuit);
        match spec.kind {
            JobKind::Sim => {
                let rows: Vec<&str> = spec
                    .rows
                    .as_deref()
                    .ok_or("sim jobs require rows")?
                    .iter()
                    .map(String::as_str)
                    .collect();
                let seq = TestSequence::parse_rows(&rows).map_err(|e| e.to_string())?;
                let detected = FaultSim::with_run_options(&entry.circuit, &run)
                    .query(&faults)
                    .sequence(&seq)
                    .detected();
                let payload = Json::obj(vec![
                    (
                        "detected",
                        Json::UInt(detected.iter().filter(|&&d| d).count() as u64),
                    ),
                    ("faults", Json::UInt(faults.len() as u64)),
                    ("counters", counters_json(&job_tel)),
                ]);
                Ok((payload, token.cancelled(), false))
            }
            JobKind::Synth => {
                let t = match spec.rows.as_deref() {
                    Some(rows) => {
                        let rows: Vec<&str> = rows.iter().map(String::as_str).collect();
                        TestSequence::parse_rows(&rows).map_err(|e| e.to_string())?
                    }
                    None => deterministic_t(&entry.circuit, spec.seed),
                };
                let cfg = SynthesisConfig {
                    sequence_length: spec.lg.unwrap_or_else(|| (2 * t.len()).max(256)),
                    speculation: spec.speculation.max(1),
                    run,
                    ..SynthesisConfig::default()
                };
                let mut ctl = RunControl::default();
                if let Some(path) = self.ckpt_path(&spec.id) {
                    ctl = ctl.checkpoint(path);
                }
                let job = match run_synthesis_job(
                    &entry.circuit,
                    &t,
                    &faults,
                    cfg.clone(),
                    None,
                    &ctl,
                    ResumePolicy::Auto,
                ) {
                    Ok(job) => job,
                    Err(e) => {
                        // Graceful degradation: a checkpoint the daemon
                        // cannot load (corrupt, truncated, wrong config)
                        // is surfaced, then the job restarts fresh
                        // rather than failing or silently trusting bad
                        // state.
                        self.tel.add("serve.checkpoints_rejected", 1);
                        self.emit_job_event(
                            &spec.id,
                            "checkpoint-rejected",
                            vec![("error", Json::Str(e.to_string()))],
                        );
                        run_synthesis_job(
                            &entry.circuit,
                            &t,
                            &faults,
                            cfg,
                            None,
                            &ctl,
                            ResumePolicy::Fresh,
                        )
                        .map_err(|e| format!("fresh run failed: {e}"))?
                    }
                };
                let resumed = job.resumed;
                let (result, truncation) = match job.outcome {
                    Outcome::Complete(result) => (result, None),
                    Outcome::Truncated { result, reason } => (result, Some(reason)),
                };
                Ok((synth_result_json(&result, &job_tel), truncation, resumed))
            }
        }
    }

    /// Commits a finished attempt to its terminal state — or requeues
    /// it when the truncation was a preemption.
    fn commit(
        &self,
        id: &str,
        rec_arc: &Arc<Mutex<JobRecord>>,
        result: Json,
        truncation: Option<TruncationReason>,
        resumed: bool,
    ) {
        let mut rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
        if resumed {
            rec.resumed = true;
            self.tel.add("serve.jobs_resumed", 1);
        }
        match truncation {
            None => {
                rec.state = JobState::Done;
                rec.result = Some(result.clone());
                let was_resumed = rec.resumed;
                self.tel.add("serve.jobs_done", 1);
                drop(rec);
                self.emit_job_event(
                    id,
                    "done",
                    vec![("resumed", Json::Bool(was_resumed)), ("result", result)],
                );
            }
            Some(TruncationReason::Preempted) => {
                rec.evictions += 1;
                self.tel.add("serve.jobs_evicted", 1);
                if self.draining.load(Ordering::SeqCst) {
                    // Terminal: the checkpoint on disk is the output.
                    rec.state = JobState::Evicted;
                    rec.truncation = Some(TruncationReason::Preempted);
                    drop(rec);
                    self.emit_job_event(id, "evicted", vec![("final", Json::Bool(true))]);
                } else {
                    rec.state = JobState::Queued;
                    let tenant = rec.spec.tenant.clone();
                    drop(rec);
                    self.emit_job_event(id, "evicted", vec![]);
                    self.sched.requeue(&tenant, id);
                }
            }
            Some(TruncationReason::Cancelled) => {
                rec.state = JobState::Cancelled;
                rec.truncation = Some(TruncationReason::Cancelled);
                self.tel.add("serve.jobs_cancelled", 1);
                drop(rec);
                self.emit_job_event(id, "cancelled", vec![]);
            }
            Some(reason) => {
                // A per-job budget tripped: distinct terminal state with
                // a valid partial result.
                rec.state = JobState::Timeout;
                rec.truncation = Some(reason);
                rec.result = Some(result.clone());
                self.tel.add("serve.jobs_timeout", 1);
                drop(rec);
                self.emit_job_event(
                    id,
                    "timeout",
                    vec![
                        ("reason", Json::Str(reason.to_string())),
                        ("result", result),
                    ],
                );
            }
        }
    }

    fn finish_failed(&self, id: &str, rec_arc: &Arc<Mutex<JobRecord>>, message: String) {
        let mut rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
        rec.state = JobState::Failed;
        rec.error = Some(message.clone());
        self.tel.add("serve.jobs_failed", 1);
        drop(rec);
        self.emit_job_event(id, "failed", vec![("error", Json::Str(message))]);
    }

    /// Graceful drain: stop accepting work, preempt running jobs to
    /// their checkpoints (cancel the non-evictable ones), let workers
    /// finish committing, and summarize.
    pub fn finish(&self, workers: Vec<thread::JoinHandle<()>>) -> ExitSummary {
        self.draining.store(true, Ordering::SeqCst);
        let left_queued = self.sched.drain_discard().len() as u64;
        {
            let jobs: Vec<Arc<Mutex<JobRecord>>> = self
                .jobs
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .cloned()
                .collect();
            for rec_arc in jobs {
                let rec = rec_arc.lock().unwrap_or_else(|p| p.into_inner());
                if rec.state == JobState::Running && rec.cancel.cancelled().is_none() {
                    let reason = if self.evictable(&rec.spec) {
                        TruncationReason::Preempted
                    } else {
                        TruncationReason::Cancelled
                    };
                    rec.cancel.cancel(reason);
                }
            }
        }
        for handle in workers {
            let _ = handle.join();
        }
        let evicted_at_shutdown = {
            let jobs = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
            jobs.values()
                .filter(|rec| {
                    rec.lock().unwrap_or_else(|p| p.into_inner()).state == JobState::Evicted
                })
                .count() as u64
        };
        let summary = ExitSummary {
            attempts: self.attempts.load(Ordering::SeqCst),
            evicted_at_shutdown,
            left_queued,
            truncated: evicted_at_shutdown > 0 || left_queued > 0,
        };
        self.emit(&Json::obj(vec![
            ("event", Json::Str("drained".to_string())),
            ("attempts", Json::UInt(summary.attempts)),
            ("evicted", Json::UInt(summary.evicted_at_shutdown)),
            ("left_queued", Json::UInt(summary.left_queued)),
            ("truncated", Json::Bool(summary.truncated)),
        ]));
        summary
    }
}

/// The deterministic default `T` for synth jobs submitted without
/// explicit rows: an LFSR sequence derived from the job seed.
fn deterministic_t(circuit: &wbist_netlist::Circuit, seed: u64) -> TestSequence {
    let lfsr_seed = ((seed as u32) | 1) & 0x00FF_FFFF;
    wbist_atpg::Lfsr::new(24, lfsr_seed.max(1)).sequence(circuit.num_inputs(), 64)
}

fn counters_json(tel: &Telemetry) -> Json {
    Json::Object(
        tel.counters()
            .into_iter()
            .map(|(k, v)| (k, Json::UInt(v)))
            .collect(),
    )
}

/// The committed result payload for a synthesis job. Everything needed
/// for the bit-identity proof is here: the full `Ω` (per-input
/// subsequences, detection times, ranks), the detection flags in
/// aggregate, and the job's deterministic telemetry counters.
fn synth_result_json(result: &SynthesisResult, tel: &Telemetry) -> Json {
    let omega: Vec<Json> = result
        .omega
        .iter()
        .map(|sel| {
            Json::obj(vec![
                ("u", Json::UInt(sel.detection_time as u64)),
                ("rank", Json::UInt(sel.rank as u64)),
                ("newly_detected", Json::UInt(sel.newly_detected as u64)),
                (
                    "subsequences",
                    Json::Array(
                        sel.assignment
                            .subsequences()
                            .iter()
                            .map(|s| Json::Str(s.to_string()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("omega", Json::Array(omega)),
        ("detected", Json::UInt(result.detected_faults() as u64)),
        ("targets", Json::UInt(result.target_count() as u64)),
        (
            "coverage_guaranteed",
            Json::Bool(result.coverage_guaranteed()),
        ),
        ("sequence_length", Json::UInt(result.sequence_length as u64)),
        ("counters", counters_json(tel)),
    ])
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM handler (async-signal-safe: it only sets a
    /// flag the request loop polls).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    /// Whether SIGTERM arrived since install.
    pub fn termination_requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    /// No-op off Unix.
    pub fn install() {}

    /// Always `false` off Unix.
    pub fn termination_requested() -> bool {
        false
    }
}

pub use signals::{install as install_signal_handlers, termination_requested};

/// Runs the daemon over a line stream until EOF, `{"op":"shutdown"}`,
/// or SIGTERM, then drains gracefully.
///
/// Replies and job events are interleaved on the single output sink;
/// every line is a self-describing JSON object (`"reply"` vs
/// `"event"`), so consumers demultiplex trivially.
pub fn serve(
    cfg: ServeConfig,
    input: impl BufRead + Send + 'static,
    out: Box<dyn Write + Send>,
) -> io::Result<ExitSummary> {
    if cfg.handle_signals {
        install_signal_handlers();
    }
    if let Some(dir) = &cfg.ckpt_dir {
        std::fs::create_dir_all(dir)?;
    }
    let server = Server::new(cfg, out);
    let workers = server.start();

    let (tx, rx) = mpsc::channel::<String>();
    // Detached on purpose: the reader blocks in `read_line` and cannot
    // be joined if shutdown comes from a signal instead of EOF.
    thread::Builder::new()
        .name("wbist-serve-reader".to_string())
        .spawn(move || {
            for line in input.lines() {
                match line {
                    Ok(line) => {
                        if tx.send(line).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn reader");

    loop {
        if termination_requested() {
            server.emit(&Json::obj(vec![(
                "event",
                Json::Str("sigterm".to_string()),
            )]));
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => {
                let (reply, flow) = server.handle_line(&line);
                server.emit(&reply);
                if flow == Flow::Shutdown {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                server.maybe_preempt();
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // EOF can race an in-flight SIGTERM; still log the
                // signal so the drain cause is visible either way.
                if termination_requested() {
                    server.emit(&Json::obj(vec![(
                        "event",
                        Json::Str("sigterm".to_string()),
                    )]));
                }
                break;
            }
        }
    }
    Ok(server.finish(workers))
}

/// Runs the daemon on a Unix domain socket until `{"op":"shutdown"}`
/// arrives on some connection or SIGTERM, then drains gracefully.
///
/// Each connection gets its replies on its own stream; job events go to
/// `out` (the daemon's stdout under the CLI). The socket file is
/// removed on both bind and exit so restarts do not trip over stale
/// sockets.
#[cfg(unix)]
pub fn serve_unix_socket(
    cfg: ServeConfig,
    socket_path: &std::path::Path,
    out: Box<dyn Write + Send>,
) -> io::Result<ExitSummary> {
    use std::os::unix::net::UnixListener;

    if cfg.handle_signals {
        install_signal_handlers();
    }
    if let Some(dir) = &cfg.ckpt_dir {
        std::fs::create_dir_all(dir)?;
    }
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;
    let server = Server::new(cfg, out);
    let workers = server.start();
    let shutdown = Arc::new(AtomicBool::new(false));

    loop {
        if termination_requested() || shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                // Detached on purpose: a client that keeps its
                // connection open past shutdown must not stall the
                // drain; the thread only holds an `Arc` on the server.
                let _ = thread::Builder::new()
                    .name("wbist-serve-conn".to_string())
                    .spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let reader = io::BufReader::new(read_half);
                        let mut writer = stream;
                        for line in reader.lines() {
                            let Ok(line) = line else { break };
                            let (reply, flow) = server.handle_line(&line);
                            let _ = writeln!(writer, "{}", reply.render());
                            let _ = writer.flush();
                            if flow == Flow::Shutdown {
                                shutdown.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
                server.maybe_preempt();
            }
            Err(_) => break,
        }
    }
    let summary = server.finish(workers);
    let _ = std::fs::remove_file(socket_path);
    Ok(summary)
}
