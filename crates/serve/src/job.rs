//! Job records and the job state machine.
//!
//! ```text
//! queued → running → done                 (complete, result committed)
//!                  → timeout              (budget tripped; valid partial)
//!                  → failed               (panic after retry budget)
//!                  → cancelled            (explicit cancel)
//!                  → queued   (evicted)   (preempted to checkpoint)
//!                  → queued   (retried)   (transient failure, backoff)
//!          running → evicted              (terminal: drained mid-run at
//!                                          shutdown, checkpoint on disk)
//! ```
//!
//! "evicted" and "retried" are normally *transitions* back to `queued`,
//! not terminal states; `Evicted` becomes terminal only when the daemon
//! drains at shutdown and will not run the job again in this process.

use crate::protocol::JobSpec;
use std::fmt;
use std::time::Instant;
use wbist_sim::{CancelToken, TruncationReason};
use wbist_telemetry::json::Json;

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in a tenant queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished completely; result committed.
    Done,
    /// A per-job budget tripped; the partial result is valid.
    Timeout,
    /// Drained to its checkpoint at shutdown; resumable by a future
    /// daemon sharing the checkpoint directory.
    Evicted,
    /// Failed permanently (panics exhausted the retry budget, or an
    /// unrecoverable setup error).
    Failed,
    /// Cancelled on request.
    Cancelled,
}

impl JobState {
    /// Whether the state is terminal (the job will not run again).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Timeout => "timeout",
            JobState::Evicted => "evicted",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

/// The daemon-side record of one submitted job.
#[derive(Debug)]
pub struct JobRecord {
    /// The submission as parsed off the wire.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Times the job entered `Running`.
    pub attempts: u32,
    /// Transient-failure retries consumed (bounded by the retry budget).
    pub retries: u32,
    /// Times the job was preempted to its checkpoint.
    pub evictions: u32,
    /// Whether any attempt resumed from a checkpoint.
    pub resumed: bool,
    /// Cancel token for the *current* attempt; replaced per attempt.
    pub cancel: CancelToken,
    /// When the current attempt started.
    pub started: Option<Instant>,
    /// Committed result payload (`Done` / `Timeout`).
    pub result: Option<Json>,
    /// Terminal error message (`Failed`).
    pub error: Option<String>,
    /// Which budget tripped, for `Timeout` (or `Preempted` for a
    /// terminal `Evicted`).
    pub truncation: Option<TruncationReason>,
}

impl JobRecord {
    /// A fresh record in `Queued`.
    pub fn new(spec: JobSpec) -> JobRecord {
        JobRecord {
            spec,
            state: JobState::Queued,
            attempts: 0,
            retries: 0,
            evictions: 0,
            resumed: false,
            cancel: CancelToken::unlimited(),
            started: None,
            result: None,
            error: None,
            truncation: None,
        }
    }

    /// Renders the record as a status payload.
    pub fn status_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::Str(self.spec.id.clone())),
            ("tenant", Json::Str(self.spec.tenant.clone())),
            ("kind", Json::Str(self.spec.kind.to_string())),
            ("state", Json::Str(self.state.to_string())),
            ("attempts", Json::UInt(self.attempts as u64)),
            ("retries", Json::UInt(self.retries as u64)),
            ("evictions", Json::UInt(self.evictions as u64)),
            ("resumed", Json::Bool(self.resumed)),
        ];
        if let Some(reason) = self.truncation {
            fields.push(("truncation", Json::Str(reason.to_string())));
        }
        if let Some(err) = &self.error {
            fields.push(("error", Json::Str(err.clone())));
        }
        if let Some(result) = &self.result {
            fields.push(("result", result.clone()));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn spec() -> JobSpec {
        let Ok(Request::Submit(spec)) =
            parse_request(r#"{"op":"submit","id":"j1","kind":"synth","circuit":"s27"}"#)
        else {
            panic!("fixture parse");
        };
        spec
    }

    #[test]
    fn terminal_states_are_classified() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [
            JobState::Done,
            JobState::Timeout,
            JobState::Evicted,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert!(s.is_terminal(), "{s}");
        }
    }

    #[test]
    fn status_json_carries_the_state_machine_fields() {
        let mut rec = JobRecord::new(spec());
        rec.state = JobState::Timeout;
        rec.attempts = 2;
        rec.truncation = Some(TruncationReason::FaultCycles);
        let v = rec.status_json();
        assert_eq!(v.get("state").and_then(Json::as_str), Some("timeout"));
        assert_eq!(v.get("attempts").and_then(Json::as_u64), Some(2));
        assert!(v.get("truncation").is_some());
        assert!(v.get("result").is_none());
    }
}
