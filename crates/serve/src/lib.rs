//! `wbist serve` — a fault-tolerant multi-tenant synthesis daemon.
//!
//! A single process accepts synthesis and simulation jobs over a
//! line-delimited JSON protocol (stdin or a Unix socket), shares one
//! compiled lowering per registered circuit across all concurrent jobs,
//! and schedules work fairly across tenants with:
//!
//! * **admission control** — fresh submissions beyond the configured
//!   queue depth are shed with a structured `retry_after_ms` rejection
//!   instead of queueing without bound;
//! * **per-job budgets** — wall-clock / fault-cycle / assignment limits
//!   via [`wbist_sim::Budget`], with a distinct `timeout` terminal state
//!   carrying a valid partial result;
//! * **checkpoint-backed eviction** — a long-running synthesis job can
//!   be preempted mid-run, persisted to a `wbist-ckpt/v1` file, and
//!   transparently resumed when the queue drains, with results proven
//!   bit-identical to an uninterrupted run;
//! * **panic isolation and bounded retry** — a panicking job body never
//!   takes the daemon down; transient failures retry with exponential
//!   backoff up to a retry budget, then land in a `failed` state;
//! * **graceful shutdown** — SIGTERM or `{"op":"shutdown"}` drains
//!   running jobs to their checkpoints under the workspace's 0/2/1
//!   exit-code contract (2 = resumable work left behind).
//!
//! See `DESIGN.md` §16 for the architecture and the job state machine,
//! and the `README.md` "Serving" section for the wire protocol.

pub mod daemon;
pub mod job;
pub mod protocol;
pub mod registry;
pub mod scheduler;

#[cfg(unix)]
pub use daemon::serve_unix_socket;
pub use daemon::{
    install_signal_handlers, serve, termination_requested, ExitSummary, Flow, ServeConfig, Server,
};
pub use job::{JobRecord, JobState};
pub use protocol::{parse_request, CircuitSource, JobKind, JobSpec, ProtocolError, Request};
pub use registry::{RegisteredCircuit, Registry, RegistryError};
pub use scheduler::Scheduler;
