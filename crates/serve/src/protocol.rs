//! The line-delimited JSON wire protocol for `wbist serve`.
//!
//! One request per line in, one reply line per request out, plus
//! asynchronous `{"event":"job",...}` lines as jobs move through their
//! state machine (see `DESIGN.md` §16). The protocol is deliberately
//! flat — no framing beyond newlines, no batching — so a shell
//! heredoc, a named pipe, or `nc -U` can drive the daemon.
//!
//! Parsing is strict about types but lenient about unknown fields:
//! extra keys are ignored so clients can annotate requests for their
//! own bookkeeping.

use std::fmt;
use wbist_sim::Budget;
use wbist_telemetry::json::Json;

/// Maximum accepted request line, in bytes. Inline `.bench` sources
/// ride on the `register` op, so this is generous; anything larger is
/// rejected before parsing (a daemon must bound untrusted input).
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// Where a registered circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// A named built-in benchmark (`s27`, `s1196`, `s5378`, …).
    Builtin(String),
    /// Inline `.bench` netlist text.
    Bench(String),
}

/// What kind of work a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Weighted-BIST synthesis (the paper's §4.2 selection loop).
    /// Checkpointable and therefore evictable.
    Synth,
    /// One-shot fault simulation of an explicit sequence. Short-lived;
    /// not checkpointable, so eviction cancels instead of preempting.
    Sim,
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobKind::Synth => "synth",
            JobKind::Sim => "sim",
        })
    }
}

/// A parsed job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Caller-chosen job id, unique per daemon lifetime. Restricted to
    /// `[A-Za-z0-9._-]` because it names the checkpoint file.
    pub id: String,
    /// Tenant name for fair scheduling (round-robin across tenants).
    pub tenant: String,
    /// What to run.
    pub kind: JobKind,
    /// Name of a previously registered circuit.
    pub circuit: String,
    /// Explicit input rows (`"0101"` per time unit). `Sim` jobs require
    /// them; `Synth` jobs default to a deterministic ATPG-derived `T`.
    pub rows: Option<Vec<String>>,
    /// Base seed for pseudo-random phases.
    pub seed: u64,
    /// `L_G` override for synth jobs.
    pub lg: Option<usize>,
    /// Speculation width for synth jobs (default 1).
    pub speculation: usize,
    /// Per-job resource budget; unlimited fields never trip.
    pub budget: Budget,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Registers (parses + lowers) a circuit under a name.
    Register {
        /// Registry key referenced by later submits.
        name: String,
        /// Where the netlist comes from.
        source: CircuitSource,
    },
    /// Submits a job for scheduling.
    Submit(JobSpec),
    /// Queries one job's current state.
    Status {
        /// The job id.
        id: String,
    },
    /// Queries daemon-wide counters.
    Stats,
    /// Cancels a queued or running job.
    Cancel {
        /// The job id.
        id: String,
    },
    /// Evicts a running job to its checkpoint, requeueing it.
    Evict {
        /// The job id.
        id: String,
    },
    /// Arms a failpoint site (test builds only; an error otherwise).
    Failpoint {
        /// The site name.
        site: String,
        /// How many firings to arm.
        times: usize,
    },
    /// Begins a graceful drain and shutdown.
    Shutdown,
}

/// A protocol-level error: the request line itself is bad. Job-level
/// failures are reported through job events, not this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        message: message.into(),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string field `{key}`")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field `{key}` is not an unsigned integer"))),
    }
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(bad(format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    let v = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let op = str_field(&v, "op")?;
    match op.as_str() {
        "register" => {
            let name = str_field(&v, "name")?;
            if !valid_id(&name) {
                return Err(bad("`name` must match [A-Za-z0-9._-]{1,128}"));
            }
            let source = match (v.get("builtin"), v.get("bench")) {
                (Some(b), None) => CircuitSource::Builtin(
                    b.as_str()
                        .ok_or_else(|| bad("`builtin` must be a string"))?
                        .to_string(),
                ),
                (None, Some(b)) => CircuitSource::Bench(
                    b.as_str()
                        .ok_or_else(|| bad("`bench` must be a string"))?
                        .to_string(),
                ),
                _ => return Err(bad("register needs exactly one of `builtin` or `bench`")),
            };
            Ok(Request::Register { name, source })
        }
        "submit" => {
            let id = str_field(&v, "id")?;
            if !valid_id(&id) {
                return Err(bad("`id` must match [A-Za-z0-9._-]{1,128}"));
            }
            let kind = match str_field(&v, "kind")?.as_str() {
                "synth" => JobKind::Synth,
                "sim" => JobKind::Sim,
                other => return Err(bad(format!("unknown job kind `{other}`"))),
            };
            let rows = match v.get("rows") {
                None | Some(Json::Null) => None,
                Some(r) => Some(
                    r.as_array()
                        .ok_or_else(|| bad("`rows` must be an array of strings"))?
                        .iter()
                        .map(|row| {
                            row.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| bad("`rows` must be an array of strings"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                ),
            };
            if kind == JobKind::Sim && rows.is_none() {
                return Err(bad("sim jobs require `rows`"));
            }
            let mut budget = Budget::default();
            if let Some(secs) = match v.get("wall_secs") {
                None | Some(Json::Null) => None,
                Some(x) => Some(
                    x.as_f64()
                        .ok_or_else(|| bad("`wall_secs` is not a number"))?,
                ),
            } {
                budget = budget.wall_secs(secs);
            }
            if let Some(fc) = opt_u64(&v, "fault_cycles")? {
                budget = budget.fault_cycles(fc);
            }
            if let Some(ma) = opt_u64(&v, "max_assignments")? {
                budget = budget.max_assignments(ma as usize);
            }
            Ok(Request::Submit(JobSpec {
                id,
                tenant: match v.get("tenant") {
                    None | Some(Json::Null) => "default".to_string(),
                    Some(t) => t
                        .as_str()
                        .ok_or_else(|| bad("`tenant` must be a string"))?
                        .to_string(),
                },
                kind,
                circuit: str_field(&v, "circuit")?,
                rows,
                seed: opt_u64(&v, "seed")?.unwrap_or(1),
                lg: opt_u64(&v, "lg")?.map(|n| n as usize),
                speculation: opt_u64(&v, "speculation")?.unwrap_or(1) as usize,
                budget,
            }))
        }
        "status" => Ok(Request::Status {
            id: str_field(&v, "id")?,
        }),
        "stats" => Ok(Request::Stats),
        "cancel" => Ok(Request::Cancel {
            id: str_field(&v, "id")?,
        }),
        "evict" => Ok(Request::Evict {
            id: str_field(&v, "id")?,
        }),
        "failpoint" => Ok(Request::Failpoint {
            site: str_field(&v, "site")?,
            times: opt_u64(&v, "times")?.unwrap_or(1) as usize,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_budget_and_defaults() {
        let req = parse_request(
            r#"{"op":"submit","id":"j1","kind":"synth","circuit":"s27","fault_cycles":5000,"wall_secs":1.5}"#,
        )
        .unwrap();
        let Request::Submit(spec) = req else {
            panic!("expected submit");
        };
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.kind, JobKind::Synth);
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.budget.fault_cycles, Some(5000));
        assert_eq!(spec.budget.wall_secs, Some(1.5));
        assert!(spec.budget.max_assignments.is_none());
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad_line in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"submit","id":"has space","kind":"synth","circuit":"c"}"#,
            r#"{"op":"submit","id":"j","kind":"warp","circuit":"c"}"#,
            r#"{"op":"submit","id":"j","kind":"sim","circuit":"c"}"#,
            r#"{"op":"register","name":"c"}"#,
            r#"{"op":"register","name":"c","builtin":"s27","bench":"x"}"#,
            r#"{"op":"nope"}"#,
        ] {
            let err = parse_request(bad_line).expect_err(bad_line);
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn ids_reject_path_traversal() {
        assert!(!valid_id("../etc/passwd"));
        assert!(!valid_id("a/b"));
        assert!(!valid_id(""));
        assert!(valid_id("job-1.retry_2"));
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let line = format!(
            r#"{{"op":"register","name":"c","bench":"{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.message.contains("exceeds"));
    }
}
