//! The shared circuit registry.
//!
//! Parsing a netlist and lowering it to the compiled kernel form is the
//! expensive one-time cost of a simulation; a daemon serving many jobs
//! against the same few circuits must pay it once. Registration does
//! both up front and keeps the result behind an `Arc`, so every
//! concurrent job against the same circuit shares one
//! [`CompiledHandle`] — the lowering is reused, never rebuilt.

use crate::protocol::CircuitSource;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use wbist_circuits::synthetic;
use wbist_netlist::{bench_format, Circuit};
use wbist_sim::CompiledHandle;

/// A registered circuit: the netlist plus its shared lowering.
#[derive(Debug)]
pub struct RegisteredCircuit {
    /// The registry key.
    pub name: String,
    /// The parsed, levelized netlist.
    pub circuit: Circuit,
    /// The one shared lowering every job reuses.
    pub compiled: CompiledHandle,
}

/// Errors from [`Registry::register`].
#[derive(Debug)]
pub enum RegistryError {
    /// The `builtin` name is not a known benchmark.
    UnknownBuiltin(String),
    /// The inline `.bench` source failed to parse.
    Parse(wbist_netlist::NetlistError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownBuiltin(name) => {
                write!(f, "unknown built-in circuit `{name}`")
            }
            RegistryError::Parse(e) => write!(f, "bench parse failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Thread-safe name → circuit map.
#[derive(Debug, Default)]
pub struct Registry {
    circuits: Mutex<BTreeMap<String, Arc<RegisteredCircuit>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Parses, levelizes, and lowers `source`, storing it under `name`.
    /// Re-registering a name replaces the old entry; jobs already
    /// holding the old `Arc` finish against it unaffected.
    pub fn register(&self, name: &str, source: &CircuitSource) -> Result<(), RegistryError> {
        let circuit = match source {
            CircuitSource::Builtin(builtin) => synthetic::by_name(builtin)
                .ok_or_else(|| RegistryError::UnknownBuiltin(builtin.clone()))?,
            CircuitSource::Bench(text) => {
                bench_format::parse(name, text).map_err(RegistryError::Parse)?
            }
        };
        let compiled = CompiledHandle::lower(&circuit);
        let entry = Arc::new(RegisteredCircuit {
            name: name.to_string(),
            circuit,
            compiled,
        });
        self.circuits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), entry);
        Ok(())
    }

    /// Looks a circuit up by name.
    pub fn get(&self, name: &str) -> Option<Arc<RegisteredCircuit>> {
        self.circuits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.circuits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_and_bench_sources_register() {
        let reg = Registry::new();
        reg.register("ref", &CircuitSource::Builtin("s27".to_string()))
            .unwrap();
        reg.register(
            "toy",
            &CircuitSource::Bench(
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n"
                    .to_string(),
            ),
        )
        .unwrap();
        assert_eq!(reg.names(), vec!["ref".to_string(), "toy".to_string()]);
        let toy = reg.get("toy").unwrap();
        assert!(toy.compiled.matches(&toy.circuit));
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn bad_sources_are_typed_errors() {
        let reg = Registry::new();
        let err = reg
            .register("x", &CircuitSource::Builtin("s99999".to_string()))
            .unwrap_err();
        assert!(matches!(err, RegistryError::UnknownBuiltin(_)), "{err}");
        let err = reg
            .register("y", &CircuitSource::Bench("INPUT(".to_string()))
            .unwrap_err();
        assert!(matches!(err, RegistryError::Parse(_)), "{err}");
        assert!(
            reg.get("x").is_none(),
            "failed registrations leave no entry"
        );
    }
}
