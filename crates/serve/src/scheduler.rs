//! Fair admission-controlled job queue.
//!
//! One FIFO per tenant, served round-robin, so a tenant that floods
//! the daemon with a hundred submissions cannot starve another whose
//! single job arrived later — the scheduler alternates between tenant
//! queues, not across one global queue.
//!
//! Admission control is a hard bound on *fresh* submissions: when the
//! total queued depth reaches the configured maximum, `submit` sheds
//! the job with the depth so the caller can build a structured
//! `retry_after` rejection. Requeues (evicted or retried jobs) bypass
//! admission — shedding work the daemon already accepted would lose
//! committed progress, exactly what eviction exists to protect.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct Queues {
    /// Per-tenant FIFOs, keyed by tenant name.
    by_tenant: BTreeMap<String, VecDeque<String>>,
    /// Round-robin position: the tenant served last.
    cursor: Option<String>,
    /// Total queued jobs across tenants.
    depth: usize,
    /// Once set, `next` returns `None` instead of blocking.
    draining: bool,
}

/// The shared scheduler.
#[derive(Debug, Default)]
pub struct Scheduler {
    queues: Mutex<Queues>,
    wakeup: Condvar,
    /// Fresh submissions beyond this total depth are shed.
    max_queue: usize,
}

impl Scheduler {
    /// A scheduler shedding fresh submissions beyond `max_queue` queued
    /// jobs.
    pub fn new(max_queue: usize) -> Scheduler {
        Scheduler {
            max_queue,
            ..Scheduler::default()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Queues> {
        self.queues.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues a fresh submission. `Err(depth)` means the job was shed
    /// by admission control at the given queue depth.
    pub fn submit(&self, tenant: &str, id: &str) -> Result<(), usize> {
        let mut q = self.lock();
        if q.depth >= self.max_queue {
            return Err(q.depth);
        }
        q.by_tenant
            .entry(tenant.to_string())
            .or_default()
            .push_back(id.to_string());
        q.depth += 1;
        drop(q);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Re-enqueues an evicted or retried job at the *front* of its
    /// tenant's queue (it already waited once). Never shed.
    pub fn requeue(&self, tenant: &str, id: &str) {
        let mut q = self.lock();
        q.by_tenant
            .entry(tenant.to_string())
            .or_default()
            .push_front(id.to_string());
        q.depth += 1;
        drop(q);
        self.wakeup.notify_one();
    }

    /// Removes a queued job (cancellation). `true` if it was queued.
    pub fn remove(&self, tenant: &str, id: &str) -> bool {
        let mut q = self.lock();
        if let Some(fifo) = q.by_tenant.get_mut(tenant) {
            if let Some(pos) = fifo.iter().position(|j| j == id) {
                fifo.remove(pos);
                q.depth -= 1;
                return true;
            }
        }
        false
    }

    /// Blocks for the next job id, serving tenants round-robin.
    /// Returns `None` once draining and empty.
    pub fn next(&self) -> Option<String> {
        let mut q = self.lock();
        loop {
            if q.depth > 0 {
                // Pick the first non-empty tenant strictly after the
                // cursor (wrapping), so consecutive picks rotate.
                let tenants: Vec<String> = q.by_tenant.keys().cloned().collect();
                let start = match &q.cursor {
                    Some(cur) => tenants.iter().position(|t| t > cur).unwrap_or(0),
                    None => 0,
                };
                for i in 0..tenants.len() {
                    let tenant = &tenants[(start + i) % tenants.len()];
                    if let Some(id) = q.by_tenant.get_mut(tenant).and_then(VecDeque::pop_front) {
                        q.cursor = Some(tenant.clone());
                        q.depth -= 1;
                        return Some(id);
                    }
                }
                unreachable!("depth > 0 but every tenant queue was empty");
            }
            if q.draining {
                return None;
            }
            q = self.wakeup.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Current total queued depth.
    pub fn depth(&self) -> usize {
        self.lock().depth
    }

    /// Starts draining: `next` stops blocking, queued jobs still drain.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.wakeup.notify_all();
    }

    /// Like [`Scheduler::drain`] but also discards everything queued,
    /// returning the discarded ids (drain-to-checkpoint on shutdown
    /// keeps queued jobs queued; hard cancellation does not).
    pub fn drain_discard(&self) -> Vec<String> {
        let mut q = self.lock();
        q.draining = true;
        let mut dropped = Vec::new();
        for fifo in q.by_tenant.values_mut() {
            dropped.extend(fifo.drain(..));
        }
        q.depth = 0;
        drop(q);
        self.wakeup.notify_all();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates_between_tenants() {
        let s = Scheduler::new(16);
        s.submit("alice", "a1").unwrap();
        s.submit("alice", "a2").unwrap();
        s.submit("alice", "a3").unwrap();
        s.submit("bob", "b1").unwrap();
        let order: Vec<String> = (0..4).map(|_| s.next().unwrap()).collect();
        // bob's single job is served before alice's queue drains.
        let bob_pos = order.iter().position(|id| id == "b1").unwrap();
        assert!(bob_pos <= 1, "fair rotation, got {order:?}");
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn admission_sheds_but_requeue_bypasses() {
        let s = Scheduler::new(2);
        s.submit("t", "j1").unwrap();
        s.submit("t", "j2").unwrap();
        assert_eq!(s.submit("t", "j3"), Err(2), "queue full");
        s.requeue("t", "evicted");
        assert_eq!(s.depth(), 3, "requeue bypasses admission");
        assert_eq!(s.next().unwrap(), "evicted", "requeued jobs go first");
    }

    #[test]
    fn drain_unblocks_and_serves_leftovers() {
        let s = Scheduler::new(4);
        s.submit("t", "j1").unwrap();
        s.drain();
        assert_eq!(s.next(), Some("j1".to_string()));
        assert_eq!(s.next(), None, "draining and empty");
    }

    #[test]
    fn remove_cancels_queued_jobs() {
        let s = Scheduler::new(4);
        s.submit("t", "j1").unwrap();
        assert!(s.remove("t", "j1"));
        assert!(!s.remove("t", "j1"));
        assert_eq!(s.depth(), 0);
    }
}
