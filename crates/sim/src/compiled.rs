//! The compiled simulation kernel: CSR netlist, shared good machine,
//! flat injection schedules and cone-restricted batch evaluation.
//!
//! The reference kernel in [`crate::fault`] walks the [`Circuit`] object
//! graph every cycle: per-gate `Vec<NetId>` input lists, a per-cycle
//! scan over all nets for constant drivers, and per-gate `HashMap`
//! probes for fault injections. This module removes all three costs:
//!
//! 1. [`CompiledCircuit`] — built once per `FaultSim` — lowers the
//!    levelized circuit into structure-of-arrays form: topo-ordered gate
//!    kinds, a CSR (`in_start`/`in_nets`) over input net indices, output
//!    net indices, source/const/DFF index arrays and a load CSR used for
//!    fanout-cone propagation. The hot loop reads nothing but flat `u32`
//!    arrays.
//! 2. [`Schedule`] — built once per fault batch — replaces the batch
//!    `HashMap`s with arrays sorted in topological order. The stepping
//!    loop merges them with cursors: zero hashing, and gates without
//!    injections pay a single integer compare.
//! 3. [`GoodTrace`] + dirty-set evaluation — the fault-free machine is
//!    simulated once per query (scalar three-valued evaluation, bit
//!    packed per cycle), and each batch then runs *event-driven*
//!    against that shared trace: a net is **dirty** in a cycle when its
//!    planes differ from the fault-free value on a live machine bit,
//!    and a gate is evaluated only when one of its operands is dirty
//!    (or it carries a live injection). Clean operands are read
//!    straight from the good trace, so the per-cycle work is
//!    proportional to the *activity* of the live faults, not to the
//!    circuit size — typically a small fraction of the netlist once a
//!    batch's faults settle or drop.
//!
//! Scheduling uses bitmap worklists in topological order: dirtying a
//! net sets the bit of every consuming gate, and because loads sit at
//! strictly later topo positions, a single forward sweep over the
//! bitmap evaluates everything that can change. Dirtiness crosses the
//! register boundary through per-flip-flop dirty state (a dirty data
//! net makes the stored planes dirty for the next cycle), and dropped
//! machine bits fall out automatically: dirtiness is judged against the
//! live mask, so a net corrupted only by already-detected faults goes
//! clean by itself.
//!
//! The per-batch *reachability cone* — a monotone worklist closure over
//! gate fanout that crosses flip-flop boundaries (a fault reaching a
//! DFF data input contaminates the DFF output net, and everything
//! downstream of it, on later cycles) — is still computed per run: it
//! bounds the observed nets a batch can ever disturb.

use crate::logic::Logic3;
use crate::plane::Planes;
use crate::sequence::TestSequence;
use crate::word::Word;
use wbist_netlist::{Circuit, Driver, Fault, FaultSite, GateKind};

/// Which flat [`Schedule`] array a conditional injection overlays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InjSlot {
    SrcPi,
    SrcDff,
    SrcConst,
    GateStem,
    Pin,
    Dff,
}

/// One conditional injection: a fault whose effect masks join the
/// schedule only in cycles where its *activation condition* holds on the
/// fault-free machine. Transition-delay faults use this — the fault
/// launches when the good value of `watch` changes from `!slow_to` at
/// cycle `t-1` to `slow_to` at cycle `t`, and the effect forces the site
/// back to `!slow_to` in the capture cycle `t`. The two-plane good trace
/// stores every cycle, so both the launch and the capture value are one
/// indexed read away; stuck-at faults never allocate an entry here.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CondInj<W> {
    /// Which array the effect masks OR into.
    pub(crate) slot: InjSlot,
    /// Index of the target entry in that array (post-sort).
    pub(crate) idx: u32,
    /// Net whose fault-free transition activates the fault.
    pub(crate) watch: u32,
    /// Destination value of the slow transition.
    pub(crate) slow_to: bool,
    /// Machine bit of the fault.
    pub(crate) bit: W,
}

/// Load codes in the fanout CSR: values `< num_gates` are consuming
/// gate topo positions; `num_gates + k` is the data input of DFF `k`.
#[derive(Debug, Clone)]
pub(crate) struct CompiledCircuit {
    pub(crate) num_nets: usize,
    pub(crate) num_gates: usize,
    pub(crate) num_dffs: usize,
    /// Gate kinds in topological order.
    pub(crate) kinds: Vec<GateKind>,
    /// CSR offsets into `in_nets`, length `num_gates + 1`.
    pub(crate) in_start: Vec<u32>,
    /// Flattened input net indices, topo-gate major, pin order.
    pub(crate) in_nets: Vec<u32>,
    /// Output net index per topo position.
    pub(crate) out_nets: Vec<u32>,
    /// Primary input net indices, PI order.
    pub(crate) pi_nets: Vec<u32>,
    /// Constant-driven nets and their values.
    pub(crate) const_vals: Vec<(u32, bool)>,
    /// DFF data / state-output net indices, DFF order.
    pub(crate) dff_d: Vec<u32>,
    pub(crate) dff_q: Vec<u32>,
    /// Observed nets: primary outputs followed by observation points.
    pub(crate) observed: Vec<u32>,
    /// GateId index → topo position.
    pub(crate) topo_pos: Vec<u32>,
    /// CSR offsets into `load_codes`, length `num_nets + 1`.
    pub(crate) load_start: Vec<u32>,
    /// Encoded loads per net (see type-level comment).
    pub(crate) load_codes: Vec<u32>,
    /// Every net index, ascending — the "cone" of the reference kernel.
    pub(crate) all_nets: Vec<u32>,
    /// Per-primary-input forward cones over gate topo positions:
    /// `gate_words` words per PI, bit `g` set when gate `g` is reachable
    /// from the PI through gate fanout, *crossing DFF boundaries* (a PI
    /// reaching a DFF data input reaches the DFF's output net — and its
    /// loads — on later cycles, so membership means "reachable at some
    /// cycle offset"). Bounds what a changed input stream can dirty in
    /// the cone-seeded incremental good-trace rebuild (the dynamic
    /// dirty set is narrower; the static bound is debug-asserted).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) pi_cone_gates: Vec<u64>,
    /// Per-primary-input forward cones over DFF indices, `dff_words`
    /// words per PI (same closure as `pi_cone_gates`). Consumed by the
    /// debug-build cone-union assertion in `good_trace_from_cone`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) pi_cone_dffs: Vec<u64>,
    /// `u64` words per PI in `pi_cone_gates`.
    pub(crate) gate_words: usize,
    /// `u64` words per PI in `pi_cone_dffs`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) dff_words: usize,
}

impl CompiledCircuit {
    /// Lowers a levelized circuit. O(nets + gates + pins).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub(crate) fn build(c: &Circuit) -> CompiledCircuit {
        assert!(c.is_levelized(), "circuit must be levelized");
        let num_nets = c.num_nets();
        let num_gates = c.num_gates();
        let num_dffs = c.num_dffs();

        let mut kinds = Vec::with_capacity(num_gates);
        let mut in_start = Vec::with_capacity(num_gates + 1);
        let mut in_nets = Vec::new();
        let mut out_nets = Vec::with_capacity(num_gates);
        let mut topo_pos = vec![0u32; num_gates];
        in_start.push(0u32);
        for (pos, &gid) in c.topo_gates().iter().enumerate() {
            let g = c.gate(gid);
            topo_pos[gid.index()] = pos as u32;
            kinds.push(g.kind);
            for &i in &g.inputs {
                in_nets.push(i.index() as u32);
            }
            in_start.push(in_nets.len() as u32);
            out_nets.push(g.output.index() as u32);
        }

        let pi_nets = c.inputs().iter().map(|n| n.index() as u32).collect();
        let const_vals = c.const_nets().map(|(n, v)| (n.index() as u32, v)).collect();
        let dff_d = c
            .dffs()
            .iter()
            .map(|d| d.d.expect("levelized circuits have connected DFFs").index() as u32)
            .collect();
        let dff_q = c.dffs().iter().map(|d| d.q.index() as u32).collect();
        let observed = c.observed_nets().map(|n| n.index() as u32).collect();

        // Fanout CSR over nets: consuming gate topo positions + DFF data
        // loads, for cone propagation.
        let mut load_count = vec![0u32; num_nets];
        for pos in 0..num_gates {
            for i in in_start[pos] as usize..in_start[pos + 1] as usize {
                load_count[in_nets[i] as usize] += 1;
            }
        }
        let dff_d_vec: &Vec<u32> = &dff_d;
        for &d in dff_d_vec {
            load_count[d as usize] += 1;
        }
        let mut load_start = Vec::with_capacity(num_nets + 1);
        let mut acc = 0u32;
        load_start.push(0u32);
        for &cnt in &load_count {
            acc += cnt;
            load_start.push(acc);
        }
        let mut cursor: Vec<u32> = load_start[..num_nets].to_vec();
        let mut load_codes = vec![0u32; acc as usize];
        for pos in 0..num_gates {
            for &inp in &in_nets[in_start[pos] as usize..in_start[pos + 1] as usize] {
                let n = inp as usize;
                load_codes[cursor[n] as usize] = pos as u32;
                cursor[n] += 1;
            }
        }
        for (k, &d) in dff_d_vec.iter().enumerate() {
            load_codes[cursor[d as usize] as usize] = (num_gates + k) as u32;
            cursor[d as usize] += 1;
        }

        // Per-PI forward-cone bitmaps: a monotone worklist closure over
        // the load CSR, continuing through DFF boundaries via the Q net.
        // O(inputs × (nets + pins)); the per-PI net stamp avoids
        // clearing the visited set between inputs.
        let pi_nets: Vec<u32> = pi_nets;
        let dff_q: Vec<u32> = dff_q;
        let out_nets: Vec<u32> = out_nets;
        let gate_words = num_gates.div_ceil(64);
        let dff_words = num_dffs.div_ceil(64);
        let mut pi_cone_gates = vec![0u64; pi_nets.len() * gate_words];
        let mut pi_cone_dffs = vec![0u64; pi_nets.len() * dff_words];
        let mut seen = vec![u32::MAX; num_nets];
        let mut stack: Vec<u32> = Vec::new();
        for (pi, &root) in pi_nets.iter().enumerate() {
            seen[root as usize] = pi as u32;
            stack.push(root);
            while let Some(n) = stack.pop() {
                let (s, e) = (load_start[n as usize], load_start[n as usize + 1]);
                for &code in &load_codes[s as usize..e as usize] {
                    let next = if (code as usize) < num_gates {
                        let g = code as usize;
                        pi_cone_gates[pi * gate_words + g / 64] |= 1u64 << (g % 64);
                        out_nets[g]
                    } else {
                        let k = code as usize - num_gates;
                        pi_cone_dffs[pi * dff_words + k / 64] |= 1u64 << (k % 64);
                        dff_q[k]
                    };
                    if seen[next as usize] != pi as u32 {
                        seen[next as usize] = pi as u32;
                        stack.push(next);
                    }
                }
            }
        }

        CompiledCircuit {
            num_nets,
            num_gates,
            num_dffs,
            kinds,
            in_start,
            in_nets,
            out_nets,
            pi_nets,
            const_vals,
            dff_d,
            dff_q,
            observed,
            topo_pos,
            load_start,
            load_codes,
            all_nets: (0..num_nets as u32).collect(),
            pi_cone_gates,
            pi_cone_dffs,
            gate_words,
            dff_words,
        }
    }

    /// Bitmap over gate topo positions of primary input `pi`'s forward
    /// cone (DFF-boundary-crossing closure).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn cone_gates_of(&self, pi: usize) -> &[u64] {
        &self.pi_cone_gates[pi * self.gate_words..(pi + 1) * self.gate_words]
    }

    /// Bitmap over DFF indices of primary input `pi`'s forward cone.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn cone_dffs_of(&self, pi: usize) -> &[u64] {
        &self.pi_cone_dffs[pi * self.dff_words..(pi + 1) * self.dff_words]
    }

    /// Scalar three-valued evaluation of the fault-free machine over
    /// `seq`, starting from the flip-flop state `init_ff`. Returns the
    /// bit-packed per-cycle trace of every net plus the final flip-flop
    /// state (for incremental callers to resume from).
    pub(crate) fn good_trace(
        &self,
        seq: &TestSequence,
        init_ff: &[Logic3],
    ) -> (GoodTrace, Vec<Logic3>) {
        debug_assert_eq!(init_ff.len(), self.num_dffs);
        let words = self.num_nets.div_ceil(64);
        let mut trace = GoodTrace {
            num_cycles: seq.len(),
            words,
            ones: vec![0u64; words * seq.len()],
            zeros: vec![0u64; words * seq.len()],
        };
        let mut ff = init_ff.to_vec();
        let mut nets = vec![Logic3::X; self.num_nets];
        for u in 0..seq.len() {
            self.good_cycle(seq.row(u), &mut ff, &mut nets, &mut trace, u);
        }
        (trace, ff)
    }

    /// Like [`good_trace`](Self::good_trace), but copies the first
    /// `shared` cycles from `base` (whose input rows must match `seq` on
    /// that prefix) and simulates only the suffix, starting from the
    /// flip-flop state `base` recorded entering cycle `shared`.
    pub(crate) fn good_trace_from(
        &self,
        seq: &TestSequence,
        init_ff: &[Logic3],
        base: &GoodTrace,
        shared: usize,
    ) -> (GoodTrace, Vec<Logic3>) {
        debug_assert_eq!(init_ff.len(), self.num_dffs);
        debug_assert!(shared <= seq.len() && shared <= base.len());
        let words = self.num_nets.div_ceil(64);
        debug_assert_eq!(base.words, words);
        let mut trace = GoodTrace {
            num_cycles: seq.len(),
            words,
            ones: vec![0u64; words * seq.len()],
            zeros: vec![0u64; words * seq.len()],
        };
        trace.ones[..shared * words].copy_from_slice(&base.ones[..shared * words]);
        trace.zeros[..shared * words].copy_from_slice(&base.zeros[..shared * words]);
        // The state entering cycle `shared` is what each flip-flop
        // latched at the end of cycle `shared - 1` — its D net's value.
        let mut ff: Vec<Logic3> = if shared == 0 {
            init_ff.to_vec()
        } else {
            self.dff_d
                .iter()
                .map(|&d| base.value(shared - 1, d as usize))
                .collect()
        };
        let mut nets = vec![Logic3::X; self.num_nets];
        for u in shared..seq.len() {
            self.good_cycle(seq.row(u), &mut ff, &mut nets, &mut trace, u);
        }
        (trace, ff)
    }

    /// Cone-seeded variant of [`good_trace_from`](Self::good_trace_from):
    /// instead of re-evaluating every gate of every suffix cycle, the
    /// rows that overlap `base` are rebuilt *incrementally* — the dirty
    /// worklist is seeded each cycle with only the primary inputs whose
    /// streams differ (`changed_pis`, per-PI flags) plus the Q nets of
    /// flip-flops whose data input was dirty the cycle before, and a
    /// gate is evaluated only when one of its operands left the base
    /// value. A gate whose recomputed output equals the base value goes
    /// clean on the spot, so dirtiness dies out instead of flooding the
    /// netlist. Rows past `base.len()` fall back to full evaluation.
    ///
    /// Every evaluated gate provably lies inside the union of the
    /// changed inputs' forward cones (`pi_cone_gates`, debug-asserted),
    /// and the produced trace is bit-identical to the full rebuild —
    /// pinned by `good_trace_from_cone_matches_full` below and the
    /// prefix-cache proptests. Returns the gate-evaluation accounting
    /// alongside the trace and final flip-flop state.
    pub(crate) fn good_trace_from_cone(
        &self,
        seq: &TestSequence,
        init_ff: &[Logic3],
        base: &GoodTrace,
        shared: usize,
        changed_pis: &[bool],
    ) -> (GoodTrace, Vec<Logic3>, TraceStats) {
        debug_assert_eq!(init_ff.len(), self.num_dffs);
        debug_assert_eq!(changed_pis.len(), self.pi_nets.len());
        debug_assert!(shared <= seq.len() && shared <= base.len());
        if shared == 0 {
            // Nothing is shared, so nothing is incremental: the full
            // path is the honest accounting.
            let (trace, ff) = self.good_trace(seq, init_ff);
            let evaluated = (self.num_gates * seq.len()) as u64;
            return (trace, ff, TraceStats::full(evaluated));
        }
        let words = self.num_nets.div_ceil(64);
        debug_assert_eq!(base.words, words);
        let mut trace = GoodTrace {
            num_cycles: seq.len(),
            words,
            ones: vec![0u64; words * seq.len()],
            zeros: vec![0u64; words * seq.len()],
        };
        trace.ones[..shared * words].copy_from_slice(&base.ones[..shared * words]);
        trace.zeros[..shared * words].copy_from_slice(&base.zeros[..shared * words]);
        let mut stats = TraceStats::default();
        // Union cone of the changed input streams: the static bound the
        // dynamic dirty set must stay inside.
        #[cfg(debug_assertions)]
        let (cone, cone_ffs): (Vec<u64>, Vec<u64>) = {
            let mut cone = vec![0u64; self.gate_words];
            let mut cone_ffs = vec![0u64; self.dff_words];
            for (pi, &flag) in changed_pis.iter().enumerate() {
                if flag {
                    for (w, &bits) in self.cone_gates_of(pi).iter().enumerate() {
                        cone[w] |= bits;
                    }
                    for (w, &bits) in self.cone_dffs_of(pi).iter().enumerate() {
                        cone_ffs[w] |= bits;
                    }
                }
            }
            (cone, cone_ffs)
        };
        let mut sched = vec![0u64; self.gate_words];
        let mut dirty = vec![false; self.num_nets];
        let mut val = vec![Logic3::X; self.num_nets];
        let mut dirty_nets: Vec<u32> = Vec::new();
        // DFF indices whose data net was dirty in the previous cycle:
        // their Q nets seed the next cycle's worklist (this is how
        // dirtiness crosses the register boundary).
        let mut dirty_qs: Vec<u32> = Vec::new();
        let mut next_qs: Vec<u32> = Vec::new();
        let overlap = seq.len().min(base.len());
        for u in shared..overlap {
            let evaluated_before = stats.gates_evaluated;
            // Seed: changed-stream PIs that actually differ this cycle…
            let row = seq.row(u);
            for (pi, &n) in self.pi_nets.iter().enumerate() {
                if !changed_pis[pi] {
                    debug_assert_eq!(
                        Logic3::from(row[pi]),
                        base.value(u, n as usize),
                        "unchanged stream diverged from the base trace"
                    );
                    continue;
                }
                let v: Logic3 = row[pi].into();
                if v != base.value(u, n as usize) {
                    dirty[n as usize] = true;
                    val[n as usize] = v;
                    dirty_nets.push(n);
                    mark_cone_loads(self, n as usize, &mut sched, &mut next_qs);
                }
            }
            // …and the Q nets latched from last cycle's dirty D nets.
            for &k in &dirty_qs {
                #[cfg(debug_assertions)]
                debug_assert!(
                    cone_ffs[k as usize / 64] & (1u64 << (k % 64)) != 0,
                    "flip-flop {k} latched dirtiness outside the changed-input cone union"
                );
                let q = self.dff_q[k as usize] as usize;
                let v = trace.value(u - 1, self.dff_d[k as usize] as usize);
                debug_assert_ne!(v, base.value(u, q), "a dirty D net implies a dirty Q");
                dirty[q] = true;
                val[q] = v;
                dirty_nets.push(q as u32);
                mark_cone_loads(self, q, &mut sched, &mut next_qs);
            }
            // Forward sweep in topo order: loads sit at strictly later
            // positions, so popping the lowest set bit first evaluates
            // everything that can change exactly once.
            let mut wi = 0usize;
            while wi < self.gate_words {
                if sched[wi] == 0 {
                    wi += 1;
                    continue;
                }
                let bit = sched[wi].trailing_zeros() as usize;
                sched[wi] &= sched[wi] - 1;
                let pos = wi * 64 + bit;
                #[cfg(debug_assertions)]
                debug_assert!(
                    cone[wi] & (1u64 << bit) != 0,
                    "gate {pos} dirtied outside the changed-input cone union"
                );
                stats.gates_evaluated += 1;
                let s = self.in_start[pos] as usize;
                let e = self.in_start[pos + 1] as usize;
                let read = |n: usize| if dirty[n] { val[n] } else { base.value(u, n) };
                let mut acc = read(self.in_nets[s] as usize);
                match self.kinds[pos] {
                    GateKind::And | GateKind::Nand => {
                        for &i in &self.in_nets[s + 1..e] {
                            acc = acc.and(read(i as usize));
                        }
                    }
                    GateKind::Or | GateKind::Nor => {
                        for &i in &self.in_nets[s + 1..e] {
                            acc = acc.or(read(i as usize));
                        }
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        for &i in &self.in_nets[s + 1..e] {
                            acc = acc.xor(read(i as usize));
                        }
                    }
                    GateKind::Not | GateKind::Buf => {}
                }
                if self.kinds[pos].inverting() {
                    acc = acc.not();
                }
                let out = self.out_nets[pos] as usize;
                if acc != base.value(u, out) {
                    dirty[out] = true;
                    val[out] = acc;
                    dirty_nets.push(out as u32);
                    mark_cone_loads(self, out, &mut sched, &mut next_qs);
                }
            }
            stats.gates_saved += self.num_gates as u64 - (stats.gates_evaluated - evaluated_before);
            // Write the row: the base row verbatim, then the dirty nets.
            let rb = u * words;
            trace.ones[rb..rb + words].copy_from_slice(&base.ones[rb..rb + words]);
            trace.zeros[rb..rb + words].copy_from_slice(&base.zeros[rb..rb + words]);
            for &n in &dirty_nets {
                let w = rb + n as usize / 64;
                let bit = 1u64 << (n % 64);
                trace.ones[w] &= !bit;
                trace.zeros[w] &= !bit;
                match val[n as usize] {
                    Logic3::One => trace.ones[w] |= bit,
                    Logic3::Zero => trace.zeros[w] |= bit,
                    Logic3::X => {}
                }
            }
            // Sparse reset for the next cycle.
            for &n in &dirty_nets {
                dirty[n as usize] = false;
            }
            dirty_nets.clear();
            std::mem::swap(&mut dirty_qs, &mut next_qs);
            next_qs.clear();
        }
        // Rows past the base trace have nothing to diff against: full
        // scalar evaluation from the flip-flop state the incremental
        // rows produced.
        let mut ff: Vec<Logic3> = if overlap == 0 {
            init_ff.to_vec()
        } else {
            self.dff_d
                .iter()
                .map(|&d| trace.value(overlap - 1, d as usize))
                .collect()
        };
        if overlap < seq.len() {
            let mut nets = vec![Logic3::X; self.num_nets];
            for u in overlap..seq.len() {
                self.good_cycle(seq.row(u), &mut ff, &mut nets, &mut trace, u);
            }
            stats.gates_evaluated += (self.num_gates * (seq.len() - overlap)) as u64;
        }
        (trace, ff, stats)
    }

    /// One scalar fault-free cycle: apply `row`, evaluate all gates in
    /// topological order, latch the flip-flops, and record every net
    /// into `trace` at cycle `u`.
    fn good_cycle(
        &self,
        row: &[bool],
        ff: &mut [Logic3],
        nets: &mut [Logic3],
        trace: &mut GoodTrace,
        u: usize,
    ) {
        for (pi, &n) in self.pi_nets.iter().enumerate() {
            nets[n as usize] = row[pi].into();
        }
        for (k, &q) in self.dff_q.iter().enumerate() {
            nets[q as usize] = ff[k];
        }
        for &(n, v) in &self.const_vals {
            nets[n as usize] = v.into();
        }
        for pos in 0..self.num_gates {
            let s = self.in_start[pos] as usize;
            let e = self.in_start[pos + 1] as usize;
            let mut acc = nets[self.in_nets[s] as usize];
            match self.kinds[pos] {
                GateKind::And | GateKind::Nand => {
                    for &i in &self.in_nets[s + 1..e] {
                        acc = acc.and(nets[i as usize]);
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    for &i in &self.in_nets[s + 1..e] {
                        acc = acc.or(nets[i as usize]);
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for &i in &self.in_nets[s + 1..e] {
                        acc = acc.xor(nets[i as usize]);
                    }
                }
                GateKind::Not | GateKind::Buf => {}
            }
            if self.kinds[pos].inverting() {
                acc = acc.not();
            }
            nets[self.out_nets[pos] as usize] = acc;
        }
        for (k, &d) in self.dff_d.iter().enumerate() {
            ff[k] = nets[d as usize];
        }
        let base = u * trace.words;
        for (n, &v) in nets.iter().enumerate() {
            match v {
                Logic3::One => trace.ones[base + n / 64] |= 1u64 << (n % 64),
                Logic3::Zero => trace.zeros[base + n / 64] |= 1u64 << (n % 64),
                Logic3::X => {}
            }
        }
    }
}

/// Gate-evaluation accounting for an incremental good-trace rebuild:
/// how many gates the suffix actually evaluated, and how many a full
/// per-cycle rescan would have evaluated but the cone-restricted sweep
/// proved clean. `evaluated + saved = num_gates × overlap_cycles` for
/// the incrementally rebuilt rows; rows past the base trace count as
/// fully evaluated with nothing saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct TraceStats {
    /// Gates evaluated while rebuilding the suffix.
    pub(crate) gates_evaluated: u64,
    /// Gates a full rescan would have re-evaluated for nothing.
    pub(crate) gates_saved: u64,
}

impl TraceStats {
    /// Accounting for a full (non-incremental) rebuild.
    pub(crate) fn full(evaluated: u64) -> TraceStats {
        TraceStats {
            gates_evaluated: evaluated,
            gates_saved: 0,
        }
    }
}

/// Schedules the consumers of a freshly dirtied net during the
/// cone-seeded good-trace rebuild: consuming gates join the bitmap
/// worklist, DFF data loads are collected for the *next* cycle's Q-net
/// seeding. Each net is dirtied at most once per cycle (single driver),
/// so the DFF list never sees duplicates.
#[inline]
fn mark_cone_loads(cc: &CompiledCircuit, net: usize, sched: &mut [u64], next_qs: &mut Vec<u32>) {
    let s = cc.load_start[net] as usize;
    let e = cc.load_start[net + 1] as usize;
    for &code in &cc.load_codes[s..e] {
        if (code as usize) < cc.num_gates {
            sched[code as usize / 64] |= 1u64 << (code % 64);
        } else {
            next_qs.push(code - cc.num_gates as u32);
        }
    }
}

/// Bit-packed per-cycle values of every net in the fault-free machine.
#[derive(Debug, Clone)]
pub(crate) struct GoodTrace {
    num_cycles: usize,
    words: usize,
    ones: Vec<u64>,
    zeros: Vec<u64>,
}

impl GoodTrace {
    /// Number of recorded cycles.
    pub(crate) fn len(&self) -> usize {
        self.num_cycles
    }

    /// The fault-free value of net `n` at cycle `u`, broadcast to all
    /// machine bit positions of the requested lane width. The trace
    /// itself is packed one bit per net regardless of the batch width —
    /// only this broadcast is width-dependent.
    #[inline]
    pub(crate) fn planes<W: Word>(&self, u: usize, n: usize) -> Planes<W> {
        let w = u * self.words + n / 64;
        let bit = 1u64 << (n % 64);
        if self.ones[w] & bit != 0 {
            Planes::ALL_ONE
        } else if self.zeros[w] & bit != 0 {
            Planes::ALL_ZERO
        } else {
            Planes::ALL_X
        }
    }

    /// The fault-free value of net `n` at cycle `u` as a scalar.
    #[inline]
    pub(crate) fn value(&self, u: usize, n: usize) -> Logic3 {
        let w = u * self.words + n / 64;
        let bit = 1u64 << (n % 64);
        if self.ones[w] & bit != 0 {
            Logic3::One
        } else if self.zeros[w] & bit != 0 {
            Logic3::Zero
        } else {
            Logic3::X
        }
    }
}

/// Complete state of one fault batch at a cycle boundary of `run_batch`,
/// captured at checkpointed cycles so a later evaluation sharing the
/// input prefix can resume mid-sequence instead of replaying from
/// cycle 0.
///
/// Everything the remaining cycles can observe is stored: the live
/// mask, the faulty flip-flop planes, the *explicit* dirty flip-flop
/// set (restored verbatim on resume — recomputing it by comparing
/// planes against the good machine would drop flip-flops whose faulty
/// planes converged while still flagged, changing `gates_evaluated`),
/// the cumulative [`BatchStats`], and the detections recorded strictly
/// before `cycle` (filled in by the caller, which owns detection
/// bookkeeping). Resuming from a snapshot is therefore bit-identical to
/// a from-scratch run, deterministic counters included.
#[derive(Debug, Clone)]
pub(crate) struct BatchCkpt<W> {
    /// The cycle the snapshot resumes at (state *entering* this cycle).
    pub(crate) cycle: usize,
    /// Live fault mask entering `cycle`.
    pub(crate) live: W,
    /// Faulty flip-flop planes entering `cycle`.
    pub(crate) ff: Vec<Planes<W>>,
    /// Flip-flop indices flagged dirty entering `cycle`.
    pub(crate) dirty_dffs: Vec<u32>,
    /// Cumulative kernel stats over cycles `0..cycle`.
    pub(crate) stats: BatchStats,
    /// Detections `(fault index, cycle)` recorded before `cycle`.
    pub(crate) found: Vec<(usize, usize)>,
}

/// Cycle interval between state snapshots: coarse enough to keep the
/// capture overhead negligible, fine enough that a resume rarely
/// replays more than a few cycles it could have skipped.
pub(crate) fn snapshot_interval(len: usize) -> usize {
    (len / 8).clamp(4, 64)
}

/// One fault batch's injections, flattened into sorted arrays.
///
/// All gate-indexed entries are keyed by *topological position* (not
/// `GateId`), so both kernels can merge them into their topo-order
/// stepping loop with monotone cursors.
#[derive(Debug, Clone, Default)]
pub(crate) struct Schedule<W> {
    /// Stem injections on primary inputs: (PI index, net, f1, f0).
    pub(crate) src_pi: Vec<(u32, u32, W, W)>,
    /// Stem injections on DFF outputs: (DFF index, net, f1, f0).
    pub(crate) src_dff: Vec<(u32, u32, W, W)>,
    /// Stem injections on constant nets: (net, value, f1, f0).
    pub(crate) src_const: Vec<(u32, bool, W, W)>,
    /// Stem injections on gate outputs: (topo position, f1, f0), sorted.
    pub(crate) gate_stems: Vec<(u32, W, W)>,
    /// Gate-pin injections: (topo position, pin, f1, f0), sorted.
    pub(crate) pins: Vec<(u32, u32, W, W)>,
    /// DFF-data injections: (DFF index, f1, f0), sorted.
    pub(crate) dffs: Vec<(u32, W, W)>,
    /// Cone seeds: (net, fault bits first observable there). Stems seed
    /// their own net; pin faults seed the consuming gate's output;
    /// DFF-data faults seed the flip-flop's state output.
    pub(crate) seeds: Vec<(u32, W)>,
    /// Conditional (activation-gated) injections, overlaid per cycle.
    /// Empty for pure stuck-at batches — the static arrays above are
    /// then used directly, with zero per-cycle cost.
    pub(crate) cond: Vec<CondInj<W>>,
}

impl<W: Word> Schedule<W> {
    /// Builds the schedule for one chunk of up to `W::BITS - 1` indexed
    /// faults; fault `k` of the chunk occupies machine bit `k + 1`.
    pub(crate) fn build(
        c: &Circuit,
        cc: &CompiledCircuit,
        faults: &[(usize, Fault)],
    ) -> Schedule<W> {
        debug_assert!(faults.len() < W::BITS as usize);
        let mut sched = Schedule::default();
        // (slot, key1, key2, watch, slow_to, bit): resolved to array
        // indices after the sorts below.
        let mut cond_raw: Vec<(InjSlot, u32, u32, u32, bool, W)> = Vec::new();
        let seed = |sched: &mut Schedule<W>, net: u32, bits: W| {
            if let Some(e) = sched.seeds.iter_mut().find(|(n, _)| *n == net) {
                e.1 |= bits;
            } else {
                sched.seeds.push((net, bits));
            }
        };
        for (k, &(_, f)) in faults.iter().enumerate() {
            let bit = W::bit(k + 1);
            // A stuck-at fault contributes its masks statically; a
            // transition-delay fault contributes a zero-mask entry plus a
            // conditional component that ORs the effect in on activation
            // cycles. The effect polarity (force the *old* value) is
            // derived from `slow_to` at overlay time.
            let (f1, f0, cond) = match f {
                Fault::StuckAt { stuck, .. } => {
                    if stuck {
                        (bit, W::ZERO, None)
                    } else {
                        (W::ZERO, bit, None)
                    }
                }
                Fault::TransitionDelay { site, slow_to } => {
                    let watch = match site {
                        FaultSite::Stem(net) => net.index() as u32,
                        FaultSite::GatePin { gate, pin } => c.gate(gate).inputs[pin].index() as u32,
                        FaultSite::DffData(k) => cc.dff_d[k],
                    };
                    (W::ZERO, W::ZERO, Some((watch, slow_to)))
                }
            };
            match f.site() {
                FaultSite::Stem(net) => {
                    let n = net.index() as u32;
                    seed(&mut sched, n, bit);
                    let slot = match c.driver(net) {
                        Driver::Gate(gid) => {
                            let pos = cc.topo_pos[gid.index()];
                            merge3(&mut sched.gate_stems, pos, f1, f0);
                            (InjSlot::GateStem, pos, 0)
                        }
                        Driver::Input(pi) => {
                            merge_src(&mut sched.src_pi, pi as u32, n, f1, f0);
                            (InjSlot::SrcPi, pi as u32, 0)
                        }
                        Driver::Dff(k) => {
                            merge_src(&mut sched.src_dff, k as u32, n, f1, f0);
                            (InjSlot::SrcDff, k as u32, 0)
                        }
                        Driver::Const(v) => {
                            if let Some(e) =
                                sched.src_const.iter_mut().find(|(cn, _, _, _)| *cn == n)
                            {
                                e.2 |= f1;
                                e.3 |= f0;
                            } else {
                                sched.src_const.push((n, v, f1, f0));
                            }
                            (InjSlot::SrcConst, n, 0)
                        }
                        Driver::Undriven => unreachable!("levelized circuits have no undriven net"),
                    };
                    if let Some((watch, slow_to)) = cond {
                        cond_raw.push((slot.0, slot.1, slot.2, watch, slow_to, bit));
                    }
                }
                FaultSite::GatePin { gate, pin } => {
                    let pos = cc.topo_pos[gate.index()];
                    let out = cc.out_nets[pos as usize];
                    seed(&mut sched, out, bit);
                    if let Some(e) = sched
                        .pins
                        .iter_mut()
                        .find(|(p, q, _, _)| *p == pos && *q == pin as u32)
                    {
                        e.2 |= f1;
                        e.3 |= f0;
                    } else {
                        sched.pins.push((pos, pin as u32, f1, f0));
                    }
                    if let Some((watch, slow_to)) = cond {
                        cond_raw.push((InjSlot::Pin, pos, pin as u32, watch, slow_to, bit));
                    }
                }
                FaultSite::DffData(k) => {
                    seed(&mut sched, cc.dff_q[k], bit);
                    merge3(&mut sched.dffs, k as u32, f1, f0);
                    if let Some((watch, slow_to)) = cond {
                        cond_raw.push((InjSlot::Dff, k as u32, 0, watch, slow_to, bit));
                    }
                }
            }
        }
        sched.src_pi.sort_unstable_by_key(|e| e.0);
        sched.src_dff.sort_unstable_by_key(|e| e.0);
        sched.src_const.sort_unstable_by_key(|e| e.0);
        sched.gate_stems.sort_unstable_by_key(|e| e.0);
        sched.pins.sort_unstable_by_key(|e| (e.0, e.1));
        sched.dffs.sort_unstable_by_key(|e| e.0);
        sched.seeds.sort_unstable_by_key(|e| e.0);
        for (slot, k1, k2, watch, slow_to, bit) in cond_raw {
            let idx = match slot {
                InjSlot::SrcPi => sched.src_pi.iter().position(|e| e.0 == k1),
                InjSlot::SrcDff => sched.src_dff.iter().position(|e| e.0 == k1),
                InjSlot::SrcConst => sched.src_const.iter().position(|e| e.0 == k1),
                InjSlot::GateStem => sched.gate_stems.iter().position(|e| e.0 == k1),
                InjSlot::Pin => sched.pins.iter().position(|e| e.0 == k1 && e.1 == k2),
                InjSlot::Dff => sched.dffs.iter().position(|e| e.0 == k1),
            }
            .expect("conditional injection targets an entry created above");
            sched.cond.push(CondInj {
                slot,
                idx: idx as u32,
                watch,
                slow_to,
                bit,
            });
        }
        sched
    }

    /// The schedule's injection arrays as consumed by one cycle, with no
    /// conditional components (valid whenever `cond` is empty).
    pub(crate) fn static_view(&self) -> CycleInj<'_, W> {
        CycleInj {
            src_pi: &self.src_pi,
            src_dff: &self.src_dff,
            src_const: &self.src_const,
            gate_stems: &self.gate_stems,
            pins: &self.pins,
            dffs: &self.dffs,
        }
    }
}

/// The effective injection masks for one cycle: either the schedule's
/// static arrays (pure stuck-at) or a [`MaskBuf`] overlay with this
/// cycle's active conditional components OR-ed in. Entry order and keys
/// are identical either way, so the kernels' monotone cursors are
/// oblivious to which source they read.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleInj<'a, W> {
    pub(crate) src_pi: &'a [(u32, u32, W, W)],
    pub(crate) src_dff: &'a [(u32, u32, W, W)],
    pub(crate) src_const: &'a [(u32, bool, W, W)],
    pub(crate) gate_stems: &'a [(u32, W, W)],
    pub(crate) pins: &'a [(u32, u32, W, W)],
    pub(crate) dffs: &'a [(u32, W, W)],
}

/// Per-worker scratch holding one cycle's effective injection masks when
/// a batch carries conditional injections. Buffers are reused across
/// cycles and batches (clear + extend), so the steady-state cycle loop
/// performs no allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct MaskBuf<W> {
    src_pi: Vec<(u32, u32, W, W)>,
    src_dff: Vec<(u32, u32, W, W)>,
    src_const: Vec<(u32, bool, W, W)>,
    gate_stems: Vec<(u32, W, W)>,
    pins: Vec<(u32, u32, W, W)>,
    dffs: Vec<(u32, W, W)>,
}

impl<W: Word> MaskBuf<W> {
    pub(crate) fn new() -> MaskBuf<W> {
        MaskBuf::default()
    }

    /// Rebuilds the effective masks for cycle `u`: copies the static
    /// arrays, then ORs in every conditional injection whose activation
    /// condition holds on the fault-free machine. The launch value at
    /// cycle 0 comes from `prev0` (the good net values entering the
    /// sequence — `None` means the all-`X` start, which never launches).
    fn refresh(
        &mut self,
        sched: &Schedule<W>,
        trace: &GoodTrace,
        u: usize,
        prev0: Option<&[Logic3]>,
    ) {
        self.src_pi.clear();
        self.src_pi.extend_from_slice(&sched.src_pi);
        self.src_dff.clear();
        self.src_dff.extend_from_slice(&sched.src_dff);
        self.src_const.clear();
        self.src_const.extend_from_slice(&sched.src_const);
        self.gate_stems.clear();
        self.gate_stems.extend_from_slice(&sched.gate_stems);
        self.pins.clear();
        self.pins.extend_from_slice(&sched.pins);
        self.dffs.clear();
        self.dffs.extend_from_slice(&sched.dffs);
        for ci in &sched.cond {
            let n = ci.watch as usize;
            let cur = trace.value(u, n);
            let prev = if u > 0 {
                trace.value(u - 1, n)
            } else {
                match prev0 {
                    Some(p) => p[n],
                    None => Logic3::X,
                }
            };
            if cur == ci.slow_to.into() && prev == (!ci.slow_to).into() {
                // The slow site still shows the old value in the capture
                // cycle: slow-to-rise forces 0, slow-to-fall forces 1.
                let (a1, a0) = if ci.slow_to {
                    (W::ZERO, ci.bit)
                } else {
                    (ci.bit, W::ZERO)
                };
                let i = ci.idx as usize;
                match ci.slot {
                    InjSlot::SrcPi => {
                        self.src_pi[i].2 |= a1;
                        self.src_pi[i].3 |= a0;
                    }
                    InjSlot::SrcDff => {
                        self.src_dff[i].2 |= a1;
                        self.src_dff[i].3 |= a0;
                    }
                    InjSlot::SrcConst => {
                        self.src_const[i].2 |= a1;
                        self.src_const[i].3 |= a0;
                    }
                    InjSlot::GateStem => {
                        self.gate_stems[i].1 |= a1;
                        self.gate_stems[i].2 |= a0;
                    }
                    InjSlot::Pin => {
                        self.pins[i].2 |= a1;
                        self.pins[i].3 |= a0;
                    }
                    InjSlot::Dff => {
                        self.dffs[i].1 |= a1;
                        self.dffs[i].2 |= a0;
                    }
                }
            }
        }
    }

    fn view(&self) -> CycleInj<'_, W> {
        CycleInj {
            src_pi: &self.src_pi,
            src_dff: &self.src_dff,
            src_const: &self.src_const,
            gate_stems: &self.gate_stems,
            pins: &self.pins,
            dffs: &self.dffs,
        }
    }
}

fn merge3<W: Word>(v: &mut Vec<(u32, W, W)>, key: u32, f1: W, f0: W) {
    if let Some(e) = v.iter_mut().find(|(k, _, _)| *k == key) {
        e.1 |= f1;
        e.2 |= f0;
    } else {
        v.push((key, f1, f0));
    }
}

fn merge_src<W: Word>(v: &mut Vec<(u32, u32, W, W)>, key: u32, net: u32, f1: W, f0: W) {
    if let Some(e) = v.iter_mut().find(|(k, _, _, _)| *k == key) {
        e.2 |= f1;
        e.3 |= f0;
    } else {
        v.push((key, net, f1, f0));
    }
}

/// Per-worker scratch for the dirty-set kernel. All buffers are
/// allocated once (per worker, per query) and reused across batches and
/// cycles — the cycle loop itself never allocates.
#[derive(Debug, Clone)]
pub(crate) struct ConeScratch<W> {
    /// Per-net fault mask: which machine bits can *ever* differ from
    /// good here (the sequential reachability cone).
    mask: Vec<W>,
    /// Worklist for the mask propagation (net indices).
    worklist: Vec<u32>,
    /// Nets whose mask is non-zero, in discovery order.
    cone_nets: Vec<u32>,
    /// Per-net flag: planes currently differ from the good machine on a
    /// live bit. Valid within one cycle; cleared by walking `dirty_nets`.
    dirty: Vec<bool>,
    /// Nets dirty this cycle, in evaluation order.
    dirty_nets: Vec<u32>,
    /// Bitmap worklist over gate topo positions scheduled this cycle.
    sched_bits: Vec<u64>,
    /// Bitmap over flip-flops whose next state must be examined.
    cand_bits: Vec<u64>,
    /// Per-flip-flop flag: stored planes differ from the good machine.
    /// Persistent across cycles of one run.
    dff_dirty: Vec<bool>,
    /// Flip-flops currently dirty, ascending.
    dirty_dffs: Vec<u32>,
    /// Per-net flag: observed net inside the reachability cone.
    is_observed: Vec<bool>,
    /// Nets flagged in `is_observed`, for O(|cone ∩ observed|) clearing.
    obs_list: Vec<u32>,
}

impl<W: Word> ConeScratch<W> {
    pub(crate) fn new(cc: &CompiledCircuit) -> ConeScratch<W> {
        ConeScratch {
            mask: vec![W::ZERO; cc.num_nets],
            worklist: Vec::with_capacity(cc.num_nets),
            cone_nets: Vec::with_capacity(cc.num_nets),
            dirty: vec![false; cc.num_nets],
            dirty_nets: Vec::with_capacity(cc.num_nets),
            sched_bits: vec![0; cc.num_gates.div_ceil(64)],
            cand_bits: vec![0; cc.num_dffs.div_ceil(64)],
            dff_dirty: vec![false; cc.num_dffs],
            dirty_dffs: Vec::with_capacity(cc.num_dffs),
            is_observed: vec![false; cc.num_nets],
            obs_list: Vec::with_capacity(cc.observed.len()),
        }
    }

    /// Computes the per-net fault masks for `seeds`, restricted to
    /// `live` bits: a monotone worklist closure over gate fanout and
    /// flip-flop boundaries.
    fn propagate(&mut self, cc: &CompiledCircuit, seeds: &[(u32, W)], live: W) {
        for &n in &self.cone_nets {
            self.mask[n as usize] = W::ZERO;
        }
        self.cone_nets.clear();
        self.worklist.clear();
        for &(n, bits) in seeds {
            let bits = bits & live;
            if !bits.is_zero() && self.mask[n as usize].is_zero() {
                self.cone_nets.push(n);
            }
            if !bits.is_zero() {
                self.mask[n as usize] |= bits;
                self.worklist.push(n);
            }
        }
        while let Some(n) = self.worklist.pop() {
            let m = self.mask[n as usize];
            let s = cc.load_start[n as usize] as usize;
            let e = cc.load_start[n as usize + 1] as usize;
            for &code in &cc.load_codes[s..e] {
                let out = if (code as usize) < cc.num_gates {
                    cc.out_nets[code as usize]
                } else {
                    cc.dff_q[code as usize - cc.num_gates]
                };
                let cur = self.mask[out as usize];
                if cur | m != cur {
                    if cur.is_zero() {
                        self.cone_nets.push(out);
                    }
                    self.mask[out as usize] = cur | m;
                    self.worklist.push(out);
                }
            }
        }
    }

    /// Test-only view of the per-net fault mask (after [`run_batch`]).
    #[cfg(test)]
    pub(crate) fn mask_of(&self, net: usize) -> W {
        self.mask[net]
    }

    /// Test-only cone computation entry point.
    #[cfg(test)]
    pub(crate) fn propagate_for_test(&mut self, cc: &CompiledCircuit, seeds: &[(u32, W)], live: W) {
        self.propagate(cc, seeds, live);
    }
}

/// What one evaluated cycle exposes to the query-specific sink.
pub(crate) struct CycleCtx<'a, W> {
    /// Net planes after this cycle's evaluation. Only the nets listed in
    /// `cone_nets` are current; everything else may be stale — clean
    /// nets carry the fault-free value on all live bits.
    pub(crate) nets: &'a [Planes<W>],
    /// OR of `diff_from_good` over the observed nets that can differ.
    /// May carry bits of already-dropped machines; mask with `live`.
    pub(crate) obs_diff: W,
    /// Machine bits still carrying live faults.
    pub(crate) live: W,
    /// Nets whose planes differ from the good machine this cycle (the
    /// dirty set; the whole netlist under the reference kernel).
    pub(crate) cone_nets: &'a [u32],
}

/// Deterministic effort accounting for one batch run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchStats {
    /// Cycles actually evaluated.
    pub(crate) cycles: usize,
    /// Gate evaluations performed.
    pub(crate) gates_evaluated: u64,
    /// Gate evaluations avoided by cone restriction.
    pub(crate) gates_skipped: u64,
    /// Live fault-cycles: per evaluated cycle, the number of faults
    /// still live at its start.
    pub(crate) fault_cycles: u64,
}

/// Drives one batch through `seq` with dirty-set evaluation.
///
/// After every evaluated cycle the `sink` is called with a [`CycleCtx`]
/// and returns `(drop_bits, stop)`: `drop_bits` are removed from the
/// live mask (shrinking the dirty set), and `stop` ends the run early.
/// The run also ends when the live mask empties.
///
/// `ff` holds the batch's persistent flip-flop planes. Planes of
/// flip-flops that end the run clean are synced to the broadcast good
/// state, so at every query boundary `ff` matches the reference kernel
/// on `live | 1` bits exactly.
///
/// With `resume`, the run starts at the snapshot's cycle instead of 0:
/// the caller must have loaded `ff` from the snapshot, and `trace` must
/// agree with the snapshot's originating trace on all cycles before the
/// snapshot (a shared input prefix guarantees this). The passed `live`
/// mask is ignored in favor of the snapshot's. With `snap`, the
/// complete batch state is captured into the vector at checkpointed
/// cycle boundaries (see [`snapshot_interval`]) and at the final cycle.
///
/// `prev0` supplies the fault-free net values *entering* cycle 0 (for
/// incremental segments); `None` is the all-`X` start. It only gates
/// conditional-injection launches at cycle 0 — cycles past the first
/// read their launch value from the trace itself.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch<W: Word>(
    cc: &CompiledCircuit,
    sched: &Schedule<W>,
    mut live: W,
    seq: &TestSequence,
    trace: &GoodTrace,
    prev0: Option<&[Logic3]>,
    ff: &mut [Planes<W>],
    nets: &mut [Planes<W>],
    cone: &mut ConeScratch<W>,
    buf: &mut MaskBuf<W>,
    resume: Option<&BatchCkpt<W>>,
    mut snap: Option<&mut Vec<BatchCkpt<W>>>,
    mut sink: impl FnMut(usize, &CycleCtx<W>) -> (W, bool),
) -> (W, BatchStats) {
    debug_assert_eq!(trace.len(), seq.len());
    let has_cond = !sched.cond.is_empty();
    let (start, mut stats) = match resume {
        Some(ck) => {
            debug_assert!(ck.cycle <= seq.len());
            debug_assert_eq!(ck.ff.len(), cc.num_dffs);
            live = ck.live;
            (ck.cycle, ck.stats)
        }
        None => (0, BatchStats::default()),
    };
    cone.propagate(cc, &sched.seeds, live);
    let ConeScratch {
        mask,
        dirty,
        dirty_nets,
        sched_bits,
        cand_bits,
        dff_dirty,
        dirty_dffs,
        is_observed,
        obs_list,
        ..
    } = &mut *cone;
    // Detection sites: observed nets the reachability cone can touch.
    for &n in obs_list.iter() {
        is_observed[n as usize] = false;
    }
    obs_list.clear();
    for &n in &cc.observed {
        if !mask[n as usize].is_zero() {
            is_observed[n as usize] = true;
            obs_list.push(n);
        }
    }
    // Flip-flops whose stored planes already differ from the good
    // machine's starting state (contamination from earlier queries).
    for &k in dirty_dffs.iter() {
        dff_dirty[k as usize] = false;
    }
    dirty_dffs.clear();
    if let Some(ck) = resume {
        // Restore the snapshot's explicit dirty set instead of rescanning:
        // a flip-flop whose planes converged to the good machine while
        // flagged stays flagged until its next examination, and a rescan
        // would drop it early and change the evaluation schedule.
        for &k in &ck.dirty_dffs {
            dff_dirty[k as usize] = true;
            dirty_dffs.push(k);
        }
    } else if !seq.is_empty() {
        for (k, f) in ff.iter().enumerate() {
            let good = trace.planes::<W>(0, cc.dff_q[k] as usize);
            if !(((f.ones ^ good.ones) | (f.zeros ^ good.zeros)) & (live | W::LSB)).is_zero() {
                dff_dirty[k] = true;
                dirty_dffs.push(k as u32);
            }
        }
    }
    let interval = snapshot_interval(seq.len());
    // A snapshot taken after the live mask died resumes past the loop,
    // the same way the from-scratch run broke out of it.
    let run_cycles = resume.is_none() || !live.is_zero();
    for u in start..seq.len() {
        if !run_cycles {
            break;
        }
        stats.cycles = u + 1;
        stats.fault_cycles += live.count_ones() as u64;
        let mut evaluated = 0u64;
        let inj = if has_cond {
            buf.refresh(sched, trace, u, prev0);
            buf.view()
        } else {
            sched.static_view()
        };

        // Dirty stored state enters on the flip-flop output nets; the
        // flip-flop itself must be re-examined this cycle so it can go
        // clean again.
        for &k in dirty_dffs.iter() {
            let k = k as usize;
            let q = cc.dff_q[k];
            nets[q as usize] = ff[k];
            if !dirty[q as usize] {
                dirty[q as usize] = true;
                dirty_nets.push(q);
            }
            mark_loads(cc, sched_bits, cand_bits, q);
            cand_bits[k >> 6] |= 1 << (k & 63);
        }
        // Sources carrying live stem injections. The fault-free base is
        // exactly the good value (or the stored planes for a dirty
        // flip-flop), and the result is marked dirty conservatively.
        let row = seq.row(u);
        for &(pi, n, f1, f0) in inj.src_pi {
            let (f1, f0) = (f1 & live, f0 & live);
            if !(f1 | f0).is_zero() {
                nets[n as usize] = Planes::broadcast(row[pi as usize]).inject(f1, f0);
                if !dirty[n as usize] {
                    dirty[n as usize] = true;
                    dirty_nets.push(n);
                }
                mark_loads(cc, sched_bits, cand_bits, n);
            }
        }
        for &(k, n, f1, f0) in inj.src_dff {
            let (f1, f0) = (f1 & live, f0 & live);
            if !(f1 | f0).is_zero() {
                let base = if dff_dirty[k as usize] {
                    ff[k as usize]
                } else {
                    trace.planes(u, n as usize)
                };
                nets[n as usize] = base.inject(f1, f0);
                if !dirty[n as usize] {
                    dirty[n as usize] = true;
                    dirty_nets.push(n);
                }
                mark_loads(cc, sched_bits, cand_bits, n);
            }
        }
        for &(n, v, f1, f0) in inj.src_const {
            let (f1, f0) = (f1 & live, f0 & live);
            if !(f1 | f0).is_zero() {
                nets[n as usize] = Planes::broadcast(v).inject(f1, f0);
                if !dirty[n as usize] {
                    dirty[n as usize] = true;
                    dirty_nets.push(n);
                }
                mark_loads(cc, sched_bits, cand_bits, n);
            }
        }
        // Gates carrying live injections run unconditionally — their
        // operands may all be clean.
        for &(pos, f1, f0) in inj.gate_stems {
            if !((f1 | f0) & live).is_zero() {
                sched_bits[(pos >> 6) as usize] |= 1 << (pos & 63);
            }
        }
        for &(pos, _, f1, f0) in inj.pins {
            if !((f1 | f0) & live).is_zero() {
                sched_bits[(pos >> 6) as usize] |= 1 << (pos & 63);
            }
        }
        // Forward sweep over the scheduled-gate bitmap, always taking
        // the lowest pending position. A gate's loads sit at strictly
        // later topo positions, so new work can only land ahead of the
        // scan point: evaluation order is globally ascending, every
        // gate runs at most once per cycle with fresh operands, and the
        // monotone injection cursors stay valid.
        let mut is = 0usize;
        let mut ip = 0usize;
        let mut w = 0usize;
        while w < sched_bits.len() {
            let bits = sched_bits[w];
            if bits == 0 {
                w += 1;
                continue;
            }
            {
                let pos = (w << 6) + bits.trailing_zeros() as usize;
                sched_bits[w] = bits & (bits - 1);
                evaluated += 1;
                let v = eval_gate(cc, inj, pos, &mut is, &mut ip, |n: u32| {
                    if dirty[n as usize] {
                        nets[n as usize]
                    } else {
                        trace.planes(u, n as usize)
                    }
                });
                let out = cc.out_nets[pos] as usize;
                nets[out] = v;
                let good = trace.planes::<W>(u, out);
                if !(((v.ones ^ good.ones) | (v.zeros ^ good.zeros)) & (live | W::LSB)).is_zero()
                    && !dirty[out]
                {
                    dirty[out] = true;
                    dirty_nets.push(out as u32);
                    mark_loads(cc, sched_bits, cand_bits, out as u32);
                }
            }
        }
        // Next-state examination: flip-flops whose data net went dirty,
        // whose stored planes were dirty, or that carry live injections.
        for &(k, f1, f0) in inj.dffs {
            if !((f1 | f0) & live).is_zero() {
                cand_bits[(k >> 6) as usize] |= 1 << (k & 63);
            }
        }
        dirty_dffs.clear();
        let mut id = 0usize;
        for (w, word) in cand_bits.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let k = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let d = cc.dff_d[k] as usize;
                let mut v = if dirty[d] {
                    nets[d]
                } else {
                    trace.planes(u, d)
                };
                while id < inj.dffs.len() && (inj.dffs[id].0 as usize) < k {
                    id += 1;
                }
                if id < inj.dffs.len() && inj.dffs[id].0 as usize == k {
                    let (_, f1, f0) = inj.dffs[id];
                    v = v.inject(f1 & live, f0 & live);
                }
                let good = trace.planes::<W>(u, d);
                if !(((v.ones ^ good.ones) | (v.zeros ^ good.zeros)) & (live | W::LSB)).is_zero() {
                    ff[k] = v;
                    dff_dirty[k] = true;
                    dirty_dffs.push(k as u32);
                } else {
                    dff_dirty[k] = false;
                }
            }
        }
        // Detection sites: only dirty observed nets can differ.
        let mut obs_diff = W::ZERO;
        for &n in dirty_nets.iter() {
            if is_observed[n as usize] {
                obs_diff |= nets[n as usize].diff_from_good();
            }
        }
        stats.gates_evaluated += evaluated;
        stats.gates_skipped += cc.num_gates as u64 - evaluated;
        let ctx = CycleCtx {
            nets,
            obs_diff,
            live,
            cone_nets: dirty_nets,
        };
        let (drop, stop) = sink(u, &ctx);
        for &n in dirty_nets.iter() {
            dirty[n as usize] = false;
        }
        dirty_nets.clear();
        live &= !drop;
        if let Some(snaps) = snap.as_deref_mut() {
            if (u + 1) % interval == 0 || u + 1 == seq.len() || live.is_zero() || stop {
                snaps.push(BatchCkpt {
                    cycle: u + 1,
                    live,
                    ff: ff.to_vec(),
                    dirty_dffs: dirty_dffs.clone(),
                    stats,
                    found: Vec::new(),
                });
            }
        }
        if live.is_zero() || stop {
            break;
        }
    }
    // Clean flip-flops hold the good machine's final state; sync their
    // planes so the persistent batch state is valid at the query
    // boundary.
    if stats.cycles > 0 {
        let last = stats.cycles - 1;
        for k in 0..cc.num_dffs {
            if !dff_dirty[k] {
                ff[k] = trace.planes(last, cc.dff_d[k] as usize);
            }
        }
    }
    (live, stats)
}

/// Schedules every consumer of `net`: gate loads into the gate bitmap,
/// flip-flop data loads into the candidate bitmap.
#[inline]
fn mark_loads(cc: &CompiledCircuit, sched_bits: &mut [u64], cand_bits: &mut [u64], net: u32) {
    let s = cc.load_start[net as usize] as usize;
    let e = cc.load_start[net as usize + 1] as usize;
    for &code in &cc.load_codes[s..e] {
        let code = code as usize;
        if code < cc.num_gates {
            sched_bits[code >> 6] |= 1 << (code & 63);
        } else {
            let k = code - cc.num_gates;
            cand_bits[k >> 6] |= 1 << (k & 63);
        }
    }
}

/// The historic full-walk kernel, kept as a differential-testing oracle
/// behind `SimOptions::reference_kernel`: every cycle writes every
/// source, evaluates every gate and updates every flip-flop, with no
/// good-trace sharing and no cone restriction. It shares the injection
/// [`Schedule`] (cursor merge instead of the original `HashMap` probes)
/// and the sink contract with [`run_batch`], so any divergence between
/// the two kernels is in the cone machinery, not the plumbing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch_reference<W: Word>(
    cc: &CompiledCircuit,
    sched: &Schedule<W>,
    mut live: W,
    seq: &TestSequence,
    trace: &GoodTrace,
    prev0: Option<&[Logic3]>,
    ff: &mut [Planes<W>],
    nets: &mut [Planes<W>],
    buf: &mut MaskBuf<W>,
    mut sink: impl FnMut(usize, &CycleCtx<W>) -> (W, bool),
) -> (W, BatchStats) {
    debug_assert_eq!(trace.len(), seq.len());
    let has_cond = !sched.cond.is_empty();
    nets.fill(Planes::ALL_X);
    let mut stats = BatchStats::default();
    for u in 0..seq.len() {
        stats.cycles = u + 1;
        stats.gates_evaluated += cc.num_gates as u64;
        stats.fault_cycles += live.count_ones() as u64;
        // The trace feeds only conditional-injection activation: the
        // reference machine's own evolution stays trace-free.
        let inj = if has_cond {
            buf.refresh(sched, trace, u, prev0);
            buf.view()
        } else {
            sched.static_view()
        };
        let row = seq.row(u);
        for (pi, &n) in cc.pi_nets.iter().enumerate() {
            nets[n as usize] = Planes::broadcast(row[pi]);
        }
        for (k, &q) in cc.dff_q.iter().enumerate() {
            nets[q as usize] = ff[k];
        }
        for &(n, v) in &cc.const_vals {
            nets[n as usize] = Planes::broadcast(v);
        }
        // Source stem injections, applied unconditionally — dropped bit
        // lanes keep carrying their faulty values, exactly like the
        // original kernel.
        for &(_, n, f1, f0) in inj.src_pi {
            nets[n as usize] = nets[n as usize].inject(f1, f0);
        }
        for &(_, n, f1, f0) in inj.src_dff {
            nets[n as usize] = nets[n as usize].inject(f1, f0);
        }
        for &(n, _, f1, f0) in inj.src_const {
            nets[n as usize] = nets[n as usize].inject(f1, f0);
        }
        let mut is = 0usize;
        let mut ip = 0usize;
        for pos in 0..cc.num_gates {
            let v = eval_gate(cc, inj, pos, &mut is, &mut ip, |n: u32| nets[n as usize]);
            nets[cc.out_nets[pos] as usize] = v;
        }
        let mut id = 0usize;
        for k in 0..cc.num_dffs {
            let mut v = nets[cc.dff_d[k] as usize];
            while id < inj.dffs.len() && (inj.dffs[id].0 as usize) < k {
                id += 1;
            }
            if id < inj.dffs.len() && inj.dffs[id].0 as usize == k {
                let (_, f1, f0) = inj.dffs[id];
                v = v.inject(f1, f0);
            }
            ff[k] = v;
        }
        let mut obs_diff = W::ZERO;
        for &n in &cc.observed {
            obs_diff |= nets[n as usize].diff_from_good();
        }
        let ctx = CycleCtx {
            nets,
            obs_diff,
            live,
            cone_nets: &cc.all_nets,
        };
        let (drop, stop) = sink(u, &ctx);
        live &= !drop;
        if live.is_zero() || stop {
            break;
        }
    }
    (live, stats)
}

/// Evaluates one topo-position gate: advances the stem/pin cursors to
/// `pos`, folds the operand planes (with pin injections merged in) and
/// applies any output-stem injection. Shared by both kernels; the
/// `read` closure abstracts where operand planes come from — the net
/// array for the reference kernel, the dirty-set/good-trace split for
/// the compiled kernel.
#[inline]
fn eval_gate<W: Word>(
    cc: &CompiledCircuit,
    inj: CycleInj<'_, W>,
    pos: usize,
    is: &mut usize,
    ip: &mut usize,
    read: impl Fn(u32) -> Planes<W> + Copy,
) -> Planes<W> {
    while *is < inj.gate_stems.len() && (inj.gate_stems[*is].0 as usize) < pos {
        *is += 1;
    }
    while *ip < inj.pins.len() && (inj.pins[*ip].0 as usize) < pos {
        *ip += 1;
    }
    let s = cc.in_start[pos] as usize;
    let e = cc.in_start[pos + 1] as usize;
    let has_pin_inj = *ip < inj.pins.len() && inj.pins[*ip].0 as usize == pos;
    let ip = *ip;
    let mut acc = if has_pin_inj {
        fetch_injected(inj, pos, 0, cc.in_nets[s], ip, read)
    } else {
        read(cc.in_nets[s])
    };
    match cc.kinds[pos] {
        GateKind::And | GateKind::Nand => {
            for (pin, &i) in cc.in_nets[s + 1..e].iter().enumerate() {
                let v = if has_pin_inj {
                    fetch_injected(inj, pos, pin + 1, i, ip, read)
                } else {
                    read(i)
                };
                acc = acc.and(v);
            }
        }
        GateKind::Or | GateKind::Nor => {
            for (pin, &i) in cc.in_nets[s + 1..e].iter().enumerate() {
                let v = if has_pin_inj {
                    fetch_injected(inj, pos, pin + 1, i, ip, read)
                } else {
                    read(i)
                };
                acc = acc.or(v);
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            for (pin, &i) in cc.in_nets[s + 1..e].iter().enumerate() {
                let v = if has_pin_inj {
                    fetch_injected(inj, pos, pin + 1, i, ip, read)
                } else {
                    read(i)
                };
                acc = acc.xor(v);
            }
        }
        GateKind::Not | GateKind::Buf => {}
    }
    if cc.kinds[pos].inverting() {
        acc = acc.not();
    }
    if *is < inj.gate_stems.len() && inj.gate_stems[*is].0 as usize == pos {
        let (_, f1, f0) = inj.gate_stems[*is];
        acc = acc.inject(f1, f0);
    }
    acc
}

/// Fetches one gate operand with its pin injection, scanning forward
/// from the pin cursor. Only called for the rare gates that carry pin
/// injections.
#[inline]
fn fetch_injected<W: Word>(
    inj: CycleInj<'_, W>,
    pos: usize,
    pin: usize,
    net: u32,
    ip: usize,
    read: impl Fn(u32) -> Planes<W>,
) -> Planes<W> {
    let v = read(net);
    let mut i = ip;
    while i < inj.pins.len() && inj.pins[i].0 as usize == pos {
        if inj.pins[i].1 as usize == pin {
            let (_, _, f1, f0) = inj.pins[i];
            return v.inject(f1, f0);
        }
        i += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_netlist::{bench_format, NetId};

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap()
    }

    #[test]
    fn csr_matches_circuit() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        assert_eq!(cc.num_nets, c.num_nets());
        assert_eq!(cc.num_gates, c.num_gates());
        assert_eq!(cc.kinds.len(), 2);
        // Topo order must evaluate g before y.
        assert_eq!(cc.kinds[0], GateKind::Nand);
        assert_eq!(cc.kinds[1], GateKind::Xor);
        let g = c.net_by_name("g").unwrap().index() as u32;
        let y = c.net_by_name("y").unwrap().index() as u32;
        assert_eq!(cc.out_nets, vec![g, y]);
        // g's loads: the XOR gate (topo position 1) and DFF 0's data pin.
        let s = cc.load_start[g as usize] as usize;
        let e = cc.load_start[g as usize + 1] as usize;
        let mut loads: Vec<u32> = cc.load_codes[s..e].to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![1, cc.num_gates as u32]);
    }

    #[test]
    fn good_trace_matches_logic_sim() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let (trace, final_ff) = cc.good_trace(&seq, &[Logic3::X]);
        let oracle = crate::good::LogicSim::new(&c).trace(&seq).unwrap();
        for u in 0..seq.len() {
            for n in 0..c.num_nets() {
                let expect: Planes<u64> = match oracle.value(u, NetId::from_index(n)) {
                    Logic3::One => Planes::ALL_ONE,
                    Logic3::Zero => Planes::ALL_ZERO,
                    Logic3::X => Planes::ALL_X,
                };
                assert_eq!(trace.planes::<u64>(u, n), expect, "net {n} at {u}");
                // The wide broadcasts agree with the u64 one bit-for-bit
                // on the overlapping lanes.
                assert_eq!(
                    trace.planes::<u128>(u, n).limbs().0[0],
                    expect.ones,
                    "u128 broadcast, net {n} at {u}"
                );
            }
        }
        let oracle_ff = crate::good::LogicSim::new(&c).final_state(&seq).unwrap();
        assert_eq!(final_ff, oracle_ff);
    }

    #[test]
    fn good_trace_from_matches_from_scratch_at_every_divergence() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let base_seq = TestSequence::parse_rows(&["00", "10", "01", "11", "10"]).unwrap();
        let (base, _) = cc.good_trace(&base_seq, &[Logic3::X]);
        // Resumed traces must equal the from-scratch trace whether the
        // suffix diverges, extends, or truncates the cached sequence.
        let probes = [
            (vec!["00", "10", "11", "01", "00"], 2usize),
            (vec!["00", "10", "01", "11", "10"], 5),
            (vec!["00", "10", "01"], 3),
            (vec!["00", "10", "01", "11", "10", "01", "00"], 5),
        ];
        for (rows, shared) in probes {
            let seq = TestSequence::parse_rows(&rows).unwrap();
            let (expect, expect_ff) = cc.good_trace(&seq, &[Logic3::X]);
            let (got, got_ff) = cc.good_trace_from(&seq, &[Logic3::X], &base, shared);
            for u in 0..seq.len() {
                for n in 0..c.num_nets() {
                    assert_eq!(
                        got.planes::<u64>(u, n),
                        expect.planes::<u64>(u, n),
                        "net {n} at {u} (shared {shared})"
                    );
                }
            }
            assert_eq!(got_ff, expect_ff, "final state (shared {shared})");
        }
    }

    #[test]
    fn pi_cones_cross_the_register_boundary() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        // PI a feeds the NAND (topo 0), whose output crosses the DFF and
        // also drives the XOR (topo 1): both gates and the DFF are in
        // a's cone. PI b feeds only the XOR.
        assert_eq!(cc.cone_gates_of(0), &[0b11]);
        assert_eq!(cc.cone_dffs_of(0), &[0b1]);
        assert_eq!(cc.cone_gates_of(1), &[0b10]);
        assert_eq!(cc.cone_dffs_of(1), &[0b0]);
    }

    #[test]
    fn good_trace_from_cone_matches_full() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let base_rows = ["00", "10", "01", "11", "10", "00"];
        let base_seq = TestSequence::parse_rows(&base_rows).unwrap();
        let (base, _) = cc.good_trace(&base_seq, &[Logic3::X]);
        // Flip input 1's stream from each divergence cycle on (plus an
        // extension past the base), and rebuild cone-seeded: the trace,
        // final state and row contents must match the full rebuild at
        // every divergence cycle, under both the honest changed-stream
        // flags and the conservative all-changed flags.
        for shared in 1..=base_seq.len() {
            let mut rows: Vec<String> = base_rows.iter().map(|r| r.to_string()).collect();
            for row in rows.iter_mut().skip(shared) {
                let flipped = if &row[1..2] == "0" { "1" } else { "0" };
                *row = format!("{}{}", &row[..1], flipped);
            }
            rows.push("11".into());
            let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
            let seq = TestSequence::parse_rows(&refs).unwrap();
            let (expect, expect_ff) = cc.good_trace_from(&seq, &[Logic3::X], &base, shared);
            for changed in [vec![false, true], vec![true, true]] {
                let (got, got_ff, stats) =
                    cc.good_trace_from_cone(&seq, &[Logic3::X], &base, shared, &changed);
                for u in 0..seq.len() {
                    for n in 0..c.num_nets() {
                        assert_eq!(
                            got.planes::<u64>(u, n),
                            expect.planes::<u64>(u, n),
                            "net {n} at {u} (shared {shared}, changed {changed:?})"
                        );
                    }
                }
                assert_eq!(got_ff, expect_ff, "final state (shared {shared})");
                // The accounting is complete: over the overlapping rows
                // evaluated + saved covers every gate of every cycle,
                // and the extension row is fully evaluated.
                let overlap = (base_seq.len() - shared) as u64;
                let extension = (seq.len() - base_seq.len()) as u64;
                assert_eq!(
                    stats.gates_evaluated + stats.gates_saved,
                    cc.num_gates as u64 * (overlap + extension),
                    "accounting (shared {shared})"
                );
                assert!(
                    stats.gates_saved > 0 || shared == base_seq.len(),
                    "a diverging suffix on this toy must save something"
                );
            }
        }
    }

    #[test]
    fn cone_of_output_stem_is_local() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let mut cone: ConeScratch<u64> = ConeScratch::new(&cc);
        let y = c.net_by_name("y").unwrap().index();
        // A fault on the PO stem y reaches nothing else: y has no loads.
        cone.propagate_for_test(&cc, &[(y as u32, 0b10)], !0);
        assert_eq!(cone.mask_of(y), 0b10);
        let g = c.net_by_name("g").unwrap().index();
        assert_eq!(cone.mask_of(g), 0);
    }

    #[test]
    fn cone_crosses_the_register_boundary() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let mut cone: ConeScratch<u64> = ConeScratch::new(&cc);
        // A fault seeded at the DFF state output q contaminates g (NAND
        // reads q), then y, and — through the register (g drives the DFF
        // data input) — stays closed on q itself.
        let q = c.net_by_name("q").unwrap().index();
        let g = c.net_by_name("g").unwrap().index();
        let y = c.net_by_name("y").unwrap().index();
        cone.propagate_for_test(&cc, &[(q as u32, 0b100)], !0);
        assert_eq!(cone.mask_of(q), 0b100);
        assert_eq!(cone.mask_of(g), 0b100, "combinational fanout");
        assert_eq!(cone.mask_of(y), 0b100, "transitive fanout");
        // And the other direction: a fault on g's output crosses the DFF
        // d→q boundary into the next cycle's state.
        let mut cone: ConeScratch<u64> = ConeScratch::new(&cc);
        cone.propagate_for_test(&cc, &[(g as u32, 0b10)], !0);
        assert_eq!(cone.mask_of(q), 0b10, "cone must cross the register");
        assert_eq!(cone.mask_of(y), 0b10);
    }

    #[test]
    fn dead_bits_are_excluded_from_the_cone() {
        let c = toy();
        let cc = CompiledCircuit::build(&c);
        let mut cone: ConeScratch<u64> = ConeScratch::new(&cc);
        let g = c.net_by_name("g").unwrap().index();
        // Seed two faults at g, but only one is live.
        cone.propagate_for_test(&cc, &[(g as u32, 0b110)], 0b010);
        assert_eq!(cone.mask_of(g), 0b010);
        // The same closure works on wide lanes, including bits past 64.
        let mut cone: ConeScratch<u128> = ConeScratch::new(&cc);
        let hi = 1u128 << 100;
        cone.propagate_for_test(&cc, &[(g as u32, hi | 0b10)], hi);
        assert_eq!(cone.mask_of(g), hi);
    }
}
