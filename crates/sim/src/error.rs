//! Error types for the simulation crate.

use std::fmt;

/// Errors produced by sequence construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The test sequence vector width does not match the circuit's number
    /// of primary inputs.
    InputWidthMismatch {
        /// Inputs the circuit has.
        circuit: usize,
        /// Width of the sequence rows.
        sequence: usize,
    },
    /// A textual test vector contained a character other than `0` or `1`.
    BadVectorChar {
        /// Row index.
        row: usize,
        /// The offending character.
        ch: char,
    },
    /// Rows of differing widths were supplied.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Index of the first row with a different width.
        row: usize,
        /// That row's width.
        got: usize,
    },
    /// A simulation batch panicked inside a worker. The simulator
    /// retries the batch once on the reference kernel; this error
    /// describes the original panic.
    BatchPanicked {
        /// Index of the batch within the query's batch list.
        batch: usize,
        /// The panic payload, rendered to text.
        payload: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InputWidthMismatch { circuit, sequence } => write!(
                f,
                "sequence rows have {sequence} bits but the circuit has {circuit} inputs"
            ),
            Self::BadVectorChar { row, ch } => {
                write!(f, "row {row} contains invalid character {ch:?}")
            }
            Self::RaggedRows { expected, row, got } => {
                write!(f, "row {row} has {got} bits, expected {expected}")
            }
            Self::BatchPanicked { batch, payload } => {
                write!(f, "simulation batch {batch} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {}
