//! Event-driven good-machine simulation.
//!
//! The levelized simulator in [`crate::good`] evaluates every gate every
//! cycle. For circuits with low switching activity — long BIST sessions
//! where most inputs are held by constant-like weights — an event-driven
//! evaluator visits only the fanout cones of nets that actually changed.
//! Results are identical to [`LogicSim`](crate::good::LogicSim); the
//! `simulator` Criterion bench compares their throughput.
//!
//! The implementation is a classic two-list algorithm: per cycle, source
//! changes (PIs and flip-flop outputs) seed an activity queue ordered by
//! topological level; each gate is re-evaluated at most once per cycle,
//! and scheduling stops where the computed value does not change.

use crate::error::SimError;
use crate::logic::Logic3;
use crate::sequence::TestSequence;
use std::collections::BTreeSet;
use wbist_netlist::{Circuit, Driver, GateId, Load, NetId};

/// Event-driven fault-free simulator.
#[derive(Debug, Clone)]
pub struct EventSim<'c> {
    circuit: &'c Circuit,
    /// Topological level of every gate (position in topo order).
    level: Vec<usize>,
}

impl<'c> EventSim<'c> {
    /// Creates an event-driven simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        let mut level = vec![0usize; circuit.num_gates()];
        for (pos, &gid) in circuit.topo_gates().iter().enumerate() {
            level[gid.index()] = pos;
        }
        EventSim { circuit, level }
    }

    /// Simulates `seq` from the all-`X` state and returns the primary
    /// output values per time unit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if the sequence width
    /// does not match the circuit.
    pub fn outputs(&self, seq: &TestSequence) -> Result<Vec<Vec<Logic3>>, SimError> {
        let c = self.circuit;
        if seq.num_inputs() != c.num_inputs() {
            return Err(SimError::InputWidthMismatch {
                circuit: c.num_inputs(),
                sequence: seq.num_inputs(),
            });
        }
        let mut nets: Vec<Logic3> = vec![Logic3::X; c.num_nets()];
        // Constants never change; set them once. Their fanout is woken on
        // the first cycle via `first` below.
        for (idx, net) in nets.iter_mut().enumerate() {
            if let Driver::Const(v) = c.driver(NetId::from_index(idx)) {
                *net = v.into();
            }
        }
        let mut state: Vec<Logic3> = vec![Logic3::X; c.num_dffs()];
        // Agenda of gates to evaluate this cycle, ordered by level.
        let mut agenda: BTreeSet<(usize, GateId)> = BTreeSet::new();
        let mut out = Vec::with_capacity(seq.len());
        let mut first = true;

        for u in 0..seq.len() {
            // Drive sources; schedule fanout of changed nets.
            for (pi, &net) in c.inputs().iter().enumerate() {
                let v: Logic3 = seq.value(u, pi).into();
                if first || nets[net.index()] != v {
                    nets[net.index()] = v;
                    self.wake(net, &mut agenda);
                }
            }
            for (k, dff) in c.dffs().iter().enumerate() {
                if first || nets[dff.q.index()] != state[k] {
                    nets[dff.q.index()] = state[k];
                    self.wake(dff.q, &mut agenda);
                }
            }
            if first {
                for idx in 0..c.num_nets() {
                    if matches!(c.driver(NetId::from_index(idx)), Driver::Const(_)) {
                        self.wake(NetId::from_index(idx), &mut agenda);
                    }
                }
            }
            // Propagate in level order.
            while let Some(&(lvl, gid)) = agenda.iter().next() {
                agenda.remove(&(lvl, gid));
                let g = c.gate(gid);
                let v = crate::good::eval_gate(g.kind, g.inputs.iter().map(|&i| nets[i.index()]));
                if nets[g.output.index()] != v {
                    nets[g.output.index()] = v;
                    self.wake(g.output, &mut agenda);
                }
            }
            // Capture next state and outputs.
            for (k, dff) in c.dffs().iter().enumerate() {
                state[k] = nets[dff.d.expect("levelized").index()];
            }
            out.push(c.outputs().iter().map(|&o| nets[o.index()]).collect());
            first = false;
        }
        Ok(out)
    }

    fn wake(&self, net: NetId, agenda: &mut BTreeSet<(usize, GateId)>) {
        for load in self.circuit.loads(net) {
            if let Load::GatePin { gate, .. } = *load {
                agenda.insert((self.level[gate.index()], gate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good::LogicSim;
    use wbist_netlist::bench_format;

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .expect("valid netlist")
    }

    #[test]
    fn agrees_with_levelized_sim() {
        let c = toy();
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "10", "00", "11"]).unwrap();
        let a = EventSim::new(&c).outputs(&seq).unwrap();
        let b = LogicSim::new(&c).outputs(&seq).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_on_constant_inputs() {
        // A sequence that never changes: after cycle 1, zero activity.
        let c = toy();
        let seq = TestSequence::parse_rows(&["10"; 20]).unwrap();
        let a = EventSim::new(&c).outputs(&seq).unwrap();
        let b = LogicSim::new(&c).outputs(&seq).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_constants() {
        let c = bench_format::parse(
            "k",
            "INPUT(a)\nOUTPUT(y)\nk = CONST1()\nm = CONST0()\nt = OR(a, m)\ny = AND(t, k)\n",
        )
        .unwrap();
        let seq = TestSequence::parse_rows(&["1", "0", "1"]).unwrap();
        let a = EventSim::new(&c).outputs(&seq).unwrap();
        let b = LogicSim::new(&c).outputs(&seq).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn width_mismatch_is_error() {
        let c = toy();
        let seq = TestSequence::parse_rows(&["000"]).unwrap();
        assert!(EventSim::new(&c).outputs(&seq).is_err());
    }
}
