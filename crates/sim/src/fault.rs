//! Parallel sequential fault simulation, generic over the fault model
//! and the plane word width.
//!
//! The simulator packs the fault-free machine (bit 0) and up to
//! `W::BITS − 1` faulty machines into each plane word `W` — 63 at the
//! default 64-bit width, 127 at 128 bits, 255 at the feature-gated
//! 256-bit lane (the crate-private `word` module). A three-valued
//! signal is held as two
//! bit-planes `(ones, zeros)` per net (the `plane` module): bit `b` of
//! `ones` set means machine `b` sees logic 1, bit `b` of `zeros` means
//! logic 0, and neither means `X`. Gate evaluation is plain boolean
//! algebra on the planes, so all machines advance in lock-step through
//! the levelized combinational core, cycle by cycle, each with its own
//! flip-flop state. The width is chosen once per simulator
//! ([`SimOptions::word_width`]) and dispatched to monomorphized engines
//! at each public entry point; detections, detection times and the
//! deterministic counters are width-invariant (a fault's charge ends
//! when it drops, wherever it was batched), while batch partitioning —
//! and therefore `sim.batches` and the gate-evaluation figures — tracks
//! the width.
//!
//! Faults are injected by forcing plane bits: a stem fault forces the net's
//! planes after its driver is evaluated; a gate-pin fault forces the value
//! seen by a single gate input; a DFF-data fault forces the value loaded
//! into one flip-flop. Stuck-at faults force unconditionally on every
//! cycle; transition-delay faults contribute the same forced effect but
//! gated by an activation condition on the fault-free machine — the site
//! must transition to the slow value between consecutive cycles (launch
//! at `t−1`, capture at `t`), which the per-query good trace answers
//! without any extra state (see `compiled::MaskBuf`).
//!
//! # Queries
//!
//! All one-shot queries go through the single [`FaultSim::query`]
//! builder: pick the sequence (raw via [`Query::sequence`] or a
//! [`PreparedSequence`] via [`Query::prepared`]), then call a terminal
//! ([`Query::detection_times`], [`Query::any`], [`Query::outcome`], …).
//! Incremental simulation keeps its dedicated [`FaultSim::begin`] /
//! [`FaultSim::advance`] / [`FaultSim::sample_detects`] surface.
//!
//! # Kernels
//!
//! Two kernels implement the machine model (see the `compiled` module):
//!
//! * the **compiled kernel** (default) lowers the circuit into CSR
//!   arrays once per simulator, simulates the fault-free machine once
//!   per query into a shared good-value trace, and then evaluates per
//!   cycle only the gates whose operands differ from that trace on a
//!   live machine bit (the dirty set) — injections come from flat
//!   schedules merged into topological order, so the hot loop does no
//!   hashing at all;
//! * the **reference kernel** ([`SimOptions::reference_kernel`]) is the
//!   historic full-circuit walk, kept as a differential-testing oracle.
//!
//! Both kernels produce identical detection results; their flip-flop
//! planes agree on every live machine bit (dropped bits may diverge —
//! the compiled kernel stops maintaining them).
//!
//! # Threading model
//!
//! Fault batches are mutually independent — they share nothing but the
//! (read-only) circuit, good trace, and input sequence — so every public
//! entry point fans its batches out through the shared worker pool
//! ([`crate::pool`]), with one scratch buffer per participating thread
//! and the flip-flop planes owned per batch. Per-fault results are
//! written to disjoint indices and merged in batch order after the
//! fan-out, so all outputs are bit-identical to the single-threaded path
//! regardless of scheduling. The boolean early-exit queries
//! ([`Query::any`], [`FaultSim::sample_detects`]) coordinate through an
//! `AtomicBool`: the first worker to find a detection cancels the rest.
//! Thread count is controlled by [`SimOptions::threads`] (default: all
//! available cores).

use crate::compiled::{
    self, BatchStats, CompiledCircuit, ConeScratch, CycleCtx, GoodTrace, MaskBuf,
};
use crate::error::SimError;
use crate::logic::Logic3;
use crate::plane::Planes;
use crate::pool;
use crate::prefix::{
    self, AnyArtifacts, ArtifactLane, CacheInstall, FaultyArtifacts, PrefixTraceCache,
    SnapshotStore, SpilledCkpt,
};
use crate::run::RunOptions;
use crate::runctl::CancelToken;
use crate::sequence::TestSequence;
use crate::word::{with_word, Word, WordWidth};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wbist_netlist::{Circuit, Fault, FaultList, FaultModel, NetId};
use wbist_telemetry::Telemetry;

/// Prepared-resume context threaded from [`Query`] into the dense
/// engine: the prefix cache (if attached) and the prepared sequence's
/// `(epoch_index, divergence_cycle)` base. `None` means a from-scratch
/// raw-sequence query.
type PreparedCtx<'q> = Option<(Option<&'q PrefixTraceCache>, Option<(usize, usize)>)>;

/// Simulation tuning knobs, shared by every [`FaultSim`] entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// Worker threads for batch-level parallelism. `None` uses every
    /// available core; `Some(1)` forces the single-threaded path. The
    /// count is always capped by the number of fault batches.
    pub threads: Option<usize>,
    /// Run the historic full-circuit-walk kernel instead of the
    /// compiled cone-restricted one. Slower by design; kept as the
    /// differential-testing oracle (detection results are identical).
    pub reference_kernel: bool,
    /// Plane word width: each batch carries `width − 1` faulty machines,
    /// so wider lanes mean fewer batches for the same fault list.
    /// Detections and every deterministic counter except the batch
    /// partition figures are width-invariant. Default: 64-bit.
    pub word_width: WordWidth,
    /// Disables cone-seeded good-trace resume: a prepared evaluation
    /// that resumes from a cached prefix re-evaluates *every* gate of
    /// every suffix cycle instead of only the changed input streams'
    /// forward cones. The produced trace is bit-identical either way —
    /// the flag exists for the identity diffs in CI and for measuring
    /// the saving (inverted so the zero default keeps seeding on).
    pub no_cone_seeding: bool,
}

impl SimOptions {
    /// Options pinned to a fixed worker count.
    pub fn with_threads(threads: usize) -> SimOptions {
        SimOptions {
            threads: Some(threads),
            ..SimOptions::default()
        }
    }

    /// Selects the kernel (builder style): `true` runs the reference
    /// full-walk kernel, `false` the compiled kernel.
    pub fn reference_kernel(mut self, on: bool) -> SimOptions {
        self.reference_kernel = on;
        self
    }

    /// Selects the plane word width (builder style).
    pub fn word_width(mut self, width: WordWidth) -> SimOptions {
        self.word_width = width;
        self
    }

    /// Enables or disables cone-seeded good-trace resume (builder
    /// style). On by default; results are identical either way.
    pub fn cone_seeding(mut self, on: bool) -> SimOptions {
        self.no_cone_seeding = !on;
        self
    }
}

/// Cap on `batches × flip-flops` up to which the prepared dense query
/// captures faulty-plane snapshots as raw plane vectors. Above it the
/// snapshots are spilled to the compressed XOR-delta form
/// ([`SpilledCkpt`]); a pure function of the query shape, so
/// determinism is unaffected.
const ARTIFACT_STATE_CAP: usize = 1 << 16;

/// Cap on `batches × flip-flops` above which even compressed snapshot
/// capture is declined (the good trace is still cached). The denial is
/// reported — [`PreparedOutcome::snapshot_capture_denied`] — instead of
/// silently degrading.
const ARTIFACT_SPILL_CAP: usize = 1 << 24;

/// A candidate sequence prepared for evaluation: its good-machine
/// trace, computed once — resumed from the divergence cycle when a
/// cached sequence shares a prefix — plus the cache entry its
/// faulty-plane resume can key off. Feed it to queries through
/// [`Query::prepared`]; every terminal reuses the trace, so a
/// screen-then-dense pair pays for one good simulation instead of two.
#[derive(Debug)]
pub struct PreparedSequence {
    seq: TestSequence,
    trace: Arc<GoodTrace>,
    /// `(cache entry index, shared prefix rows)` of the best match.
    base: Option<(usize, usize)>,
    reused_cycles: usize,
    /// Whether the trace rebuild was cone-seeded (a resumed rebuild with
    /// cone seeding enabled; full-length trace shares never rebuild).
    cone_seeded: bool,
    /// Good-machine gates evaluated rebuilding the suffix.
    trace_gates_evaluated: u64,
    /// Gates a full-rescan rebuild would have evaluated on top of that.
    trace_gates_saved: u64,
}

impl PreparedSequence {
    /// Good-machine cycles skipped by resuming from a cached trace.
    pub fn reused_cycles(&self) -> usize {
        self.reused_cycles
    }

    /// The prepared sequence itself.
    pub fn sequence(&self) -> &TestSequence {
        &self.seq
    }

    /// Whether the good-trace rebuild was cone-seeded.
    pub fn cone_seeded(&self) -> bool {
        self.cone_seeded
    }

    /// Good-machine gate evaluations spent rebuilding the trace suffix
    /// (0 when the trace was computed from scratch or shared whole).
    pub fn trace_gates_evaluated(&self) -> u64 {
        self.trace_gates_evaluated
    }

    /// Good-machine gate evaluations the cone-seeded rebuild avoided
    /// relative to a full per-cycle rescan of the suffix.
    pub fn trace_gates_saved(&self) -> u64 {
        self.trace_gates_saved
    }
}

/// Result of [`Query::outcome`].
#[derive(Debug)]
pub struct PreparedOutcome {
    /// Indices (into the queried fault list, ascending) of the detected
    /// faults — identical to [`Query::detected_indices`].
    pub detected: Vec<usize>,
    /// Faulty-machine cycles skipped by resuming batches mid-sequence.
    pub resumed_cycles: u64,
    /// Snapshots newly compressed into the install's spill store this
    /// run (0 when the raw representation applied or capture was off).
    pub snapshot_spills: u64,
    /// Total bytes the install's spilled snapshots pin after budget
    /// enforcement (0 for raw stores).
    pub snapshot_bytes: u64,
    /// Whether snapshot capture was declined because `batches ×
    /// flip-flops` exceeded even the spill cap.
    pub snapshot_capture_denied: bool,
    /// Entry the caller may install into its [`PrefixTraceCache`] once
    /// this evaluation's result is committed.
    pub install: CacheInstall,
}

/// Everything one dense engine run reports: per-fault detection times
/// plus the resume and capture accounting [`Query::outcome`] surfaces.
struct DenseRun {
    times: Vec<Option<usize>>,
    resumed_cycles: u64,
    artifacts: Option<AnyArtifacts>,
    snapshot_spills: u64,
    snapshot_bytes: u64,
    capture_denied: bool,
}

/// One batch of up to `W::BITS − 1` faults sharing a simulation word.
#[derive(Debug, Clone)]
struct Batch<W> {
    /// Global fault indices; fault `k` of the batch occupies bit `k + 1`.
    fault_indices: Vec<usize>,
    /// Global fault index → its bit mask, sorted by index (the inverse
    /// of `fault_indices`, for O(log n) membership checks).
    bit_index: Vec<(usize, W)>,
    /// The batch's injections, flattened into topo-sorted arrays.
    sched: compiled::Schedule<W>,
    /// Mask of bits that carry live (not yet detected) faults.
    live: W,
}

impl<W: Word> Batch<W> {
    fn build(circuit: &Circuit, cc: &CompiledCircuit, faults: &[(usize, Fault)]) -> Batch<W> {
        debug_assert!(faults.len() < W::BITS as usize);
        let mut live = W::ZERO;
        let mut bit_index = Vec::with_capacity(faults.len());
        for (k, &(gi, _)) in faults.iter().enumerate() {
            let bit = W::bit(k + 1);
            bit_index.push((gi, bit));
            live |= bit;
        }
        debug_assert!(bit_index.windows(2).all(|w| w[0].0 < w[1].0));
        Batch {
            fault_indices: faults.iter().map(|&(i, _)| i).collect(),
            bit_index,
            sched: compiled::Schedule::build(circuit, cc, faults),
            live,
        }
    }

    /// Bit mask (bit 1 up) of a global fault index within this batch.
    fn bit_of(&self, global: usize) -> Option<W> {
        self.bit_index
            .binary_search_by_key(&global, |&(gi, _)| gi)
            .ok()
            .map(|i| self.bit_index[i].1)
    }
}

/// The width-specific half of a [`FaultSimState`]: the fault batches
/// and their flip-flop planes at one concrete lane type.
#[derive(Debug, Clone)]
struct Lanes<W> {
    batches: Vec<Batch<W>>,
    /// Flip-flop planes per batch.
    ff: Vec<Vec<Planes<W>>>,
}

/// [`Lanes`] with the width erased, so [`FaultSimState`] stays a plain
/// (non-generic) public type. Built at the width the originating
/// simulator was configured with; every state-consuming entry point
/// dispatches on the variant, so a state outlives the options that
/// created it (incremental states are width-portable by construction).
#[derive(Debug, Clone)]
enum LaneState {
    W64(Lanes<u64>),
    W128(Lanes<u128>),
    #[cfg(feature = "w256")]
    W256(Lanes<crate::word::W256>),
}

/// Expands `$body` with `$l` bound to the concrete-width [`Lanes`] of a
/// [`LaneState`] — the state-side counterpart of `with_word!`.
macro_rules! with_lanes {
    ($lanes:expr, $l:ident => $body:expr) => {
        match $lanes {
            LaneState::W64($l) => $body,
            LaneState::W128($l) => $body,
            #[cfg(feature = "w256")]
            LaneState::W256($l) => $body,
        }
    };
}

/// The lane types [`FaultSim`] dispatches to: plane words that can wrap
/// themselves into the width-erased containers ([`LaneState`],
/// [`AnyArtifacts`]).
trait SimWord: Word + ArtifactLane {
    fn wrap(lanes: Lanes<Self>) -> LaneState;
}

impl SimWord for u64 {
    fn wrap(lanes: Lanes<u64>) -> LaneState {
        LaneState::W64(lanes)
    }
}

impl SimWord for u128 {
    fn wrap(lanes: Lanes<u128>) -> LaneState {
        LaneState::W128(lanes)
    }
}

#[cfg(feature = "w256")]
impl SimWord for crate::word::W256 {
    fn wrap(lanes: Lanes<crate::word::W256>) -> LaneState {
        LaneState::W256(lanes)
    }
}

/// Per-batch flip-flop state, retained between [`FaultSim::advance`] calls.
///
/// Create with [`FaultSim::begin`]; all machines start in the all-`X`
/// state. The state is tied to the fault list it was created from.
#[derive(Debug, Clone)]
pub struct FaultSimState {
    /// Batches and flip-flop planes, at the width the originating
    /// simulator was configured with.
    lanes: LaneState,
    /// Scalar fault-free flip-flop state, advanced alongside the
    /// batches; the compiled kernel seeds each query's good trace from
    /// it.
    good_ff: Vec<Logic3>,
    /// Detected flags, indexed like the originating fault list.
    detected: Vec<bool>,
    /// Time units consumed so far (for absolute detection times).
    elapsed: usize,
    /// Fault-free net values at the end of the last [`FaultSim::advance`]
    /// segment — the launch half of a transition-delay activation at the
    /// next segment's first cycle. `None` when the fault list carries no
    /// transition faults (and before the first cycle: the all-`X` start
    /// never launches).
    prev_nets: Option<Vec<Logic3>>,
}

impl FaultSimState {
    /// Detected flags, indexed like the fault list passed to
    /// [`FaultSim::begin`].
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Number of detected faults so far.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Time units simulated so far.
    pub fn elapsed(&self) -> usize {
        self.elapsed
    }

    /// Raw per-batch flip-flop planes for differential tests: one entry
    /// per batch of `(live-or-good mask, per-DFF (ones, zeros))`, each
    /// word exported as little-endian `u64` limbs so the surface is
    /// width-erased (upper limbs are zero for narrow lanes). Planes are
    /// only meaningful on the masked bits — the compiled kernel stops
    /// maintaining dropped machines. Not part of the public API.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn debug_ff_planes(&self) -> Vec<([u64; 4], Vec<([u64; 4], [u64; 4])>)> {
        with_lanes!(&self.lanes, l => debug_planes(l))
    }

    /// The per-DFF three-valued state of one fault's machine, or `None`
    /// once the fault has dropped (its planes go stale). Batch-layout
    /// independent, so differential tests can compare machines across
    /// word widths, where partitioning differs. Not part of the public
    /// API.
    #[doc(hidden)]
    pub fn debug_fault_ff(&self, global: usize) -> Option<Vec<Logic3>> {
        with_lanes!(&self.lanes, l => debug_fault_ff(l, global))
    }
}

/// Width-erased export behind [`FaultSimState::debug_ff_planes`].
#[allow(clippy::type_complexity)]
fn debug_planes<W: Word>(l: &Lanes<W>) -> Vec<([u64; 4], Vec<([u64; 4], [u64; 4])>)> {
    l.batches
        .iter()
        .zip(&l.ff)
        .map(|(b, ff)| {
            let planes = ff.iter().map(|p| p.limbs()).collect();
            ((b.live | W::LSB).limbs(), planes)
        })
        .collect()
}

/// Per-fault machine readout behind [`FaultSimState::debug_fault_ff`].
fn debug_fault_ff<W: Word>(l: &Lanes<W>, global: usize) -> Option<Vec<Logic3>> {
    for (b, ff) in l.batches.iter().zip(&l.ff) {
        if let Some(bit) = b.bit_of(global) {
            if (b.live & bit).is_zero() {
                return None;
            }
            return Some(
                ff.iter()
                    .map(|p| {
                        if !(p.ones & bit).is_zero() {
                            Logic3::One
                        } else if !(p.zeros & bit).is_zero() {
                            Logic3::Zero
                        } else {
                            Logic3::X
                        }
                    })
                    .collect(),
            );
        }
    }
    None
}

/// Per-worker scratch: one net-plane buffer plus the cone bookkeeping,
/// allocated once per worker and reused across every batch and cycle it
/// processes.
struct Scratch<W> {
    nets: Vec<Planes<W>>,
    cone: ConeScratch<W>,
    /// Per-cycle effective injection masks, used only by batches whose
    /// schedule carries conditional (transition-delay) injections.
    buf: MaskBuf<W>,
}

impl<W: Word> Scratch<W> {
    fn new(cc: &CompiledCircuit) -> Scratch<W> {
        Scratch {
            nets: vec![Planes::ALL_X; cc.num_nets],
            cone: ConeScratch::new(cc),
            buf: MaskBuf::new(),
        }
    }
}

/// A shared, pre-lowered circuit: the one-time `CompiledCircuit`
/// lowering behind an `Arc`, decoupled from any particular [`FaultSim`]
/// instance or circuit borrow.
///
/// Lowering a large circuit into the compiled kernel's CSR arrays is the
/// expensive part of constructing a simulator; a long-running service
/// that fields many jobs against the same circuit should pay it once.
/// Build a handle with [`CompiledHandle::lower`] (or grab one from an
/// existing simulator via [`FaultSim::compiled_handle`]), put it in
/// [`RunOptions::compiled`], and every
/// [`FaultSim::with_run_options`] constructor for that circuit reuses
/// the shared lowering — an `Arc` bump instead of a rebuild.
///
/// The handle remembers a structural fingerprint of the circuit it was
/// lowered from; offering it to a *different* circuit falls back to a
/// fresh lowering instead of simulating garbage, so a stale handle can
/// degrade performance but never correctness.
#[derive(Debug, Clone)]
pub struct CompiledHandle {
    compiled: Arc<CompiledCircuit>,
    fingerprint: u64,
}

impl CompiledHandle {
    /// Lowers `circuit` once, returning a handle that can be shared
    /// across threads and simulators.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn lower(circuit: &Circuit) -> CompiledHandle {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        CompiledHandle {
            compiled: Arc::new(CompiledCircuit::build(circuit)),
            fingerprint: circuit_fingerprint(circuit),
        }
    }

    /// Whether this handle was lowered from a circuit structurally
    /// identical (by fingerprint) to `circuit`.
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.fingerprint == circuit_fingerprint(circuit)
    }
}

/// FNV-1a over the cheap structural facts of a circuit. Not a full
/// netlist hash — it guards against *accidental* circuit/handle mixups
/// in a registry, where entries differ in name or shape.
fn circuit_fingerprint(c: &Circuit) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in c.name().bytes() {
        eat(b);
    }
    for v in [
        c.num_nets() as u64,
        c.num_inputs() as u64,
        c.num_outputs() as u64,
        c.num_dffs() as u64,
        c.num_gates() as u64,
    ] {
        for b in v.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Parallel-fault sequential stuck-at fault simulator.
///
/// See the [module documentation](self) for the machine model, detection
/// semantics, kernels, and threading model.
#[derive(Debug, Clone)]
pub struct FaultSim<'c> {
    circuit: &'c Circuit,
    compiled: Arc<CompiledCircuit>,
    options: SimOptions,
    telemetry: Telemetry,
    cancel: CancelToken,
}

impl<'c> FaultSim<'c> {
    /// Creates a fault simulator for `circuit` with default options
    /// (compiled kernel, threads: all available cores).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_options(circuit, SimOptions::default())
    }

    /// Creates a fault simulator with explicit [`SimOptions`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn with_options(circuit: &'c Circuit, options: SimOptions) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        FaultSim {
            circuit,
            compiled: Arc::new(CompiledCircuit::build(circuit)),
            options,
            telemetry: Telemetry::disabled(),
            cancel: CancelToken::unlimited(),
        }
    }

    /// Creates a fault simulator from shared [`RunOptions`]: simulator
    /// tuning, the telemetry handle, and the cancellation token. This is
    /// the constructor the pipeline phases use.
    ///
    /// When [`RunOptions::compiled`] carries a [`CompiledHandle`] whose
    /// fingerprint matches `circuit`, the shared lowering is reused (an
    /// `Arc` bump); a missing or mismatched handle falls back to a fresh
    /// lowering.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn with_run_options(circuit: &'c Circuit, run: &RunOptions) -> Self {
        let sim = match &run.compiled {
            Some(h) if h.matches(circuit) => {
                assert!(circuit.is_levelized(), "circuit must be levelized");
                FaultSim {
                    circuit,
                    compiled: Arc::clone(&h.compiled),
                    options: run.sim,
                    telemetry: Telemetry::disabled(),
                    cancel: CancelToken::unlimited(),
                }
            }
            _ => Self::with_options(circuit, run.sim),
        };
        sim.telemetry(run.telemetry.clone())
            .cancel(run.cancel.clone())
    }

    /// A [`CompiledHandle`] sharing this simulator's lowering. See
    /// [`CompiledHandle`] for what it is for.
    pub fn compiled_handle(&self) -> CompiledHandle {
        CompiledHandle {
            compiled: Arc::clone(&self.compiled),
            fingerprint: circuit_fingerprint(self.circuit),
        }
    }

    /// Replaces the telemetry handle (builder style). Every query then
    /// reports `sim.*` counters — cycles simulated, gate evaluations,
    /// faults dropped, batches — through it; see the crate docs of
    /// `wbist-telemetry` for which counters are deterministic.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        telemetry.event(
            "sim.word_width",
            &[("bits", self.options.word_width.bits() as u64)],
        );
        self.telemetry = telemetry;
        self
    }

    /// Replaces the cancellation token (builder style). An armed token
    /// is polled once per simulated cycle per batch: each cycle charges
    /// its live fault-cycles against the budget, and a tripped token
    /// stops every batch at its next cycle boundary — detected flags and
    /// flip-flop planes stay consistent, so truncated queries return a
    /// valid prefix of the full run's results.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// A clone of this simulator sharing the compiled circuit (an `Arc`
    /// bump, no recompilation) but recording into `telemetry` and pinned
    /// to `threads` batch-level workers. The synthesis wavefront hands
    /// one of these to each speculation worker so every candidate's
    /// counters land in a private handle that can be merged in commit
    /// order.
    pub fn worker_clone(&self, telemetry: Telemetry, threads: usize) -> FaultSim<'c> {
        let mut sim = self.clone();
        sim.options.threads = Some(threads.max(1));
        sim.telemetry = telemetry;
        sim
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The simulator's options.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    fn check_width(&self, seq: &TestSequence) {
        assert_eq!(
            seq.num_inputs(),
            self.circuit.num_inputs(),
            "{}",
            SimError::InputWidthMismatch {
                circuit: self.circuit.num_inputs(),
                sequence: seq.num_inputs(),
            }
        );
    }

    fn make_batches<W: Word>(&self, faults: &FaultList) -> Vec<Batch<W>> {
        let indexed: Vec<(usize, Fault)> = faults.iter().copied().enumerate().collect();
        indexed
            .chunks(W::BITS as usize - 1)
            .map(|chunk| Batch::build(self.circuit, &self.compiled, chunk))
            .collect()
    }

    /// The good trace for one query over `seq`, starting from `init_ff`.
    fn good_trace(&self, seq: &TestSequence, init_ff: &[Logic3]) -> (GoodTrace, Vec<Logic3>) {
        self.compiled.good_trace(seq, init_ff)
    }

    /// Dispatches one batch run to `reference` or the compiled kernel.
    /// Both kernels share the sink contract: called after every
    /// evaluated cycle, the sink returns `(drop_bits, stop)`. An armed
    /// cancellation token is polled through the same contract — each
    /// cycle charges its live fault-cycles, and a tripped token turns
    /// into `stop`, ending the batch at a cycle boundary with its state
    /// intact.
    ///
    /// `resume` and `snap` are the compiled kernel's mid-sequence
    /// snapshot hooks (see [`compiled::run_batch`]); the reference
    /// kernel always walks the full sequence, so callers must pass
    /// `None` when `reference` is set. `prev0` holds the fault-free net
    /// values entering the sequence — the launch half of a cycle-0
    /// transition-delay activation; `None` is the all-`X` start.
    #[allow(clippy::too_many_arguments)]
    fn run_one<W: Word>(
        &self,
        reference: bool,
        sched: &compiled::Schedule<W>,
        live: W,
        seq: &TestSequence,
        trace: &GoodTrace,
        prev0: Option<&[Logic3]>,
        ff: &mut [Planes<W>],
        scratch: &mut Scratch<W>,
        resume: Option<&compiled::BatchCkpt<W>>,
        snap: Option<&mut Vec<compiled::BatchCkpt<W>>>,
        mut sink: impl FnMut(usize, &CycleCtx<W>) -> (W, bool),
    ) -> (W, BatchStats) {
        let cancel = &self.cancel;
        let armed = cancel.is_armed();
        let sink = |u: usize, ctx: &CycleCtx<W>| {
            if armed {
                cancel.charge_fault_cycles(ctx.live.count_ones() as u64);
            }
            let (drop, mut stop) = sink(u, ctx);
            if armed && cancel.cancelled().is_some() {
                stop = true;
            }
            (drop, stop)
        };
        if reference {
            debug_assert!(resume.is_none() && snap.is_none());
            compiled::run_batch_reference(
                &self.compiled,
                sched,
                live,
                seq,
                trace,
                prev0,
                ff,
                &mut scratch.nets,
                &mut scratch.buf,
                sink,
            )
        } else {
            wbist_telemetry::failpoint::panic_if_armed("sim.batch_kernel");
            compiled::run_batch(
                &self.compiled,
                sched,
                live,
                seq,
                trace,
                prev0,
                ff,
                &mut scratch.nets,
                &mut scratch.cone,
                &mut scratch.buf,
                resume,
                snap,
                sink,
            )
        }
    }

    /// Runs one batch's work with panic isolation: `attempt` is called
    /// with the configured kernel choice; if it panics, the panic is
    /// caught, `sim.batch_panics` is recorded, the (possibly mid-cycle)
    /// scratch is rebuilt, and the batch is retried once on the
    /// reference kernel. `attempt` must own all its side effects —
    /// results only escape through its return value — so a panicked
    /// attempt leaves no partial state behind.
    ///
    /// A second panic (or a panic when the reference kernel was already
    /// the primary) re-raises as a [`SimError::BatchPanicked`]-formatted
    /// panic: at that point both kernels are broken and there is nothing
    /// safer left to run.
    fn run_isolated<W: Word, R>(
        &self,
        batch_index: usize,
        scratch: &mut Scratch<W>,
        attempt: impl Fn(bool, &mut Scratch<W>) -> R,
    ) -> R {
        let reference = self.options.reference_kernel;
        match catch_unwind(AssertUnwindSafe(|| attempt(reference, &mut *scratch))) {
            Ok(r) => r,
            Err(payload) => {
                *scratch = Scratch::new(&self.compiled);
                self.telemetry.add("sim.batch_panics", 1);
                let err = SimError::BatchPanicked {
                    batch: batch_index,
                    payload: panic_message(&payload),
                };
                if reference {
                    panic!("{err}; no fallback kernel left");
                }
                eprintln!("wbist-sim: {err}; retrying on the reference kernel");
                match catch_unwind(AssertUnwindSafe(|| attempt(true, &mut *scratch))) {
                    Ok(r) => r,
                    Err(retry) => panic!(
                        "{err}; reference-kernel retry also panicked: {}",
                        panic_message(&retry)
                    ),
                }
            }
        }
    }

    /// The worker count for `jobs` independent jobs.
    fn thread_count(&self, jobs: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        self.options
            .threads
            .unwrap_or_else(hw)
            .clamp(1, jobs.max(1))
    }

    /// Runs `work` over every item through the shared worker pool
    /// ([`crate::pool`]): the calling thread and up to `threads − 1`
    /// pool workers self-schedule items, each lazily building one
    /// [`Scratch`] it reuses for every item it claims. Results are
    /// returned in item order, so callers observe a deterministic merge
    /// no matter how the items were scheduled; the dispatch figures land
    /// in the effort-space `pool.tasks` / `pool.steals` counters.
    fn scatter<W: Word, I, R, F>(&self, items: Vec<I>, work: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I, &mut Scratch<W>) -> R + Sync,
    {
        let threads = self.thread_count(items.len());
        let (results, stats) = pool::scatter(threads, items, || Scratch::new(&self.compiled), work);
        if self.telemetry.is_enabled() {
            self.telemetry.add_effort("pool.tasks", stats.tasks);
            self.telemetry.add_effort("pool.steals", stats.stolen);
        }
        results
    }

    /// Starts an incremental simulation of `faults` from the all-`X`
    /// state, batched at the simulator's configured word width.
    pub fn begin(&self, faults: &FaultList) -> FaultSimState {
        let lanes =
            with_word!(self.options.word_width, W => W::wrap(self.begin_lanes::<W>(faults)));
        FaultSimState {
            lanes,
            good_ff: vec![Logic3::X; self.circuit.num_dffs()],
            detected: vec![false; faults.len()],
            elapsed: 0,
            prev_nets: faults
                .has_model(FaultModel::TransitionDelay)
                .then(|| vec![Logic3::X; self.circuit.num_nets()]),
        }
    }

    fn begin_lanes<W: Word>(&self, faults: &FaultList) -> Lanes<W> {
        let batches = self.make_batches::<W>(faults);
        let ff = batches
            .iter()
            .map(|_| vec![Planes::ALL_X; self.circuit.num_dffs()])
            .collect();
        Lanes { batches, ff }
    }

    /// Applies `seq` on top of `state`, updating flip-flop planes and the
    /// detected flags. Returns the number of newly detected faults.
    ///
    /// Batches whose faults are all detected are skipped entirely (fault
    /// dropping), and the compiled kernel further shrinks each surviving
    /// batch's active cone as its faults drop.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn advance(&self, state: &mut FaultSimState, seq: &TestSequence) -> usize {
        self.check_width(seq);
        let (trace, next_good) = self.good_trace(seq, &state.good_ff);
        let trace = &trace;
        let prev0 = state.prev_nets.as_deref();
        let detected = &mut state.detected;
        let newly = with_lanes!(&mut state.lanes, l => {
            self.advance_lanes(l, detected, seq, trace, prev0)
        });
        state.good_ff = next_good;
        if !seq.is_empty() {
            if let Some(prev) = state.prev_nets.as_mut() {
                for (n, v) in prev.iter_mut().enumerate() {
                    *v = trace.value(seq.len() - 1, n);
                }
            }
        }
        state.elapsed += seq.len();
        newly
    }

    fn advance_lanes<W: Word>(
        &self,
        lanes: &mut Lanes<W>,
        detected: &mut [bool],
        seq: &TestSequence,
        trace: &GoodTrace,
        prev0: Option<&[Logic3]>,
    ) -> usize {
        type AdvanceJob<'a, W> = (usize, &'a mut Batch<W>, &'a mut Vec<Planes<W>>);
        let jobs: Vec<AdvanceJob<'_, W>> = lanes
            .batches
            .iter_mut()
            .zip(lanes.ff.iter_mut())
            .enumerate()
            .filter(|(_, (batch, _))| !batch.live.is_zero())
            .map(|(bi, (batch, ff))| (bi, batch, ff))
            .collect();
        let n_jobs = jobs.len();
        let hits: Vec<(Vec<usize>, BatchStats)> = self.scatter(jobs, |(bi, batch, ff), scratch| {
            // The attempt owns its accumulators and works on a copy of
            // the flip-flop planes, so a panicked try leaves no partial
            // state for the reference-kernel retry to trip over.
            let (found, new_live, new_ff, stats) =
                self.run_isolated(bi, scratch, |reference, scratch| {
                    let mut found = Vec::new();
                    let mut ff_run = ff.clone();
                    let (new_live, stats) = self.run_one(
                        reference,
                        &batch.sched,
                        batch.live,
                        seq,
                        trace,
                        prev0,
                        &mut ff_run,
                        scratch,
                        None,
                        None,
                        |_, ctx: &CycleCtx<W>| {
                            let detected_now = ctx.obs_diff & ctx.live;
                            if !detected_now.is_zero() {
                                collect_hits(&batch.fault_indices, detected_now, |gi| {
                                    found.push(gi)
                                });
                            }
                            (detected_now, false)
                        },
                    );
                    (found, new_live, ff_run, stats)
                });
            batch.live = new_live;
            *ff = new_ff;
            (found, stats)
        });
        let mut newly = 0;
        let mut stats = BatchStats::default();
        let mut dropped = 0usize;
        for (batch_hits, batch_stats) in hits {
            stats.merge(batch_stats);
            dropped += batch_hits.len();
            for gi in batch_hits {
                if !detected[gi] {
                    detected[gi] = true;
                    newly += 1;
                }
            }
        }
        self.record_run(n_jobs, stats, dropped);
        newly
    }

    /// Opens a query over `faults`: the single entry point for every
    /// one-shot simulation question. Pick the sequence with
    /// [`Query::sequence`] (raw, good trace computed on the spot) or
    /// [`Query::prepared`] (trace reused from a [`PreparedSequence`]),
    /// then call a terminal.
    ///
    /// ```
    /// # use wbist_netlist::{bench_format, FaultList};
    /// # use wbist_sim::{FaultSim, TestSequence};
    /// # let c = bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
    /// let faults = FaultList::collapsed(&c);
    /// let seq = TestSequence::parse_rows(&["0", "1"]).unwrap();
    /// let times = FaultSim::new(&c).query(&faults).sequence(&seq).detection_times();
    /// # assert_eq!(times.len(), faults.len());
    /// ```
    pub fn query<'q>(&'q self, faults: &'q FaultList) -> Query<'q, 'c> {
        Query {
            sim: self,
            faults,
            seq: None,
            prep: None,
            cache: None,
        }
    }

    /// Dense detection engine behind every [`Query`] terminal that needs
    /// per-fault results: runs every batch to the end of the sequence
    /// (with fault dropping), returning the first detection time per
    /// fault, the faulty-machine cycles skipped by snapshot resume, and
    /// — for prepared queries under the capture cap — the faulty-plane
    /// snapshots to install into the prefix cache.
    ///
    /// With `prepared` absent this is the historic from-scratch dense
    /// query: no resume, no capture, identical work and identical
    /// deterministic telemetry. With `prepared` present each batch
    /// resumes from the latest cached snapshot at or before the
    /// shared-prefix divergence cycle — bit-identical to the
    /// from-scratch run in every observable (each snapshot carries the
    /// cumulative stats and detections of the cycles it skips, and an
    /// armed cancellation token is pre-charged with the skipped
    /// fault-cycles).
    fn run_dense<W: SimWord>(
        &self,
        faults: &FaultList,
        seq: &TestSequence,
        trace: &GoodTrace,
        prepared: PreparedCtx<'_>,
    ) -> DenseRun {
        let num_dffs = self.circuit.num_dffs();
        let batches = self.make_batches::<W>(faults);
        let n_jobs = batches.len();
        let fingerprint = prefix::fault_fingerprint(faults);
        // Snapshot capture is tiered on the plane footprint `batches ×
        // flip-flops` — a pure function of the query shape, so
        // artifacts either exist for every evaluation of a fault list
        // or for none, and a cached store always matches the
        // representation a rerun would pick. Small queries keep raw
        // plane vectors; above the state cap snapshots are spilled to
        // the compressed XOR-delta form; above the spill cap capture is
        // declined and the denial reported.
        #[derive(Clone, Copy, PartialEq, Eq)]
        enum Capture {
            Off,
            Raw,
            Spill,
            Denied,
        }
        let capture = if prepared.is_none() || self.options.reference_kernel {
            Capture::Off
        } else if n_jobs * num_dffs <= ARTIFACT_STATE_CAP {
            Capture::Raw
        } else if n_jobs * num_dffs <= ARTIFACT_SPILL_CAP {
            Capture::Spill
        } else {
            Capture::Denied
        };
        // Artifacts cached at another word width fail the downcast and
        // simply miss — the trace-side prefix reuse still applies.
        let arts: Option<(&FaultyArtifacts<W>, usize)> = match prepared {
            Some((Some(cache), Some((ei, d)))) if !self.options.reference_kernel => cache
                .entry(ei)
                .faulty
                .as_ref()
                .and_then(W::from_any)
                .filter(|fa| fa.fingerprint == fingerprint && fa.store.num_batches() == n_jobs)
                .map(|fa| (fa, d)),
            _ => None,
        };
        if let Some((fa, _)) = arts {
            debug_assert!(
                matches!(
                    (&fa.store, capture),
                    (SnapshotStore::Raw(_), Capture::Raw)
                        | (SnapshotStore::Spilled(_), Capture::Spill)
                ),
                "cached store representation must match the rerun's capture tier"
            );
        }
        type Ckpt<W> = Arc<compiled::BatchCkpt<W>>;
        type Job<W> = (usize, Batch<W>, Option<Ckpt<W>>);
        // Snapshots at or before each batch's resume point stay valid
        // for the new sequence and carry over into its entry; they are
        // merged back in (deterministic) batch order after the fan-out.
        let mut carry_raw: Vec<Vec<Ckpt<W>>> = vec![Vec::new(); n_jobs];
        let mut carry_spilled: Vec<Vec<Arc<SpilledCkpt<W>>>> = vec![Vec::new(); n_jobs];
        let jobs: Vec<Job<W>> = batches
            .into_iter()
            .enumerate()
            .map(|(bi, batch)| {
                // Resume from the latest snapshot still inside the
                // shared prefix; spilled snapshots are decompressed
                // against the new trace (identical on prefix rows).
                let resume = match arts {
                    Some((fa, d)) => match &fa.store {
                        SnapshotStore::Raw(pb) => {
                            let list = &pb[bi];
                            let resume = list.iter().rfind(|ck| ck.cycle <= d).cloned();
                            if let Some(r) = &resume {
                                carry_raw[bi] = list
                                    .iter()
                                    .filter(|ck| ck.cycle <= r.cycle)
                                    .cloned()
                                    .collect();
                            }
                            resume
                        }
                        SnapshotStore::Spilled(pb) => {
                            let list = &pb[bi];
                            let spill = list.iter().rfind(|ck| ck.cycle <= d);
                            if let Some(r) = spill {
                                carry_spilled[bi] = list
                                    .iter()
                                    .filter(|ck| ck.cycle <= r.cycle)
                                    .cloned()
                                    .collect();
                            }
                            spill.map(|s| Arc::new(s.restore(trace, &self.compiled.dff_d)))
                        }
                    },
                    None => None,
                };
                (bi, batch, resume)
            })
            .collect();
        let capture_on = matches!(capture, Capture::Raw | Capture::Spill);
        type Out<W> = (
            Vec<(usize, usize)>,
            BatchStats,
            Option<Vec<compiled::BatchCkpt<W>>>,
            u64,
        );
        let per_batch: Vec<Out<W>> = self.scatter(jobs, |(bi, batch, resume), scratch| {
            self.run_isolated(bi, scratch, |reference, scratch| {
                let mut found: Vec<(usize, usize)> = Vec::new();
                // A reference run (primary kernel or panic retry) has no
                // resume path: it replays the batch from scratch and
                // captures no snapshots.
                let (mut ff, from) = match (&resume, reference) {
                    (Some(ck), false) => (ck.ff.clone(), Some(&**ck)),
                    _ => (vec![Planes::ALL_X; num_dffs], None),
                };
                if let Some(ck) = from {
                    // Detections and budget charge of the skipped prefix
                    // carry over, so query totals match from-scratch.
                    found.extend_from_slice(&ck.found);
                    if self.cancel.is_armed() {
                        self.cancel.charge_fault_cycles(ck.stats.fault_cycles);
                    }
                }
                let mut snaps: Vec<compiled::BatchCkpt<W>> = Vec::new();
                let snap = if capture_on && !reference {
                    Some(&mut snaps)
                } else {
                    None
                };
                let (_, stats) = self.run_one(
                    reference,
                    &batch.sched,
                    batch.live,
                    seq,
                    trace,
                    None,
                    &mut ff,
                    scratch,
                    from,
                    snap,
                    |u, ctx: &CycleCtx<W>| {
                        let detected_now = ctx.obs_diff & ctx.live;
                        if !detected_now.is_zero() {
                            collect_hits(&batch.fault_indices, detected_now, |gi| {
                                found.push((gi, u))
                            });
                        }
                        (detected_now, false)
                    },
                );
                let skipped = from.map_or(0, |ck| ck.cycle as u64);
                // Raw snapshots move to the merge loop, which owns the
                // found-filter and (on the spill tier) compression; a
                // reference retry forfeits capture entirely.
                (found, stats, (!reference).then_some(snaps), skipped)
            })
        });
        let mut times = vec![None; faults.len()];
        let mut stats = BatchStats::default();
        let mut dropped = 0usize;
        let mut raw_store: Vec<Vec<Ckpt<W>>> = Vec::new();
        let mut spill_store: Vec<Vec<Arc<SpilledCkpt<W>>>> = Vec::new();
        let mut snapshot_spills = 0u64;
        let mut resumed_cycles = 0u64;
        for (bi, (found, bstats, captured, skipped)) in per_batch.into_iter().enumerate() {
            stats.merge(bstats);
            dropped += found.len();
            // Each stored snapshot keeps only the detections strictly
            // before its cycle, so a resume replays the rest verbatim.
            match (capture, captured) {
                (Capture::Raw, Some(snaps)) => {
                    let mut list = std::mem::take(&mut carry_raw[bi]);
                    list.extend(snaps.into_iter().map(|mut s| {
                        s.found = found
                            .iter()
                            .filter(|&&(_, u)| u < s.cycle)
                            .copied()
                            .collect();
                        Arc::new(s)
                    }));
                    raw_store.push(list);
                }
                (Capture::Spill, Some(snaps)) => {
                    let mut list = std::mem::take(&mut carry_spilled[bi]);
                    for mut s in snaps {
                        s.found = found
                            .iter()
                            .filter(|&&(_, u)| u < s.cycle)
                            .copied()
                            .collect();
                        snapshot_spills += 1;
                        list.push(Arc::new(SpilledCkpt::compress(
                            &s,
                            trace,
                            &self.compiled.dff_d,
                        )));
                    }
                    spill_store.push(list);
                }
                // A panic-retried batch reran under the reference
                // kernel and forfeits its snapshots, carried included.
                (Capture::Raw, None) => raw_store.push(Vec::new()),
                (Capture::Spill, None) => spill_store.push(Vec::new()),
                _ => {}
            }
            for (gi, u) in found {
                times[gi] = Some(u);
            }
            resumed_cycles += skipped;
        }
        self.record_run(n_jobs, stats, dropped);
        let mut snapshot_bytes = 0u64;
        let artifacts = match capture {
            Capture::Raw => Some(W::into_any(FaultyArtifacts {
                fingerprint,
                store: SnapshotStore::Raw(raw_store),
            })),
            Capture::Spill => {
                snapshot_bytes =
                    prefix::enforce_spill_budget(&mut spill_store, prefix::SPILL_BYTE_BUDGET)
                        as u64;
                Some(W::into_any(FaultyArtifacts {
                    fingerprint,
                    store: SnapshotStore::Spilled(spill_store),
                }))
            }
            Capture::Off | Capture::Denied => None,
        };
        DenseRun {
            times,
            resumed_cycles,
            artifacts,
            snapshot_spills,
            snapshot_bytes,
            capture_denied: capture == Capture::Denied,
        }
    }

    /// Early-exit screening engine behind [`Query::any`]: stops the
    /// moment any machine differs on an observed net, with worker
    /// threads coordinating through a shared flag.
    fn run_screen<W: Word>(
        &self,
        faults: &FaultList,
        seq: &TestSequence,
        trace: &GoodTrace,
    ) -> bool {
        let num_dffs = self.circuit.num_dffs();
        let batches = self.make_batches::<W>(faults);
        let jobs: Vec<(usize, Batch<W>)> = batches.into_iter().enumerate().collect();
        let found = AtomicBool::new(false);
        let hits: Vec<(bool, usize, usize)> = self.scatter(jobs, |(bi, batch), scratch| {
            if found.load(Ordering::Relaxed) {
                return (false, 0, 1);
            }
            self.run_isolated(bi, scratch, |reference, scratch| {
                let mut ff = vec![Planes::ALL_X; num_dffs];
                let mut hit = false;
                let mut cancelled = 0usize;
                let (_, stats) = self.run_one(
                    reference,
                    &batch.sched,
                    batch.live,
                    seq,
                    trace,
                    None,
                    &mut ff,
                    scratch,
                    None,
                    None,
                    |_, ctx: &CycleCtx<W>| {
                        if found.load(Ordering::Relaxed) {
                            cancelled = 1;
                            return (W::ZERO, true);
                        }
                        if !(ctx.obs_diff & ctx.live).is_zero() {
                            hit = true;
                            found.store(true, Ordering::Relaxed);
                            return (W::ZERO, true);
                        }
                        (W::ZERO, false)
                    },
                );
                (hit, stats.cycles, cancelled)
            })
        });
        self.record_screen(&hits);
        hits.into_iter().any(|(h, _, _)| h)
    }

    /// Computes the good-machine trace of `seq` once for a screen +
    /// dense query pair, resuming from the cached sequence sharing the
    /// longest input prefix (when `cache` holds one) instead of
    /// simulating from cycle 0.
    ///
    /// The reference kernel ignores the cache entirely — it is the
    /// differential oracle and must keep recomputing everything.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn prepare_sequence(
        &self,
        cache: Option<&PrefixTraceCache>,
        seq: &TestSequence,
    ) -> PreparedSequence {
        self.check_width(seq);
        let init = vec![Logic3::X; self.circuit.num_dffs()];
        let best = if self.options.reference_kernel {
            None
        } else {
            cache.and_then(|c| c.best_prefix(seq))
        };
        match best {
            Some((ei, d)) => {
                let base = cache.expect("best_prefix implies a cache").entry(ei);
                // A full-length match over equal lengths is the same
                // sequence: share the trace outright.
                let (trace, cone_seeded, stats) = if d == seq.len() && base.trace.len() == d {
                    (base.trace.clone(), false, compiled::TraceStats::default())
                } else if self.options.no_cone_seeding {
                    // Full-divergence resume: every suffix gate rescanned.
                    let stats = compiled::TraceStats::full(
                        (self.compiled.num_gates * (seq.len() - d)) as u64,
                    );
                    let trace = self.compiled.good_trace_from(seq, &init, &base.trace, d).0;
                    (Arc::new(trace), false, stats)
                } else {
                    // Cone-seeded resume: only the changed input
                    // streams' forward cones are re-evaluated.
                    let changed = prefix::changed_streams(&base.seq, seq, d);
                    let (trace, _, stats) =
                        self.compiled
                            .good_trace_from_cone(seq, &init, &base.trace, d, &changed);
                    (Arc::new(trace), true, stats)
                };
                PreparedSequence {
                    seq: seq.clone(),
                    trace,
                    base: Some((ei, d)),
                    reused_cycles: d,
                    cone_seeded,
                    trace_gates_evaluated: stats.gates_evaluated,
                    trace_gates_saved: stats.gates_saved,
                }
            }
            None => PreparedSequence {
                seq: seq.clone(),
                trace: Arc::new(self.compiled.good_trace(seq, &init).0),
                base: None,
                reused_cycles: 0,
                cone_seeded: false,
                trace_gates_evaluated: 0,
                trace_gates_saved: 0,
            },
        }
    }

    /// A trace-only cache entry for `prep` (no faulty-plane state): what
    /// a candidate that never ran the dense query — screened out, say —
    /// can still contribute to later prefix lookups.
    pub fn trace_install(&self, prep: &PreparedSequence) -> CacheInstall {
        CacheInstall {
            seq: prep.seq.clone(),
            trace: prep.trace.clone(),
            faulty: None,
        }
    }

    /// Observability engine behind [`Query::observable_lines`]: for
    /// every fault, the set of nets on which the faulty machine differs
    /// (binary vs. binary) from the fault-free machine at *some* time
    /// unit of `seq` — the paper's observation-point candidate sets
    /// `OP(f)`.
    fn run_lines<W: Word>(
        &self,
        faults: &FaultList,
        seq: &TestSequence,
        trace: &GoodTrace,
    ) -> Vec<Vec<NetId>> {
        let num_dffs = self.circuit.num_dffs();
        let num_nets = self.circuit.num_nets();
        let batches = self.make_batches::<W>(faults);
        let n_jobs = batches.len();
        let jobs: Vec<(usize, Batch<W>)> = batches.into_iter().enumerate().collect();
        // Per batch: (fault index, observable lines) pairs + stats.
        type BatchLines = (Vec<(usize, Vec<NetId>)>, BatchStats);
        let per_batch: Vec<BatchLines> = self.scatter(jobs, |(bi, batch), scratch| {
            self.run_isolated(bi, scratch, |reference, scratch| {
                let mut ff = vec![Planes::ALL_X; num_dffs];
                // Accumulated difference mask per net. Only nets inside
                // the batch's cone can ever differ from the good
                // machine, so the sink visits just those.
                let mut acc = vec![W::ZERO; num_nets];
                let (_, stats) = self.run_one(
                    reference,
                    &batch.sched,
                    batch.live,
                    seq,
                    trace,
                    None,
                    &mut ff,
                    scratch,
                    None,
                    None,
                    |_, ctx: &CycleCtx<W>| {
                        for &n in ctx.cone_nets {
                            acc[n as usize] |= ctx.nets[n as usize].diff_from_good();
                        }
                        (W::ZERO, false)
                    },
                );
                let lines = batch
                    .fault_indices
                    .iter()
                    .enumerate()
                    .map(|(k, &gi)| {
                        let bit = W::bit(k + 1);
                        let lines = acc
                            .iter()
                            .enumerate()
                            .filter(|&(_, &mask)| !(mask & bit).is_zero())
                            .map(|(n, _)| NetId::from_index(n))
                            .collect();
                        (gi, lines)
                    })
                    .collect();
                (lines, stats)
            })
        });
        let mut result = vec![Vec::new(); faults.len()];
        let mut stats = BatchStats::default();
        for (batch_lines, batch_stats) in per_batch {
            stats.merge(batch_stats);
            for (gi, lines) in batch_lines {
                result[gi] = lines;
            }
        }
        self.record_run(n_jobs, stats, 0);
        result
    }

    /// Resumes `state` but only checks whether any *specific* fault listed
    /// in `sample` (by its index in the originating fault list) is
    /// detected by `seq`; flip-flop planes are cloned so `state` is not
    /// modified. Used for the paper's sample-first simulation shortcut.
    ///
    /// The compiled kernel restricts each batch's cone to the sampled
    /// faults alone, so a handful of sampled faults in a 63-fault batch
    /// touches only their own fanout.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn sample_detects(
        &self,
        state: &FaultSimState,
        sample: &[usize],
        seq: &TestSequence,
    ) -> bool {
        self.check_width(seq);
        let (trace, _) = self.good_trace(seq, &state.good_ff);
        let trace = &trace;
        let prev0 = state.prev_nets.as_deref();
        with_lanes!(&state.lanes, l => self.sample_lanes(l, sample, seq, trace, prev0))
    }

    fn sample_lanes<W: Word>(
        &self,
        lanes: &Lanes<W>,
        sample: &[usize],
        seq: &TestSequence,
        trace: &GoodTrace,
        prev0: Option<&[Logic3]>,
    ) -> bool {
        // Only batches carrying a live sampled fault need simulating.
        let jobs: Vec<(usize, W)> = lanes
            .batches
            .iter()
            .enumerate()
            .filter_map(|(bi, batch)| {
                let mut wanted = W::ZERO;
                for &gi in sample {
                    if let Some(bit) = batch.bit_of(gi) {
                        wanted |= bit;
                    }
                }
                wanted &= batch.live;
                (!wanted.is_zero()).then_some((bi, wanted))
            })
            .collect();
        let found = AtomicBool::new(false);
        let hits: Vec<(bool, usize, usize)> = self.scatter(jobs, |(bi, wanted), scratch| {
            if found.load(Ordering::Relaxed) {
                return (false, 0, 1);
            }
            self.run_isolated(bi, scratch, |reference, scratch| {
                let batch = &lanes.batches[bi];
                let mut ff = lanes.ff[bi].clone();
                let mut hit = false;
                let mut cancelled = 0usize;
                let (_, stats) = self.run_one(
                    reference,
                    &batch.sched,
                    wanted,
                    seq,
                    trace,
                    prev0,
                    &mut ff,
                    scratch,
                    None,
                    None,
                    |_, ctx: &CycleCtx<W>| {
                        if found.load(Ordering::Relaxed) {
                            cancelled = 1;
                            return (W::ZERO, true);
                        }
                        if !(ctx.obs_diff & wanted).is_zero() {
                            hit = true;
                            found.store(true, Ordering::Relaxed);
                            return (W::ZERO, true);
                        }
                        (W::ZERO, false)
                    },
                );
                (hit, stats.cycles, cancelled)
            })
        });
        self.record_screen(&hits);
        hits.into_iter().any(|(h, _, _)| h)
    }

    /// Reports one full (non-early-exit) query into the telemetry
    /// handle. All figures are deterministic: each batch runs until its
    /// own faults are exhausted or the sequence ends, and its cone
    /// evolution depends only on the (deterministic) drop order — both
    /// independent of thread scheduling.
    fn record_run(&self, batches: usize, stats: BatchStats, dropped: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.add("sim.calls", 1);
        self.telemetry.add("sim.batches", batches as u64);
        self.telemetry.add("sim.cycles", stats.cycles as u64);
        self.telemetry.add("sim.faults_dropped", dropped as u64);
        self.telemetry
            .add("sim.gates_evaluated", stats.gates_evaluated);
        self.telemetry.add("sim.gates_skipped", stats.gates_skipped);
        self.telemetry.add("sim.fault_cycles", stats.fault_cycles);
    }

    /// Reports one early-exit screening query ([`Query::any`] /
    /// [`FaultSim::sample_detects`]). Cycle and cancellation totals
    /// depend on which worker wins the race, so they are recorded as
    /// effort, not as deterministic counters.
    fn record_screen(&self, hits: &[(bool, usize, usize)]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.add("sim.screen_calls", 1);
        let cycles: usize = hits.iter().map(|&(_, c, _)| c).sum();
        let cancelled: usize = hits.iter().map(|&(_, _, x)| x).sum();
        self.telemetry
            .add_effort("sim.screen_cycles", cycles as u64);
        self.telemetry
            .add_effort("sim.early_exit_cancels", cancelled as u64);
    }
}

/// A single fault-simulation question, built from [`FaultSim::query`].
///
/// Exactly one sequence source must be set before a terminal runs:
///
/// * [`sequence`](Query::sequence) — a raw [`TestSequence`]; the good
///   trace is computed on the spot from the all-`X` start, or
/// * [`prepared`](Query::prepared) — a [`PreparedSequence`] whose good
///   trace was computed (possibly prefix-resumed) up front, so a
///   screen-then-dense pair pays for one good simulation instead of
///   two.
///
/// An optional [`cache`](Query::cache) supplies the prefix cache whose
/// faulty-plane snapshots [`outcome`](Query::outcome) resumes from.
/// Terminals consume the builder; every terminal panics if the sequence
/// width does not match the circuit, and each reports exactly one
/// telemetry record (`sim.calls` for the dense and observability
/// terminals, `sim.screen_calls` for [`any`](Query::any)).
#[derive(Clone, Copy)]
#[must_use = "a query does nothing until a terminal method runs it"]
pub struct Query<'q, 'c> {
    sim: &'q FaultSim<'c>,
    faults: &'q FaultList,
    seq: Option<&'q TestSequence>,
    prep: Option<&'q PreparedSequence>,
    cache: Option<&'q PrefixTraceCache>,
}

impl<'q, 'c> Query<'q, 'c> {
    /// Evaluates against a raw sequence (good trace computed here).
    /// Clears any previously set [`prepared`](Query::prepared) source.
    pub fn sequence(mut self, seq: &'q TestSequence) -> Self {
        self.seq = Some(seq);
        self.prep = None;
        self
    }

    /// Evaluates against a prepared sequence, reusing its good trace.
    /// Clears any previously set [`sequence`](Query::sequence) source.
    pub fn prepared(mut self, prep: &'q PreparedSequence) -> Self {
        self.prep = Some(prep);
        self.seq = None;
        self
    }

    /// Prefix cache whose faulty-plane snapshots a
    /// [`prepared`](Query::prepared) [`outcome`](Query::outcome) may
    /// resume from. Ignored by every other terminal.
    pub fn cache(mut self, cache: &'q PrefixTraceCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The sequence and good trace this query runs against.
    fn resolve(&self) -> (&'q TestSequence, Arc<GoodTrace>) {
        match (self.prep, self.seq) {
            (Some(p), _) => (&p.seq, p.trace.clone()),
            (None, Some(s)) => {
                self.sim.check_width(s);
                let init = vec![Logic3::X; self.sim.circuit.num_dffs()];
                (s, Arc::new(self.sim.compiled.good_trace(s, &init).0))
            }
            (None, None) => {
                panic!("FaultSim query needs a sequence: call .sequence(..) or .prepared(..)")
            }
        }
    }

    /// The prepared-resume context handed to the dense engine: present
    /// iff the query was built from a prepared sequence.
    fn prepared_ctx(&self) -> PreparedCtx<'q> {
        self.prep.map(|p| (self.cache, p.base))
    }

    /// For every fault, the first time unit at which it is detected (the
    /// paper's `u_det(f)`), or `None` if the sequence does not detect
    /// it.
    pub fn detection_times(self) -> Vec<Option<usize>> {
        let (seq, trace) = self.resolve();
        with_word!(self.sim.options.word_width, W => {
            self.sim
                .run_dense::<W>(self.faults, seq, &trace, self.prepared_ctx())
                .times
        })
    }

    /// A detected flag per fault.
    pub fn detected(self) -> Vec<bool> {
        self.detection_times()
            .into_iter()
            .map(|t| t.is_some())
            .collect()
    }

    /// Indices (into the queried fault list, ascending) of the detected
    /// faults.
    ///
    /// This is the snapshot-safe query the synthesis wavefront uses:
    /// detection of a fault by a sequence does not depend on any other
    /// fault's status, so the returned set computed against a frozen
    /// fault list stays valid when it is intersected with a later state.
    pub fn detected_indices(self) -> Vec<usize> {
        self.detection_times()
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|_| i))
            .collect()
    }

    /// Number of detected faults.
    pub fn count(self) -> usize {
        self.detection_times()
            .iter()
            .filter(|t| t.is_some())
            .count()
    }

    /// `true` as soon as any fault is detected (early exit). Used for
    /// the paper's sample-first speedup; the first worker thread to find
    /// a detection cancels the others through a shared flag.
    pub fn any(self) -> bool {
        let (seq, trace) = self.resolve();
        with_word!(self.sim.options.word_width, W => {
            self.sim.run_screen::<W>(self.faults, seq, &trace)
        })
    }

    /// Per-fault observation-point candidate sets `OP(f)`: the nets on
    /// which the faulty machine differs (binary vs. binary) from the
    /// fault-free machine at some time unit. A fault would be detected
    /// by observing any of these lines.
    pub fn observable_lines(self) -> Vec<Vec<NetId>> {
        let (seq, trace) = self.resolve();
        with_word!(self.sim.options.word_width, W => {
            self.sim.run_lines::<W>(self.faults, seq, &trace)
        })
    }

    /// The dense query with its cache bookkeeping: detected indices plus
    /// the resume accounting and the [`CacheInstall`] the caller may
    /// publish once the result is committed. Requires a
    /// [`prepared`](Query::prepared) sequence — the install shares the
    /// prepared trace.
    ///
    /// Bit-identical to [`detected_indices`](Query::detected_indices) in
    /// every observable: detections, drop order, and the deterministic
    /// telemetry counters (each resumed batch carries the cumulative
    /// stats and detections of the cycles it skips).
    pub fn outcome(self) -> PreparedOutcome {
        let prep = self
            .prep
            .expect("Query::outcome requires a prepared sequence");
        let run = with_word!(self.sim.options.word_width, W => {
            self.sim
                .run_dense::<W>(self.faults, &prep.seq, &prep.trace, self.prepared_ctx())
        });
        let detected = run
            .times
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|_| i))
            .collect();
        PreparedOutcome {
            detected,
            resumed_cycles: run.resumed_cycles,
            snapshot_spills: run.snapshot_spills,
            snapshot_bytes: run.snapshot_bytes,
            snapshot_capture_denied: run.capture_denied,
            install: CacheInstall {
                seq: prep.seq.clone(),
                trace: prep.trace.clone(),
                faulty: run.artifacts,
            },
        }
    }
}

impl BatchStats {
    /// Accumulates another batch's figures (deterministic merge).
    fn merge(&mut self, other: BatchStats) {
        self.cycles += other.cycles;
        self.gates_evaluated += other.gates_evaluated;
        self.gates_skipped += other.gates_skipped;
        self.fault_cycles += other.fault_cycles;
    }
}

/// Renders a caught panic payload to text (panics carry `&str` or
/// `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Reports every set bit of `detected_now` as its global fault index.
#[inline]
fn collect_hits<W: Word>(fault_indices: &[usize], detected_now: W, mut report: impl FnMut(usize)) {
    for (k, &gi) in fault_indices.iter().enumerate() {
        if detected_now.test(k + 1) {
            report(gi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good::LogicSim;
    use crate::logic::Logic3;
    use wbist_netlist::{bench_format, FaultSite, FaultUniverse};

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap()
    }

    #[test]
    fn shared_lowering_is_reused_and_bit_identical() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["11", "01", "10", "00"]).unwrap();
        let want = FaultSim::new(&c).query(&faults).sequence(&seq).detected();

        let handle = CompiledHandle::lower(&c);
        assert!(handle.matches(&c));
        let run = RunOptions::default().compiled(handle.clone());
        let sim = FaultSim::with_run_options(&c, &run);
        // Same Arc: the registry's one-time lowering is what gets used.
        assert!(Arc::ptr_eq(&sim.compiled, &handle.compiled));
        assert_eq!(sim.query(&faults).sequence(&seq).detected(), want);
        // compiled_handle() round-trips the same Arc.
        assert!(Arc::ptr_eq(
            &sim.compiled_handle().compiled,
            &handle.compiled
        ));

        // A handle from a *different* circuit degrades to a fresh
        // lowering instead of simulating the wrong netlist.
        let other = bench_format::parse("other", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let stale = RunOptions::default().compiled(CompiledHandle::lower(&other));
        assert!(!stale.compiled.as_ref().unwrap().matches(&c));
        let fresh = FaultSim::with_run_options(&c, &stale);
        assert!(!Arc::ptr_eq(
            &fresh.compiled,
            &stale.compiled.as_ref().unwrap().compiled
        ));
        assert_eq!(fresh.query(&faults).sequence(&seq).detected(), want);
    }

    /// Reference implementation: serial single-fault simulation using the
    /// good simulator on a mutated evaluation. Used to validate the
    /// parallel engine over every fault model: the good machine steps
    /// first each cycle, so the faulty machine's forced value (if the
    /// fault is active this cycle) can be derived from the fault-free
    /// launch/capture pair.
    fn serial_detect(c: &Circuit, fault: Fault, seq: &TestSequence) -> Option<usize> {
        let mut good_ff = vec![Logic3::X; c.num_dffs()];
        let mut bad_ff = vec![Logic3::X; c.num_dffs()];
        let mut good = vec![Logic3::X; c.num_nets()];
        let mut bad = vec![Logic3::X; c.num_nets()];
        let mut prev_good: Option<Vec<Logic3>> = None;
        for u in 0..seq.len() {
            scalar_step(c, seq.row(u), &mut good_ff, &mut good, None);
            let forced =
                forced_value(c, fault, &good, prev_good.as_deref()).map(|v| (fault.site(), v));
            scalar_step(c, seq.row(u), &mut bad_ff, &mut bad, forced);
            for o in c.observed_nets() {
                if good[o.index()].conflicts(bad[o.index()]) {
                    return Some(u);
                }
            }
            prev_good = Some(good.clone());
        }
        None
    }

    /// The value `fault` forces at its site this cycle, or `None` when
    /// it is inactive. Stuck-at faults force unconditionally; a
    /// transition-delay fault forces the launch value only when its site
    /// transitions to the slow value on the fault-free machine between
    /// the previous and current cycles (an `X` on either side never
    /// activates, and the all-`X` start before cycle 0 never launches).
    fn forced_value(
        c: &Circuit,
        fault: Fault,
        good: &[Logic3],
        prev: Option<&[Logic3]>,
    ) -> Option<Logic3> {
        match fault {
            Fault::StuckAt { stuck, .. } => Some(stuck.into()),
            Fault::TransitionDelay { site, slow_to } => {
                let watch = match site {
                    FaultSite::Stem(net) => net,
                    FaultSite::GatePin { gate, pin } => c.gate(gate).inputs[pin],
                    FaultSite::DffData(k) => c.dffs()[k].d.unwrap(),
                };
                let cur = good[watch.index()];
                let prv = prev.map_or(Logic3::X, |p| p[watch.index()]);
                let slow: Logic3 = slow_to.into();
                let launch: Logic3 = (!slow_to).into();
                (cur == slow && prv == launch).then_some(launch)
            }
        }
    }

    fn scalar_step(
        c: &Circuit,
        row: &[bool],
        ff: &mut [Logic3],
        nets: &mut [Logic3],
        forced: Option<(FaultSite, Logic3)>,
    ) {
        let inject_stem = |net: NetId, v: Logic3| -> Logic3 {
            if let Some((site, fv)) = forced {
                if site == FaultSite::Stem(net) {
                    return fv;
                }
            }
            v
        };
        for (pi, &net) in c.inputs().iter().enumerate() {
            nets[net.index()] = inject_stem(net, row[pi].into());
        }
        for (k, d) in c.dffs().iter().enumerate() {
            nets[d.q.index()] = inject_stem(d.q, ff[k]);
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let vals: Vec<Logic3> = g
                .inputs
                .iter()
                .enumerate()
                .map(|(pin, &i)| {
                    let mut v = nets[i.index()];
                    if let Some((site, fv)) = forced {
                        if site == (FaultSite::GatePin { gate: gid, pin }) {
                            v = fv;
                        }
                    }
                    v
                })
                .collect();
            let out = crate::good::eval_gate(g.kind, vals.into_iter());
            nets[g.output.index()] = inject_stem(g.output, out);
        }
        for (k, d) in c.dffs().iter().enumerate() {
            let mut v = nets[d.d.unwrap().index()];
            if let Some((site, fv)) = forced {
                if site == FaultSite::DffData(k) {
                    v = fv;
                }
            }
            ff[k] = v;
        }
    }

    #[test]
    fn parallel_matches_serial_on_toy() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).unwrap();
        let par = FaultSim::new(&c)
            .query(&faults)
            .sequence(&seq)
            .detection_times();
        for (i, &f) in faults.faults().iter().enumerate() {
            let ser = serial_detect(&c, f, &seq);
            assert_eq!(par[i], ser, "fault {} disagrees", f.describe(&c));
        }
    }

    #[test]
    fn reference_kernel_matches_serial_on_toy() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).unwrap();
        let sim = FaultSim::with_options(&c, SimOptions::default().reference_kernel(true));
        let par = sim.query(&faults).sequence(&seq).detection_times();
        for (i, &f) in faults.faults().iter().enumerate() {
            let ser = serial_detect(&c, f, &seq);
            assert_eq!(par[i], ser, "fault {} disagrees", f.describe(&c));
        }
    }

    /// Every transition-delay fault on the toy circuit agrees with the
    /// scalar launch/capture oracle, on both kernels.
    #[test]
    fn transition_faults_match_scalar_oracle_on_toy() {
        let c = toy();
        let faults = FaultUniverse::enumerate(FaultModel::TransitionDelay, &c);
        assert!(!faults.is_empty());
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).unwrap();
        for reference in [false, true] {
            let sim = FaultSim::with_options(&c, SimOptions::default().reference_kernel(reference));
            let par = sim.query(&faults).sequence(&seq).detection_times();
            for (i, &f) in faults.faults().iter().enumerate() {
                let ser = serial_detect(&c, f, &seq);
                assert_eq!(
                    par[i],
                    ser,
                    "fault {} disagrees (reference={reference})",
                    f.describe(&c)
                );
            }
        }
    }

    /// A mixed stuck-at + transition fault list in one batch: both
    /// kernels agree with the scalar oracle on every fault.
    #[test]
    fn mixed_model_batch_matches_scalar_oracle() {
        let c = toy();
        let mut all = FaultUniverse::enumerate(FaultModel::StuckAt, &c)
            .faults()
            .to_vec();
        all.extend(
            FaultUniverse::enumerate(FaultModel::TransitionDelay, &c)
                .faults()
                .iter()
                .copied(),
        );
        let faults = FaultList::from_faults(all);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).unwrap();
        let fast = FaultSim::new(&c)
            .query(&faults)
            .sequence(&seq)
            .detection_times();
        let oracle = FaultSim::with_options(&c, SimOptions::default().reference_kernel(true))
            .query(&faults)
            .sequence(&seq)
            .detection_times();
        assert_eq!(fast, oracle);
        for (i, &f) in faults.faults().iter().enumerate() {
            assert_eq!(
                fast[i],
                serial_detect(&c, f, &seq),
                "fault {}",
                f.describe(&c)
            );
        }
    }

    /// Pins the launch/capture semantics cycle by cycle on a one-gate
    /// circuit: `y = NOT(a)`, slow-to-rise on the stem of `a`.
    ///
    /// * cycle 0 never launches (the pre-sequence state is all-`X`);
    /// * the fault activates exactly on a 0→1 transition of `a`, forcing
    ///   the stale 0 for that cycle (so `y` reads 1 instead of 0);
    /// * a steady 1 (no transition) is fault-free.
    #[test]
    fn transition_launch_capture_cycle_semantics() {
        let c = bench_format::parse("inv", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let a = c.net_by_name("a").unwrap();
        let str_fault = Fault::slow_to_rise(FaultSite::Stem(a));
        let stf_fault = Fault::slow_to_fall(FaultSite::Stem(a));
        let faults = FaultList::from_faults(vec![str_fault, stf_fault]);
        for reference in [false, true] {
            let sim = FaultSim::with_options(&c, SimOptions::default().reference_kernel(reference));
            // a: 1, 0, 1, 1, 0 — rises at u=2 (0→1), falls at u=1 and
            // u=4. Cycle 0 applies a 1 but cannot launch from X.
            let seq = TestSequence::parse_rows(&["1", "0", "1", "1", "0"]).unwrap();
            let times = sim.query(&faults).sequence(&seq).detection_times();
            assert_eq!(times[0], Some(2), "slow-to-rise fires on the 0→1 edge");
            assert_eq!(times[1], Some(1), "slow-to-fall fires on the 1→0 edge");
            // A constant stream never transitions: nothing activates.
            let flat = TestSequence::parse_rows(&["1", "1", "1"]).unwrap();
            assert_eq!(
                sim.query(&faults).sequence(&flat).detection_times(),
                vec![None, None],
                "no transition, no activation (reference={reference})"
            );
        }
    }

    /// The incremental state carries the launch half of a transition
    /// across segment boundaries: splitting a sequence right on the
    /// transition edge detects exactly what the one-shot run does.
    #[test]
    fn incremental_advance_carries_transition_launch_state() {
        let c = bench_format::parse("inv", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let a = c.net_by_name("a").unwrap();
        let faults = FaultList::from_faults(vec![Fault::slow_to_rise(FaultSite::Stem(a))]);
        let seq = TestSequence::parse_rows(&["0", "1"]).unwrap();
        for reference in [false, true] {
            let sim = FaultSim::with_options(&c, SimOptions::default().reference_kernel(reference));
            let oneshot = sim.query(&faults).sequence(&seq).detected();
            assert_eq!(oneshot, vec![true], "the 0→1 edge detects the fault");
            let mut st = sim.begin(&faults);
            sim.advance(&mut st, &seq.slice(0..1));
            assert_eq!(st.num_detected(), 0, "launch cycle alone detects nothing");
            sim.advance(&mut st, &seq.slice(1..2));
            assert_eq!(
                st.detected(),
                &oneshot[..],
                "capture cycle in the next segment still sees the launch (reference={reference})"
            );
        }
    }

    #[test]
    fn good_machine_consistency() {
        // The fault simulator's bit-0 machine must agree with LogicSim:
        // with an empty fault list nothing is ever detected.
        let c = toy();
        let seq = TestSequence::parse_rows(&["00", "10", "01"]).unwrap();
        let empty = FaultList::from_faults(vec![]);
        let sim = FaultSim::new(&c);
        assert_eq!(sim.query(&empty).sequence(&seq).count(), 0);
        // And a stuck fault on the PO stem is detected whenever the PO is
        // binary and differs.
        let y = c.net_by_name("y").unwrap();
        let fl = FaultList::from_faults(vec![Fault::sa0(FaultSite::Stem(y))]);
        let times = sim.query(&fl).sequence(&seq).detection_times();
        let outs = LogicSim::new(&c).outputs(&seq).unwrap();
        let expect = outs.iter().position(|o| o[0] == Logic3::One);
        assert_eq!(times[0], expect);
    }

    #[test]
    fn incremental_advance_equals_oneshot() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "10", "00"]).unwrap();
        let sim = FaultSim::new(&c);
        let oneshot = sim.query(&faults).sequence(&seq).detected();
        let mut st = sim.begin(&faults);
        sim.advance(&mut st, &seq.slice(0..3));
        sim.advance(&mut st, &seq.slice(3..6));
        assert_eq!(st.detected(), &oneshot[..]);
        assert_eq!(st.elapsed(), 6);
    }

    #[test]
    fn detects_any_early_exit_agrees() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10"]).unwrap();
        let sim = FaultSim::new(&c);
        let any = sim.query(&faults).sequence(&seq).count() > 0;
        assert_eq!(sim.query(&faults).sequence(&seq).any(), any);
    }

    #[test]
    fn observable_lines_superset_of_detection() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let sim = FaultSim::new(&c);
        let det = sim.query(&faults).sequence(&seq).detected();
        let lines = sim.query(&faults).sequence(&seq).observable_lines();
        let y = c.net_by_name("y").unwrap();
        for (i, d) in det.iter().enumerate() {
            if *d {
                assert!(
                    lines[i].contains(&y),
                    "detected fault must differ on the PO"
                );
            }
        }
    }

    #[test]
    fn sample_detects_respects_state() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let sim = FaultSim::new(&c);
        let st = sim.begin(&faults);
        let sample: Vec<usize> = (0..faults.len()).collect();
        let any = sim.sample_detects(&st, &sample, &seq);
        assert_eq!(any, sim.query(&faults).sequence(&seq).any());
        // State must be unmodified.
        assert_eq!(st.elapsed(), 0);
        assert_eq!(st.num_detected(), 0);
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn width_mismatch_panics() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["000"]).unwrap();
        FaultSim::new(&c).query(&faults).sequence(&seq).detected();
    }

    /// A circuit big enough to span several 63-fault batches.
    fn multi_batch() -> (Circuit, FaultList) {
        let mut text = String::from("INPUT(a)\nINPUT(b)\nINPUT(c)\n");
        text.push_str("g0 = NAND(a, b)\n");
        for i in 1..60 {
            text.push_str(&format!("g{i} = NAND(g{}, c)\n", i - 1));
        }
        text.push_str("q = DFF(g59)\ng60 = XOR(q, a)\nOUTPUT(g60)\n");
        let c = bench_format::parse("chain", &text).unwrap();
        let faults = FaultList::all_lines(&c);
        assert!(faults.len() > 126, "need at least 3 batches");
        (c, faults)
    }

    fn walk_sequence(len: usize) -> TestSequence {
        let rows: Vec<Vec<bool>> = (0..len)
            .map(|u| vec![u % 2 == 0, u % 3 == 0, u % 5 != 0])
            .collect();
        TestSequence::from_rows(rows).unwrap()
    }

    #[test]
    fn kernels_agree_on_multi_batch_circuit() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(48);
        let fast = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let oracle = FaultSim::with_options(&c, SimOptions::with_threads(1).reference_kernel(true));
        assert_eq!(
            fast.query(&faults).sequence(&seq).detection_times(),
            oracle.query(&faults).sequence(&seq).detection_times()
        );
        assert_eq!(
            fast.query(&faults).sequence(&seq).observable_lines(),
            oracle.query(&faults).sequence(&seq).observable_lines()
        );
        assert_eq!(
            fast.query(&faults).sequence(&seq).any(),
            oracle.query(&faults).sequence(&seq).any()
        );
    }

    #[test]
    fn thread_counts_agree_on_multi_batch_circuit() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(48);
        let serial = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let threaded = FaultSim::with_options(&c, SimOptions::with_threads(4));
        assert_eq!(
            serial.query(&faults).sequence(&seq).detection_times(),
            threaded.query(&faults).sequence(&seq).detection_times()
        );
        assert_eq!(
            serial.query(&faults).sequence(&seq).observable_lines(),
            threaded.query(&faults).sequence(&seq).observable_lines()
        );
        assert_eq!(
            serial.query(&faults).sequence(&seq).any(),
            threaded.query(&faults).sequence(&seq).any()
        );
        let mut st_a = serial.begin(&faults);
        let mut st_b = threaded.begin(&faults);
        for cut in [5usize, 17, 48] {
            let part = seq.slice(cut.saturating_sub(12)..cut);
            assert_eq!(
                serial.advance(&mut st_a, &part),
                threaded.advance(&mut st_b, &part)
            );
            assert_eq!(st_a.detected(), st_b.detected());
        }
    }

    #[test]
    fn sample_detects_agrees_across_thread_counts() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(32);
        let serial = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let threaded = FaultSim::with_options(&c, SimOptions::with_threads(4));
        let st = serial.begin(&faults);
        // Samples across different batches, including none.
        for sample in [
            vec![],
            vec![0],
            vec![1, 64, 127],
            (0..faults.len()).collect(),
        ] {
            assert_eq!(
                serial.sample_detects(&st, &sample, &seq),
                threaded.sample_detects(&st, &sample, &seq),
                "sample {sample:?}"
            );
        }
    }

    #[test]
    fn scratch_is_reset_between_batches() {
        // Two single-batch runs through the same simulator must not
        // observe each other's planes: simulate a detecting sequence,
        // then an all-zero sequence, and require identical results to a
        // fresh simulator (this failed before per-batch resets when a
        // net was not rewritten by the stepping loop).
        let (c, faults) = multi_batch();
        let sim = FaultSim::new(&c);
        let hot = walk_sequence(16);
        let cold = TestSequence::from_rows(vec![vec![false; 3]; 4]).unwrap();
        let _ = sim.query(&faults).sequence(&hot).detection_times();
        let after = sim.query(&faults).sequence(&cold).detection_times();
        let fresh = FaultSim::new(&c)
            .query(&faults)
            .sequence(&cold)
            .detection_times();
        assert_eq!(after, fresh);
    }

    #[test]
    fn tiny_fault_cycle_budget_stops_with_consistent_prefix() {
        use crate::runctl::{Budget, CancelToken, TruncationReason};
        let (c, faults) = multi_batch();
        let seq = walk_sequence(48);
        let full = FaultSim::with_options(&c, SimOptions::with_threads(1))
            .query(&faults)
            .sequence(&seq)
            .detected();
        let token = CancelToken::for_budget(&Budget::unlimited().fault_cycles(200));
        let sim = FaultSim::with_options(&c, SimOptions::with_threads(1)).cancel(token.clone());
        let partial = sim.query(&faults).sequence(&seq).detected();
        assert_eq!(token.cancelled(), Some(TruncationReason::FaultCycles));
        // The truncated query is a valid prefix: everything it reports
        // detected is detected by the full run too.
        for (i, (&p, &f)) in partial.iter().zip(&full).enumerate() {
            assert!(!p || f, "fault {i} detected only under the budget");
        }
        assert!(
            partial.iter().filter(|&&d| d).count() < full.iter().filter(|&&d| d).count(),
            "a 200-fault-cycle budget must truncate this run"
        );
        // Each batch stops within one cycle of the trip: the overshoot
        // is bounded by one 63-fault cycle per batch.
        let batches = faults.len().div_ceil(63) as u64;
        assert!(token.fault_cycles_spent() <= 200 + batches * 63);
        // Single-threaded truncation is deterministic.
        let again = FaultSim::with_options(&c, SimOptions::with_threads(1))
            .cancel(CancelToken::for_budget(
                &Budget::unlimited().fault_cycles(200),
            ))
            .query(&faults)
            .sequence(&seq)
            .detected();
        assert_eq!(partial, again);
    }

    #[test]
    fn kernels_agree_on_incremental_ff_planes() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(36);
        let fast = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let oracle = FaultSim::with_options(&c, SimOptions::with_threads(1).reference_kernel(true));
        let mut st_a = fast.begin(&faults);
        let mut st_b = oracle.begin(&faults);
        for cut in [12usize, 24, 36] {
            let part = seq.slice(cut - 12..cut);
            assert_eq!(
                fast.advance(&mut st_a, &part),
                oracle.advance(&mut st_b, &part)
            );
            assert_eq!(st_a.detected(), st_b.detected());
            // Flip-flop planes must agree on every live machine bit and
            // on the fault-free machine (bit 0); dropped bits may
            // diverge — the compiled kernel stops maintaining them.
            for ((mask_a, ff_a), (mask_b, ff_b)) in st_a
                .debug_ff_planes()
                .into_iter()
                .zip(st_b.debug_ff_planes())
            {
                assert_eq!(mask_a, mask_b);
                for (k, (&(o_a, z_a), &(o_b, z_b))) in ff_a.iter().zip(&ff_b).enumerate() {
                    for limb in 0..4 {
                        let m = mask_a[limb];
                        assert_eq!(o_a[limb] & m, o_b[limb] & m, "dff {k} ones limb {limb}");
                        assert_eq!(z_a[limb] & m, z_b[limb] & m, "dff {k} zeros limb {limb}");
                    }
                }
            }
        }
    }

    /// The non-default word widths compiled into this build.
    fn wide_widths() -> Vec<WordWidth> {
        #[allow(unused_mut)]
        let mut widths = vec![WordWidth::W128];
        #[cfg(feature = "w256")]
        widths.push(WordWidth::W256);
        widths
    }

    /// Every query observable is width-invariant: detection times, the
    /// observable-line sets and the screen verdict agree between 64-bit
    /// planes and every wider lane, at one and several threads.
    #[test]
    fn word_widths_agree_on_multi_batch_circuit() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(48);
        let base = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let expect_times = base.query(&faults).sequence(&seq).detection_times();
        let expect_lines = base.query(&faults).sequence(&seq).observable_lines();
        let expect_any = base.query(&faults).sequence(&seq).any();
        for width in wide_widths() {
            for threads in [1usize, 4] {
                let sim =
                    FaultSim::with_options(&c, SimOptions::with_threads(threads).word_width(width));
                assert_eq!(
                    sim.query(&faults).sequence(&seq).detection_times(),
                    expect_times,
                    "width {width:?} threads {threads}"
                );
                assert_eq!(
                    sim.query(&faults).sequence(&seq).observable_lines(),
                    expect_lines,
                    "width {width:?} threads {threads}"
                );
                assert_eq!(
                    sim.query(&faults).sequence(&seq).any(),
                    expect_any,
                    "width {width:?} threads {threads}"
                );
            }
        }
    }

    /// Incremental simulation at a wide word matches the 64-bit run
    /// machine by machine: detected flags after every segment, and the
    /// per-fault flip-flop state of every live fault — even though the
    /// batch partitioning differs (63 vs. 127+ faults per batch).
    #[test]
    fn incremental_state_matches_across_word_widths() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(36);
        let narrow = FaultSim::with_options(&c, SimOptions::with_threads(1));
        for width in wide_widths() {
            let wide = FaultSim::with_options(&c, SimOptions::with_threads(1).word_width(width));
            let mut st_n = narrow.begin(&faults);
            let mut st_w = wide.begin(&faults);
            for cut in [12usize, 24, 36] {
                let part = seq.slice(cut - 12..cut);
                assert_eq!(
                    narrow.advance(&mut st_n, &part),
                    wide.advance(&mut st_w, &part),
                    "width {width:?} cut {cut}"
                );
                assert_eq!(st_n.detected(), st_w.detected());
                for gi in 0..faults.len() {
                    assert_eq!(
                        st_n.debug_fault_ff(gi),
                        st_w.debug_fault_ff(gi),
                        "fault {gi} width {width:?} cut {cut}"
                    );
                }
            }
            // A wide state handed to the narrow simulator still
            // advances correctly: states are width-portable.
            let mut st_x = wide.begin(&faults);
            narrow.advance(&mut st_x, &seq);
            let mut st_full = narrow.begin(&faults);
            narrow.advance(&mut st_full, &seq);
            assert_eq!(st_x.detected(), st_full.detected());
        }
    }

    /// Runs one prepared dense query against a fresh simulator with its
    /// own telemetry, returning the outcome and the deterministic
    /// counters that single query produced.
    fn prepared_query(
        c: &Circuit,
        cache: &crate::prefix::PrefixTraceCache,
        faults: &FaultList,
        seq: &TestSequence,
        threads: usize,
    ) -> (super::PreparedOutcome, Vec<(String, u64)>) {
        let tel = Telemetry::enabled();
        let sim =
            FaultSim::with_options(c, SimOptions::with_threads(threads)).telemetry(tel.clone());
        let prep = sim.prepare_sequence(Some(cache), seq);
        let out = sim.query(faults).prepared(&prep).cache(cache).outcome();
        (out, tel.counters())
    }

    #[test]
    fn prepared_queries_match_from_scratch_with_identical_counters() {
        let (c, faults) = multi_batch();
        let base_seq = walk_sequence(40);
        // A probe diverging from the base at cycle 20.
        let mut rows: Vec<Vec<bool>> = (0..40)
            .map(|u| vec![u % 2 == 0, u % 3 == 0, u % 5 != 0])
            .collect();
        for row in rows.iter_mut().skip(20) {
            row[2] = !row[2];
        }
        let probe = TestSequence::from_rows(rows).unwrap();

        // From-scratch expectations, each from its own telemetry handle.
        let scratch_tel = Telemetry::enabled();
        let scratch =
            FaultSim::with_options(&c, SimOptions::with_threads(1)).telemetry(scratch_tel.clone());
        let expect_base = scratch
            .query(&faults)
            .sequence(&base_seq)
            .detected_indices();
        let base_counters = scratch_tel.counters();
        let scratch_tel2 = Telemetry::enabled();
        let scratch2 =
            FaultSim::with_options(&c, SimOptions::with_threads(1)).telemetry(scratch_tel2.clone());
        let expect_probe = scratch2.query(&faults).sequence(&probe).detected_indices();
        let probe_counters = scratch_tel2.counters();

        // Cold query populates the cache; its counters match from-scratch.
        let mut cache = crate::prefix::PrefixTraceCache::new();
        let (out, counters) = prepared_query(&c, &cache, &faults, &base_seq, 1);
        assert_eq!(out.detected, expect_base);
        assert_eq!(out.resumed_cycles, 0, "cold cache cannot resume");
        assert_eq!(counters, base_counters);
        cache.install(out.install);

        // Warm query resumes from the divergence cycle — identical
        // detections and identical deterministic counters, fewer
        // actually-simulated cycles.
        for threads in [1usize, 4] {
            let (out, counters) = prepared_query(&c, &cache, &faults, &probe, threads);
            assert_eq!(out.detected, expect_probe, "threads={threads}");
            assert!(out.resumed_cycles > 0, "shared prefix must resume");
            assert_eq!(counters, probe_counters, "threads={threads}");
        }

        // An exact duplicate of the cached sequence replays only the
        // suffix past its terminal snapshot (if any); results and
        // counters still match from-scratch exactly.
        let (out, counters) = prepared_query(&c, &cache, &faults, &base_seq, 1);
        assert_eq!(out.detected, expect_base);
        assert!(out.resumed_cycles > 0, "duplicate must resume");
        assert_eq!(counters, base_counters);
    }

    /// Faulty-plane snapshots resume at wide widths too, and artifacts
    /// cached at one width miss safely (no resume, correct results) when
    /// the querying simulator runs at another.
    #[test]
    fn prepared_resume_respects_word_width() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(40);
        let expect = FaultSim::with_options(&c, SimOptions::with_threads(1))
            .query(&faults)
            .sequence(&seq)
            .detected_indices();
        let wide_opts = SimOptions::with_threads(1).word_width(WordWidth::W128);
        let wide = FaultSim::with_options(&c, wide_opts);
        let mut cache = crate::prefix::PrefixTraceCache::new();
        let prep = wide.prepare_sequence(Some(&cache), &seq);
        let out = wide.query(&faults).prepared(&prep).cache(&cache).outcome();
        assert_eq!(out.detected, expect);
        assert_eq!(out.resumed_cycles, 0, "cold cache cannot resume");
        cache.install(out.install);
        // Same width: the duplicate resumes from its own snapshots.
        let prep = wide.prepare_sequence(Some(&cache), &seq);
        let out = wide.query(&faults).prepared(&prep).cache(&cache).outcome();
        assert_eq!(out.detected, expect);
        assert!(out.resumed_cycles > 0, "same-width artifacts must resume");
        // Other width: the artifact downcast misses, the trace still
        // prefix-matches, and the results are unchanged.
        let narrow = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let prep = narrow.prepare_sequence(Some(&cache), &seq);
        assert!(prep.reused_cycles() > 0, "trace reuse is width-agnostic");
        let out = narrow
            .query(&faults)
            .prepared(&prep)
            .cache(&cache)
            .outcome();
        assert_eq!(out.detected, expect);
        assert_eq!(
            out.resumed_cycles, 0,
            "cross-width artifacts must miss, not corrupt"
        );
    }

    #[test]
    fn prepared_screen_matches_detects_any() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(24);
        let sim = FaultSim::with_options(&c, SimOptions::with_threads(1));
        let cache = crate::prefix::PrefixTraceCache::new();
        let prep = sim.prepare_sequence(Some(&cache), &seq);
        assert_eq!(prep.reused_cycles(), 0);
        assert_eq!(
            sim.query(&faults).prepared(&prep).any(),
            sim.query(&faults).sequence(&seq).any()
        );
    }

    #[test]
    fn reference_kernel_ignores_the_cache() {
        let (c, faults) = multi_batch();
        let seq = walk_sequence(24);
        let oracle = FaultSim::with_options(&c, SimOptions::with_threads(1).reference_kernel(true));
        let mut cache = crate::prefix::PrefixTraceCache::new();
        let prep = oracle.prepare_sequence(Some(&cache), &seq);
        let out = oracle
            .query(&faults)
            .prepared(&prep)
            .cache(&cache)
            .outcome();
        assert_eq!(
            out.detected,
            oracle.query(&faults).sequence(&seq).detected_indices()
        );
        assert_eq!(out.resumed_cycles, 0);
        cache.install(out.install);
        // Even with the (trace-only) entry installed, the oracle must
        // keep simulating from scratch.
        let prep = oracle.prepare_sequence(Some(&cache), &seq);
        assert_eq!(prep.reused_cycles(), 0, "oracle never reuses traces");
        let out = oracle
            .query(&faults)
            .prepared(&prep)
            .cache(&cache)
            .outcome();
        assert_eq!(out.resumed_cycles, 0);
    }
}
