//! Parallel sequential stuck-at fault simulation.
//!
//! The simulator packs the fault-free machine (bit 0) and up to 63 faulty
//! machines (bits 1–63) into each 64-bit word. A three-valued signal is
//! held as two bit-planes `(ones, zeros)` per net: bit `b` of `ones` set
//! means machine `b` sees logic 1, bit `b` of `zeros` means logic 0, and
//! neither means `X`. Gate evaluation is plain boolean algebra on the
//! planes, so all machines advance in lock-step through the levelized
//! combinational core, cycle by cycle, each with its own flip-flop state.
//!
//! Faults are injected by forcing plane bits: a stem fault forces the net's
//! planes after its driver is evaluated; a gate-pin fault forces the value
//! seen by a single gate input; a DFF-data fault forces the value loaded
//! into one flip-flop.

use crate::error::SimError;
use crate::sequence::TestSequence;
use std::collections::HashMap;
use wbist_netlist::{Circuit, Driver, Fault, FaultList, FaultSite, GateKind, NetId};

/// Two bit-planes encoding one net's value in 64 machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Planes {
    ones: u64,
    zeros: u64,
}

impl Planes {
    const ALL_ONE: Planes = Planes {
        ones: !0,
        zeros: 0,
    };
    const ALL_ZERO: Planes = Planes {
        ones: 0,
        zeros: !0,
    };
    const ALL_X: Planes = Planes { ones: 0, zeros: 0 };

    #[inline]
    fn broadcast(v: bool) -> Planes {
        if v {
            Planes::ALL_ONE
        } else {
            Planes::ALL_ZERO
        }
    }

    #[inline]
    fn and(self, rhs: Planes) -> Planes {
        Planes {
            ones: self.ones & rhs.ones,
            zeros: self.zeros | rhs.zeros,
        }
    }

    #[inline]
    fn or(self, rhs: Planes) -> Planes {
        Planes {
            ones: self.ones | rhs.ones,
            zeros: self.zeros & rhs.zeros,
        }
    }

    #[inline]
    fn xor(self, rhs: Planes) -> Planes {
        Planes {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }

    #[inline]
    fn not(self) -> Planes {
        Planes {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Forces bits: machines in `f1` to 1, machines in `f0` to 0.
    #[inline]
    fn inject(self, f1: u64, f0: u64) -> Planes {
        Planes {
            ones: (self.ones & !f0) | f1,
            zeros: (self.zeros & !f1) | f0,
        }
    }

    /// Machines whose value is binary and differs from the fault-free
    /// machine (bit 0). Returns 0 when the fault-free value is `X`.
    #[inline]
    fn diff_from_good(self) -> u64 {
        if self.ones & 1 != 0 {
            self.zeros & !1
        } else if self.zeros & 1 != 0 {
            self.ones & !1
        } else {
            0
        }
    }
}

/// One batch of up to 63 faults sharing a simulation word.
#[derive(Debug, Clone)]
struct Batch {
    /// Global fault indices; fault `k` of the batch occupies bit `k + 1`.
    fault_indices: Vec<usize>,
    /// Stem injections: net index → (force-1 mask, force-0 mask).
    stems: HashMap<u32, (u64, u64)>,
    /// Gate-pin injections: (gate index, pin) → masks.
    pins: HashMap<(u32, u32), (u64, u64)>,
    /// DFF-data injections: dff index → masks.
    dffs: HashMap<u32, (u64, u64)>,
    /// Which gates have at least one pin injection (fast skip).
    gate_has_pin_inj: Vec<bool>,
    /// Mask of bits that carry live (not yet detected) faults.
    live: u64,
}

impl Batch {
    fn build(circuit: &Circuit, faults: &[(usize, Fault)]) -> Batch {
        debug_assert!(faults.len() <= 63);
        let mut b = Batch {
            fault_indices: faults.iter().map(|&(i, _)| i).collect(),
            stems: HashMap::new(),
            pins: HashMap::new(),
            dffs: HashMap::new(),
            gate_has_pin_inj: vec![false; circuit.num_gates()],
            live: 0,
        };
        for (k, &(_, f)) in faults.iter().enumerate() {
            let bit = 1u64 << (k + 1);
            b.live |= bit;
            let (f1, f0) = if f.stuck { (bit, 0) } else { (0, bit) };
            match f.site {
                FaultSite::Stem(net) => {
                    let e = b.stems.entry(net.index() as u32).or_insert((0, 0));
                    e.0 |= f1;
                    e.1 |= f0;
                }
                FaultSite::GatePin { gate, pin } => {
                    let e = b
                        .pins
                        .entry((gate.index() as u32, pin as u32))
                        .or_insert((0, 0));
                    e.0 |= f1;
                    e.1 |= f0;
                    b.gate_has_pin_inj[gate.index()] = true;
                }
                FaultSite::DffData(k) => {
                    let e = b.dffs.entry(k as u32).or_insert((0, 0));
                    e.0 |= f1;
                    e.1 |= f0;
                }
            }
        }
        b
    }

    /// Bit position (1–63) of a global fault index within this batch.
    fn bit_of(&self, global: usize) -> Option<u64> {
        self.fault_indices
            .iter()
            .position(|&g| g == global)
            .map(|k| 1u64 << (k + 1))
    }
}

/// Per-batch flip-flop state, retained between [`FaultSim::advance`] calls.
///
/// Create with [`FaultSim::begin`]; all machines start in the all-`X`
/// state. The state is tied to the fault list it was created from.
#[derive(Debug, Clone)]
pub struct FaultSimState {
    batches: Vec<Batch>,
    /// Flip-flop planes per batch.
    ff: Vec<Vec<Planes>>,
    /// Detected flags, indexed like the originating fault list.
    detected: Vec<bool>,
    /// Time units consumed so far (for absolute detection times).
    elapsed: usize,
}

impl FaultSimState {
    /// Detected flags, indexed like the fault list passed to
    /// [`FaultSim::begin`].
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Number of detected faults so far.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Time units simulated so far.
    pub fn elapsed(&self) -> usize {
        self.elapsed
    }
}

/// Parallel-fault sequential stuck-at fault simulator.
///
/// See the [module documentation](self) for the machine model and
/// detection semantics.
#[derive(Debug, Clone)]
pub struct FaultSim<'c> {
    circuit: &'c Circuit,
}

impl<'c> FaultSim<'c> {
    /// Creates a fault simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        FaultSim { circuit }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    fn check_width(&self, seq: &TestSequence) {
        assert_eq!(
            seq.num_inputs(),
            self.circuit.num_inputs(),
            "{}",
            SimError::InputWidthMismatch {
                circuit: self.circuit.num_inputs(),
                sequence: seq.num_inputs(),
            }
        );
    }

    fn make_batches(&self, faults: &FaultList) -> Vec<Batch> {
        let indexed: Vec<(usize, Fault)> = faults.iter().copied().enumerate().collect();
        indexed
            .chunks(63)
            .map(|chunk| Batch::build(self.circuit, chunk))
            .collect()
    }

    /// Starts an incremental simulation of `faults` from the all-`X` state.
    pub fn begin(&self, faults: &FaultList) -> FaultSimState {
        let batches = self.make_batches(faults);
        let ff = batches
            .iter()
            .map(|_| vec![Planes::ALL_X; self.circuit.num_dffs()])
            .collect();
        FaultSimState {
            batches,
            ff,
            detected: vec![false; faults.len()],
            elapsed: 0,
        }
    }

    /// Applies `seq` on top of `state`, updating flip-flop planes and the
    /// detected flags. Returns the number of newly detected faults.
    ///
    /// Batches whose faults are all detected are skipped entirely (fault
    /// dropping).
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn advance(&self, state: &mut FaultSimState, seq: &TestSequence) -> usize {
        self.check_width(seq);
        let mut newly = 0;
        let mut nets = vec![Planes::ALL_X; self.circuit.num_nets()];
        for (bi, batch) in state.batches.iter_mut().enumerate() {
            if batch.live == 0 {
                continue;
            }
            let ff = &mut state.ff[bi];
            for u in 0..seq.len() {
                let mut detected_now = 0u64;
                step_batch(self.circuit, batch, seq.row(u), ff, &mut nets);
                for o in self.circuit.observed_nets() {
                    detected_now |= nets[o.index()].diff_from_good();
                }
                detected_now &= batch.live;
                if detected_now != 0 {
                    for (k, &gi) in batch.fault_indices.iter().enumerate() {
                        if detected_now & (1u64 << (k + 1)) != 0 && !state.detected[gi] {
                            state.detected[gi] = true;
                            newly += 1;
                        }
                    }
                    batch.live &= !detected_now;
                    if batch.live == 0 {
                        break;
                    }
                }
            }
        }
        state.elapsed += seq.len();
        newly
    }

    /// Simulates `seq` from the all-`X` state and returns, for every fault,
    /// the first time unit at which it is detected (the paper's
    /// `u_det(f)`), or `None` if the sequence does not detect it.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn detection_times(&self, faults: &FaultList, seq: &TestSequence) -> Vec<Option<usize>> {
        self.check_width(seq);
        let mut times = vec![None; faults.len()];
        let mut batches = self.make_batches(faults);
        let mut nets = vec![Planes::ALL_X; self.circuit.num_nets()];
        for batch in &mut batches {
            let mut ff = vec![Planes::ALL_X; self.circuit.num_dffs()];
            for u in 0..seq.len() {
                if batch.live == 0 {
                    break;
                }
                step_batch(self.circuit, batch, seq.row(u), &mut ff, &mut nets);
                let mut detected_now = 0u64;
                for o in self.circuit.observed_nets() {
                    detected_now |= nets[o.index()].diff_from_good();
                }
                detected_now &= batch.live;
                if detected_now != 0 {
                    for (k, &gi) in batch.fault_indices.iter().enumerate() {
                        if detected_now & (1u64 << (k + 1)) != 0 {
                            times[gi] = Some(u);
                        }
                    }
                    batch.live &= !detected_now;
                }
            }
        }
        times
    }

    /// Simulates `seq` and returns a detected flag per fault.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn detected(&self, faults: &FaultList, seq: &TestSequence) -> Vec<bool> {
        self.detection_times(faults, seq)
            .into_iter()
            .map(|t| t.is_some())
            .collect()
    }

    /// Counts the faults of `faults` detected by `seq`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn count_detected(&self, faults: &FaultList, seq: &TestSequence) -> usize {
        self.detected(faults, seq).iter().filter(|&&d| d).count()
    }

    /// Returns `true` as soon as `seq` detects any fault of `faults`
    /// (early exit). Used for the paper's sample-first speedup.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn detects_any(&self, faults: &FaultList, seq: &TestSequence) -> bool {
        self.check_width(seq);
        let mut batches = self.make_batches(faults);
        let mut nets = vec![Planes::ALL_X; self.circuit.num_nets()];
        for batch in &mut batches {
            let mut ff = vec![Planes::ALL_X; self.circuit.num_dffs()];
            for u in 0..seq.len() {
                step_batch(self.circuit, batch, seq.row(u), &mut ff, &mut nets);
                for o in self.circuit.observed_nets() {
                    if nets[o.index()].diff_from_good() & batch.live != 0 {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// For every fault, the set of nets on which the faulty machine differs
    /// (binary vs. binary) from the fault-free machine at *some* time unit
    /// of `seq`. A fault would be detected by observing any of these lines —
    /// this computes the paper's observation-point candidate sets `OP(f)`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn observable_lines(&self, faults: &FaultList, seq: &TestSequence) -> Vec<Vec<NetId>> {
        self.check_width(seq);
        let batches = self.make_batches(faults);
        let mut result = vec![Vec::new(); faults.len()];
        let mut nets = vec![Planes::ALL_X; self.circuit.num_nets()];
        for batch in &batches {
            let mut ff = vec![Planes::ALL_X; self.circuit.num_dffs()];
            // Accumulated difference mask per net.
            let mut acc = vec![0u64; self.circuit.num_nets()];
            for u in 0..seq.len() {
                step_batch(self.circuit, batch, seq.row(u), &mut ff, &mut nets);
                for (n, planes) in nets.iter().enumerate() {
                    acc[n] |= planes.diff_from_good();
                }
            }
            for (k, &gi) in batch.fault_indices.iter().enumerate() {
                let bit = 1u64 << (k + 1);
                for (n, &mask) in acc.iter().enumerate() {
                    if mask & bit != 0 {
                        result[gi].push(NetId::from_index(n));
                    }
                }
            }
        }
        result
    }

    /// Resumes `state` but only checks whether any *specific* fault listed
    /// in `sample` (by its index in the originating fault list) is
    /// detected by `seq`; flip-flop planes are cloned so `state` is not
    /// modified. Used for the paper's sample-first simulation shortcut.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn sample_detects(
        &self,
        state: &FaultSimState,
        sample: &[usize],
        seq: &TestSequence,
    ) -> bool {
        self.check_width(seq);
        let mut nets = vec![Planes::ALL_X; self.circuit.num_nets()];
        for (bi, batch) in state.batches.iter().enumerate() {
            let mut wanted = 0u64;
            for &gi in sample {
                if let Some(bit) = batch.bit_of(gi) {
                    wanted |= bit;
                }
            }
            wanted &= batch.live;
            if wanted == 0 {
                continue;
            }
            let mut ff = state.ff[bi].clone();
            for u in 0..seq.len() {
                step_batch(self.circuit, batch, seq.row(u), &mut ff, &mut nets);
                for o in self.circuit.observed_nets() {
                    if nets[o.index()].diff_from_good() & wanted != 0 {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Evaluates one clock cycle for one batch.
fn step_batch(
    c: &Circuit,
    batch: &Batch,
    row: &[bool],
    ff: &mut [Planes],
    nets: &mut [Planes],
) {
    // Sources.
    for (pi_idx, &net) in c.inputs().iter().enumerate() {
        nets[net.index()] = Planes::broadcast(row[pi_idx]);
    }
    for (k, dff) in c.dffs().iter().enumerate() {
        nets[dff.q.index()] = ff[k];
    }
    for idx in 0..c.num_nets() {
        if let Driver::Const(v) = c.driver(NetId::from_index(idx)) {
            nets[idx] = Planes::broadcast(v);
        }
    }
    // Stem injections on sources (gate-output stems are injected right
    // after their gate is evaluated below).
    for (&n, &(f1, f0)) in &batch.stems {
        let n = n as usize;
        if !matches!(c.driver(NetId::from_index(n)), Driver::Gate(_)) {
            nets[n] = nets[n].inject(f1, f0);
        }
    }
    // Combinational core.
    for &gid in c.topo_gates() {
        let g = c.gate(gid);
        let gi = gid.index();
        let has_pin_inj = batch.gate_has_pin_inj[gi];
        let fetch = |pin: usize| -> Planes {
            let v = nets[g.inputs[pin].index()];
            if has_pin_inj {
                if let Some(&(f1, f0)) = batch.pins.get(&(gi as u32, pin as u32)) {
                    return v.inject(f1, f0);
                }
            }
            v
        };
        let mut acc = fetch(0);
        match g.kind {
            GateKind::And | GateKind::Nand => {
                for pin in 1..g.inputs.len() {
                    acc = acc.and(fetch(pin));
                }
            }
            GateKind::Or | GateKind::Nor => {
                for pin in 1..g.inputs.len() {
                    acc = acc.or(fetch(pin));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for pin in 1..g.inputs.len() {
                    acc = acc.xor(fetch(pin));
                }
            }
            GateKind::Not | GateKind::Buf => {}
        }
        if g.kind.inverting() {
            acc = acc.not();
        }
        // Stem injection on the gate output.
        if let Some(&(f1, f0)) = batch.stems.get(&(g.output.index() as u32)) {
            acc = acc.inject(f1, f0);
        }
        nets[g.output.index()] = acc;
    }
    // Next state, with DFF-data injections.
    for (k, dff) in c.dffs().iter().enumerate() {
        let d = dff.d.expect("levelized circuits have connected DFFs");
        let mut v = nets[d.index()];
        if let Some(&(f1, f0)) = batch.dffs.get(&(k as u32)) {
            v = v.inject(f1, f0);
        }
        ff[k] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good::LogicSim;
    use crate::logic::Logic3;
    use wbist_netlist::bench_format;

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap()
    }

    /// Reference implementation: serial single-fault simulation using the
    /// good simulator on a mutated evaluation. Used to validate the
    /// parallel engine.
    fn serial_detect(c: &Circuit, fault: Fault, seq: &TestSequence) -> Option<usize> {
        // Simulate good and faulty machines side by side with scalar logic.
        let mut good_ff = vec![Logic3::X; c.num_dffs()];
        let mut bad_ff = vec![Logic3::X; c.num_dffs()];
        let mut good = vec![Logic3::X; c.num_nets()];
        let mut bad = vec![Logic3::X; c.num_nets()];
        for u in 0..seq.len() {
            scalar_step(c, seq.row(u), &mut good_ff, &mut good, None);
            scalar_step(c, seq.row(u), &mut bad_ff, &mut bad, Some(fault));
            for o in c.observed_nets() {
                if good[o.index()].conflicts(bad[o.index()]) {
                    return Some(u);
                }
            }
        }
        None
    }

    fn scalar_step(
        c: &Circuit,
        row: &[bool],
        ff: &mut [Logic3],
        nets: &mut [Logic3],
        fault: Option<Fault>,
    ) {
        let inject_stem = |net: NetId, v: Logic3| -> Logic3 {
            if let Some(f) = fault {
                if f.site == FaultSite::Stem(net) {
                    return f.stuck.into();
                }
            }
            v
        };
        for (pi, &net) in c.inputs().iter().enumerate() {
            nets[net.index()] = inject_stem(net, row[pi].into());
        }
        for (k, d) in c.dffs().iter().enumerate() {
            nets[d.q.index()] = inject_stem(d.q, ff[k]);
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let vals: Vec<Logic3> = g
                .inputs
                .iter()
                .enumerate()
                .map(|(pin, &i)| {
                    let mut v = nets[i.index()];
                    if let Some(f) = fault {
                        if f.site == (FaultSite::GatePin { gate: gid, pin }) {
                            v = f.stuck.into();
                        }
                    }
                    v
                })
                .collect();
            let out = crate::good::eval_gate(g.kind, vals.into_iter());
            nets[g.output.index()] = inject_stem(g.output, out);
        }
        for (k, d) in c.dffs().iter().enumerate() {
            let mut v = nets[d.d.unwrap().index()];
            if let Some(f) = fault {
                if f.site == FaultSite::DffData(k) {
                    v = f.stuck.into();
                }
            }
            ff[k] = v;
        }
    }

    #[test]
    fn parallel_matches_serial_on_toy() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).unwrap();
        let par = FaultSim::new(&c).detection_times(&faults, &seq);
        for (i, &f) in faults.faults().iter().enumerate() {
            let ser = serial_detect(&c, f, &seq);
            assert_eq!(par[i], ser, "fault {} disagrees", f.describe(&c));
        }
    }

    #[test]
    fn good_machine_consistency() {
        // The fault simulator's bit-0 machine must agree with LogicSim:
        // with an empty fault list nothing is ever detected.
        let c = toy();
        let seq = TestSequence::parse_rows(&["00", "10", "01"]).unwrap();
        let empty = FaultList::from_faults(vec![]);
        let sim = FaultSim::new(&c);
        assert_eq!(sim.count_detected(&empty, &seq), 0);
        // And a stuck fault on the PO stem is detected whenever the PO is
        // binary and differs.
        let y = c.net_by_name("y").unwrap();
        let fl = FaultList::from_faults(vec![Fault::sa0(FaultSite::Stem(y))]);
        let times = sim.detection_times(&fl, &seq);
        let outs = LogicSim::new(&c).outputs(&seq).unwrap();
        let expect = outs.iter().position(|o| o[0] == Logic3::One);
        assert_eq!(times[0], expect);
    }

    #[test]
    fn incremental_advance_equals_oneshot() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "10", "00"]).unwrap();
        let sim = FaultSim::new(&c);
        let oneshot = sim.detected(&faults, &seq);
        let mut st = sim.begin(&faults);
        sim.advance(&mut st, &seq.slice(0..3));
        sim.advance(&mut st, &seq.slice(3..6));
        assert_eq!(st.detected(), &oneshot[..]);
        assert_eq!(st.elapsed(), 6);
    }

    #[test]
    fn detects_any_early_exit_agrees() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10"]).unwrap();
        let sim = FaultSim::new(&c);
        let any = sim.count_detected(&faults, &seq) > 0;
        assert_eq!(sim.detects_any(&faults, &seq), any);
    }

    #[test]
    fn observable_lines_superset_of_detection() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let sim = FaultSim::new(&c);
        let det = sim.detected(&faults, &seq);
        let lines = sim.observable_lines(&faults, &seq);
        let y = c.net_by_name("y").unwrap();
        for (i, d) in det.iter().enumerate() {
            if *d {
                assert!(
                    lines[i].contains(&y),
                    "detected fault must differ on the PO"
                );
            }
        }
    }

    #[test]
    fn sample_detects_respects_state() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let sim = FaultSim::new(&c);
        let st = sim.begin(&faults);
        let sample: Vec<usize> = (0..faults.len()).collect();
        let any = sim.sample_detects(&st, &sample, &seq);
        assert_eq!(any, sim.detects_any(&faults, &seq));
        // State must be unmodified.
        assert_eq!(st.elapsed(), 0);
        assert_eq!(st.num_detected(), 0);
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn width_mismatch_panics() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["000"]).unwrap();
        FaultSim::new(&c).detected(&faults, &seq);
    }
}
