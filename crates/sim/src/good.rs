//! Fault-free (good-machine) three-valued simulation.

use crate::error::SimError;
use crate::logic::Logic3;
use crate::sequence::TestSequence;
use wbist_netlist::{Circuit, Driver, GateKind};

/// A recorded good-machine simulation: the three-valued value of every net
/// at every time unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    num_nets: usize,
    /// Time-major: value of net `n` at time `u` is `values[u * num_nets + n]`.
    values: Vec<Logic3>,
}

impl SimTrace {
    /// Number of simulated time units.
    pub fn len(&self) -> usize {
        self.values.len().checked_div(self.num_nets).unwrap_or(0)
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of a net at a time unit.
    ///
    /// # Panics
    ///
    /// Panics if `u` or the net index is out of range.
    pub fn value(&self, u: usize, net: wbist_netlist::NetId) -> Logic3 {
        self.values[u * self.num_nets + net.index()]
    }

    /// All net values at time `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn row(&self, u: usize) -> &[Logic3] {
        &self.values[u * self.num_nets..(u + 1) * self.num_nets]
    }
}

/// Good-machine simulator for a levelized circuit.
///
/// Simulation always starts from the all-`X` flip-flop state. The simulator
/// borrows the circuit; it holds no mutable state between calls.
#[derive(Debug, Clone)]
pub struct LogicSim<'c> {
    circuit: &'c Circuit,
}

impl<'c> LogicSim<'c> {
    /// Creates a simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        LogicSim { circuit }
    }

    /// Validates that `seq` matches the circuit's input count.
    fn check(&self, seq: &TestSequence) -> Result<(), SimError> {
        if seq.num_inputs() != self.circuit.num_inputs() {
            return Err(SimError::InputWidthMismatch {
                circuit: self.circuit.num_inputs(),
                sequence: seq.num_inputs(),
            });
        }
        Ok(())
    }

    /// Simulates `seq` and returns the primary output values per time unit
    /// (time-major, one `Vec` per time unit in PO order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if the sequence width does
    /// not match the circuit.
    pub fn outputs(&self, seq: &TestSequence) -> Result<Vec<Vec<Logic3>>, SimError> {
        self.check(seq)?;
        let c = self.circuit;
        let mut state = vec![Logic3::X; c.num_dffs()];
        let mut nets = vec![Logic3::X; c.num_nets()];
        let mut out = Vec::with_capacity(seq.len());
        for u in 0..seq.len() {
            step(c, seq.row(u), &mut state, &mut nets);
            out.push(c.outputs().iter().map(|&o| nets[o.index()]).collect());
        }
        Ok(out)
    }

    /// Simulates `seq` recording the value of every net at every time unit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if the sequence width does
    /// not match the circuit.
    pub fn trace(&self, seq: &TestSequence) -> Result<SimTrace, SimError> {
        self.check(seq)?;
        let c = self.circuit;
        let mut state = vec![Logic3::X; c.num_dffs()];
        let mut nets = vec![Logic3::X; c.num_nets()];
        let mut values = Vec::with_capacity(seq.len() * c.num_nets());
        for u in 0..seq.len() {
            step(c, seq.row(u), &mut state, &mut nets);
            values.extend_from_slice(&nets);
        }
        Ok(SimTrace {
            num_nets: c.num_nets(),
            values,
        })
    }

    /// The flip-flop state after simulating `seq` from the all-`X` state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] if the sequence width does
    /// not match the circuit.
    pub fn final_state(&self, seq: &TestSequence) -> Result<Vec<Logic3>, SimError> {
        self.check(seq)?;
        let c = self.circuit;
        let mut state = vec![Logic3::X; c.num_dffs()];
        let mut nets = vec![Logic3::X; c.num_nets()];
        for u in 0..seq.len() {
            step(c, seq.row(u), &mut state, &mut nets);
        }
        Ok(state)
    }
}

/// Evaluates one clock cycle: drives PIs with `row`, evaluates the
/// combinational core into `nets`, then advances `state` to the next
/// flip-flop state.
fn step(c: &Circuit, row: &[bool], state: &mut [Logic3], nets: &mut [Logic3]) {
    // Sources.
    for (pi_idx, &net) in c.inputs().iter().enumerate() {
        nets[net.index()] = row[pi_idx].into();
    }
    for (k, dff) in c.dffs().iter().enumerate() {
        nets[dff.q.index()] = state[k];
    }
    for (idx, net) in nets.iter_mut().enumerate() {
        if let Driver::Const(v) = c.driver(wbist_netlist::NetId::from_index(idx)) {
            *net = v.into();
        }
    }
    // Combinational core in topological order.
    for &gid in c.topo_gates() {
        let g = c.gate(gid);
        nets[g.output.index()] = eval_gate(g.kind, g.inputs.iter().map(|&i| nets[i.index()]));
    }
    // Next state.
    for (k, dff) in c.dffs().iter().enumerate() {
        let d = dff.d.expect("levelized circuits have connected DFFs");
        state[k] = nets[d.index()];
    }
}

/// Evaluates a gate function over three-valued inputs.
pub(crate) fn eval_gate(kind: GateKind, inputs: impl Iterator<Item = Logic3>) -> Logic3 {
    let mut it = inputs;
    let first = it.next().expect("gates have at least one input");
    let folded = match kind {
        GateKind::And | GateKind::Nand => it.fold(first, Logic3::and),
        GateKind::Or | GateKind::Nor => it.fold(first, Logic3::or),
        GateKind::Xor | GateKind::Xnor => it.fold(first, Logic3::xor),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverting() {
        folded.not()
    } else {
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbist_netlist::bench_format;

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap()
    }

    #[test]
    fn unknown_state_propagates_then_resolves() {
        let c = toy();
        let sim = LogicSim::new(&c);
        // a=0 forces g = NAND(0, X) = 1 regardless of the unknown state.
        let seq = TestSequence::parse_rows(&["00", "10"]).unwrap();
        let out = sim.outputs(&seq).unwrap();
        // u=0: g=1, y = 1 xor 0 = 1.
        assert_eq!(out[0], vec![Logic3::One]);
        // u=1: state q=1, g = NAND(1,1) = 0, y = 0 xor 0 = 0.
        assert_eq!(out[1], vec![Logic3::Zero]);
    }

    #[test]
    fn x_state_blocks_detection_value() {
        let c = toy();
        let sim = LogicSim::new(&c);
        // a=1 keeps g = NAND(1, X) = X on the first cycle.
        let seq = TestSequence::parse_rows(&["10"]).unwrap();
        let out = sim.outputs(&seq).unwrap();
        assert_eq!(out[0], vec![Logic3::X]);
    }

    #[test]
    fn trace_records_all_nets() {
        let c = toy();
        let sim = LogicSim::new(&c);
        let seq = TestSequence::parse_rows(&["00", "11"]).unwrap();
        let trace = sim.trace(&seq).unwrap();
        assert_eq!(trace.len(), 2);
        let g = c.net_by_name("g").unwrap();
        assert_eq!(trace.value(0, g), Logic3::One);
    }

    #[test]
    fn final_state_matches_trace() {
        let c = toy();
        let sim = LogicSim::new(&c);
        let seq = TestSequence::parse_rows(&["00", "11"]).unwrap();
        let st = sim.final_state(&seq).unwrap();
        let trace = sim.trace(&seq).unwrap();
        let g = c.net_by_name("g").unwrap();
        assert_eq!(st[0], trace.value(1, g));
    }

    #[test]
    fn width_mismatch_is_error() {
        let c = toy();
        let sim = LogicSim::new(&c);
        let seq = TestSequence::parse_rows(&["000"]).unwrap();
        assert!(matches!(
            sim.outputs(&seq),
            Err(SimError::InputWidthMismatch { .. })
        ));
    }
}
