//! Three-valued logic simulation and sequential fault simulation.
//!
//! This crate provides the simulation substrate for the `wbist` workspace:
//!
//! * [`Logic3`] — the three-valued logic domain `{0, 1, X}`;
//! * [`TestSequence`] — a fully specified binary input sequence applied to
//!   the primary inputs of a circuit, one vector per time unit;
//! * [`LogicSim`] — good-machine (fault-free) simulation from the all-`X`
//!   initial state, with optional full-trace recording;
//! * [`FaultSim`] — a parallel-fault sequential fault simulator that
//!   evaluates `W::BITS - 1` faulty machines plus the fault-free machine
//!   per plane word (63 at the default [`WordWidth::W64`], 127 at
//!   [`WordWidth::W128`]), using a two-bit-plane encoding of
//!   three-valued signals. It is generic over the fault model (single
//!   stuck-at and transition-delay faults); all one-shot questions go
//!   through the [`FaultSim::query`] builder.
//! * [`pool`] — the single work-stealing pool that every parallel
//!   fan-out in the workspace (sim batches, speculative candidate
//!   evaluation, session fault jobs) dispatches through.
//!
//! # Detection semantics
//!
//! All simulation starts from the unknown state (every flip-flop holds `X`).
//! A fault is *detected* at time unit `u` when some observed net (primary
//! output or observation point) carries a binary value in both the
//! fault-free and the faulty machine and the two values differ. A binary
//! value against an `X` never counts — the conservative, standard rule.
//!
//! # Example
//!
//! ```
//! use wbist_netlist::{bench_format, FaultList};
//! use wbist_sim::{FaultSim, TestSequence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = bench_format::parse(
//!     "toy",
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
//! )?;
//! let faults = FaultList::checkpoints(&c);
//! let seq = TestSequence::parse_rows(&["11", "01", "10", "00"])?;
//! let times = FaultSim::new(&c).query(&faults).sequence(&seq).detection_times();
//! assert_eq!(times.len(), faults.len());
//! # Ok(())
//! # }
//! ```

mod compiled;
pub mod error;
pub mod event;
pub mod fault;
pub mod good;
pub mod logic;
pub mod misr;
mod plane;
pub mod pool;
pub mod prefix;
pub mod reference;
pub mod run;
pub mod runctl;
pub mod sequence;
pub mod vcd;
mod word;

pub use error::SimError;
pub use event::EventSim;
pub use fault::{
    CompiledHandle, FaultSim, FaultSimState, PreparedOutcome, PreparedSequence, Query, SimOptions,
};
pub use good::{LogicSim, SimTrace};
pub use logic::Logic3;
pub use misr::Misr;
pub use prefix::{CacheInstall, PrefixTraceCache};
pub use reference::SerialFaultSim;
pub use run::RunOptions;
pub use runctl::{Budget, CancelToken, TruncationReason};
pub use sequence::TestSequence;
pub use wbist_telemetry::Telemetry;
pub use word::WordWidth;
