//! The three-valued logic domain `{0, 1, X}`.

use std::fmt;

/// A three-valued logic value: known 0, known 1, or unknown `X`.
///
/// `X` models the unknown power-up state of flip-flops and propagates
/// pessimistically through gates (e.g. `X AND 0 = 0`, `X AND 1 = X`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Logic3 {
    /// Known logic 0.
    Zero,
    /// Known logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic3 {
    /// Whether the value is binary (not `X`).
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, Logic3::X)
    }

    /// Converts to `bool` if binary.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic3::Zero => Some(false),
            Logic3::One => Some(true),
            Logic3::X => None,
        }
    }

    /// Three-valued AND.
    #[inline]
    pub fn and(self, rhs: Logic3) -> Logic3 {
        match (self, rhs) {
            (Logic3::Zero, _) | (_, Logic3::Zero) => Logic3::Zero,
            (Logic3::One, Logic3::One) => Logic3::One,
            _ => Logic3::X,
        }
    }

    /// Three-valued OR.
    #[inline]
    pub fn or(self, rhs: Logic3) -> Logic3 {
        match (self, rhs) {
            (Logic3::One, _) | (_, Logic3::One) => Logic3::One,
            (Logic3::Zero, Logic3::Zero) => Logic3::Zero,
            _ => Logic3::X,
        }
    }

    /// Three-valued XOR.
    #[inline]
    pub fn xor(self, rhs: Logic3) -> Logic3 {
        match (self, rhs) {
            (Logic3::X, _) | (_, Logic3::X) => Logic3::X,
            (a, b) if a == b => Logic3::Zero,
            _ => Logic3::One,
        }
    }

    /// Three-valued NOT.
    #[inline]
    #[allow(clippy::should_implement_trait)] // domain name; `!` is also provided
    pub fn not(self) -> Logic3 {
        match self {
            Logic3::Zero => Logic3::One,
            Logic3::One => Logic3::Zero,
            Logic3::X => Logic3::X,
        }
    }

    /// Whether `self` and `rhs` are binary and different — the detection
    /// condition between a fault-free and a faulty value.
    #[inline]
    pub fn conflicts(self, rhs: Logic3) -> bool {
        matches!(
            (self, rhs),
            (Logic3::Zero, Logic3::One) | (Logic3::One, Logic3::Zero)
        )
    }
}

impl std::ops::Not for Logic3 {
    type Output = Logic3;

    #[inline]
    fn not(self) -> Logic3 {
        Logic3::not(self)
    }
}

impl From<bool> for Logic3 {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            Logic3::One
        } else {
            Logic3::Zero
        }
    }
}

impl fmt::Display for Logic3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic3::Zero => "0",
            Logic3::One => "1",
            Logic3::X => "x",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::Logic3::{One, Zero, X};
    use super::*;

    const ALL: [Logic3; 3] = [Zero, One, X];

    #[test]
    fn and_truth_table() {
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.or(X), X);
    }

    #[test]
    fn xor_truth_table() {
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(Zero.xor(Zero), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.xor(X), X);
    }

    #[test]
    fn not_involution_on_known() {
        for v in ALL {
            assert_eq!(v.not().not(), v);
        }
    }

    #[test]
    fn demorgan_holds_in_three_valued_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn conflicts_only_between_distinct_binaries() {
        assert!(Zero.conflicts(One));
        assert!(One.conflicts(Zero));
        assert!(!One.conflicts(One));
        assert!(!One.conflicts(X));
        assert!(!X.conflicts(Zero));
        assert!(!X.conflicts(X));
    }

    #[test]
    fn operator_not_matches_method() {
        use super::Logic3;
        assert_eq!(!Logic3::One, Logic3::Zero);
        assert_eq!(!Logic3::X, Logic3::X);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Logic3::from(true), One);
        assert_eq!(Logic3::from(false), Zero);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{Zero}{One}{X}"), "01x");
    }
}
