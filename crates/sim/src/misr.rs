//! Multiple-input signature register (MISR) response compaction.
//!
//! A BIST architecture needs more than a pattern generator: the circuit's
//! responses must be compacted on-chip into a short signature that is
//! compared against a golden value at the end of the session. This module
//! models the standard type-2 (internal-XOR) MISR over three-valued
//! responses:
//!
//! * the register is reset to all-0 before the session;
//! * each cycle, every output bit is XORed into its stage together with
//!   the LFSR-style feedback;
//! * an `X` absorbed anywhere makes the affected stages unknown — the
//!   unknown spreads through the feedback exactly as it would in silicon,
//!   so the model exposes the classic X-poisoning problem (start
//!   capturing only after initialization, or the signature is useless).

use crate::logic::Logic3;

/// A three-valued multiple-input signature register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    stages: Vec<Logic3>,
    taps: Vec<bool>,
    absorbed: usize,
}

impl Misr {
    /// Creates a MISR with `width` stages and the given feedback taps
    /// (`taps[i]` = stage `i` feeds the polynomial XOR). Reset to all-0.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `taps.len() != width`.
    pub fn new(width: usize, taps: &[bool]) -> Self {
        assert!(width > 0, "MISR needs at least one stage");
        assert_eq!(taps.len(), width, "one tap flag per stage");
        Misr {
            stages: vec![Logic3::Zero; width],
            taps: taps.to_vec(),
            absorbed: 0,
        }
    }

    /// A MISR with a default primitive-ish polynomial: taps on the last
    /// stage and on stage 0 plus the middle stage (adequate spreading for
    /// aliasing experiments; choose explicit taps for production use).
    pub fn with_default_taps(width: usize) -> Self {
        let mut taps = vec![false; width];
        taps[width - 1] = true;
        taps[0] = true;
        if width > 2 {
            taps[width / 2] = true;
        }
        Misr::new(width, &taps)
    }

    /// Number of stages.
    pub fn width(&self) -> usize {
        self.stages.len()
    }

    /// Cycles absorbed since the last reset.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Resets the register to all-0.
    pub fn reset(&mut self) {
        self.stages.fill(Logic3::Zero);
        self.absorbed = 0;
    }

    /// Absorbs one response vector. Inputs beyond the register width wrap
    /// around (standard practice when the CUT has more outputs than the
    /// MISR has stages); missing inputs contribute 0.
    pub fn absorb(&mut self, response: &[Logic3]) {
        let w = self.stages.len();
        // Fold the response into per-stage injection values.
        let mut inject = vec![Logic3::Zero; w];
        for (i, &r) in response.iter().enumerate() {
            let k = i % w;
            inject[k] = inject[k].xor(r);
        }
        // Feedback: XOR of the tapped stages.
        let mut fb = Logic3::Zero;
        for (s, &t) in self.stages.iter().zip(&self.taps) {
            if t {
                fb = fb.xor(*s);
            }
        }
        // Shift: stage k takes stage k-1; stage 0 takes the feedback.
        let mut next = vec![Logic3::Zero; w];
        next[0] = fb.xor(inject[0]);
        for k in 1..w {
            next[k] = self.stages[k - 1].xor(inject[k]);
        }
        self.stages = next;
        self.absorbed += 1;
    }

    /// The current signature.
    pub fn signature(&self) -> &[Logic3] {
        &self.stages
    }

    /// Whether the signature contains no unknowns.
    pub fn is_known(&self) -> bool {
        self.stages.iter().all(|s| s.is_known())
    }

    /// Whether two signatures provably differ (some stage binary in both
    /// and different) — the conservative pass/fail rule.
    pub fn differs(&self, other: &Misr) -> bool {
        self.stages
            .iter()
            .zip(&other.stages)
            .any(|(a, b)| a.conflicts(*b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic3::{One, Zero, X};

    fn absorb_all(misr: &mut Misr, rows: &[Vec<Logic3>]) {
        for r in rows {
            misr.absorb(r);
        }
    }

    #[test]
    fn zero_stream_keeps_zero_signature() {
        let mut m = Misr::with_default_taps(8);
        absorb_all(&mut m, &vec![vec![Zero; 3]; 20]);
        assert!(m.signature().iter().all(|&s| s == Zero));
        assert_eq!(m.absorbed(), 20);
    }

    #[test]
    fn different_streams_give_different_signatures() {
        let mut a = Misr::with_default_taps(8);
        let mut b = Misr::with_default_taps(8);
        absorb_all(&mut a, &[vec![One, Zero], vec![Zero, Zero], vec![One, One]]);
        absorb_all(&mut b, &[vec![One, Zero], vec![Zero, One], vec![One, One]]);
        assert!(a.differs(&b));
    }

    #[test]
    fn single_bit_flip_changes_signature() {
        // With more absorbed cycles than stages, single-bit errors must
        // still flip the signature (no trivial cancellation).
        let base: Vec<Vec<Logic3>> = (0..32)
            .map(|u| vec![if u % 3 == 0 { One } else { Zero }; 2])
            .collect();
        let mut golden = Misr::with_default_taps(12);
        absorb_all(&mut golden, &base);
        for flip in 0..32 {
            let mut rows = base.clone();
            rows[flip][0] = rows[flip][0].not();
            let mut m = Misr::with_default_taps(12);
            absorb_all(&mut m, &rows);
            assert!(m.differs(&golden), "flip at {flip} aliased");
        }
    }

    #[test]
    fn x_poisons_signature() {
        let mut m = Misr::with_default_taps(4);
        m.absorb(&[X]);
        assert!(!m.is_known());
        // The unknown spreads but differs() stays conservative.
        let golden = Misr::with_default_taps(4);
        assert!(!m.differs(&golden));
    }

    #[test]
    fn reset_restores_zero() {
        let mut m = Misr::with_default_taps(4);
        m.absorb(&[One, One]);
        m.reset();
        assert_eq!(m.absorbed(), 0);
        assert!(m.signature().iter().all(|&s| s == Zero));
    }

    #[test]
    fn wraparound_inputs() {
        // 5 outputs into a 2-stage MISR: inputs fold by XOR.
        let mut m = Misr::with_default_taps(2);
        m.absorb(&[One, Zero, One, Zero, One]);
        // Stage 0 gets 1^1^1 = 1 (plus feedback 0), stage 1 gets 0^0 = 0
        // (plus old stage 0 = 0).
        assert_eq!(m.signature(), &[One, Zero]);
    }

    #[test]
    #[should_panic(expected = "stage")]
    fn zero_width_rejected() {
        let _ = Misr::new(0, &[]);
    }
}
