//! The two-bit-plane encoding of 64 three-valued machines.
//!
//! One [`Planes`] word pair holds the value of a single net in 64
//! machines at once: bit `b` of `ones` set means machine `b` sees logic
//! 1, bit `b` of `zeros` means logic 0, and neither means `X`. Machine 0
//! is by convention the fault-free machine; machines 1–63 carry faults.
//! Both the reference kernel and the compiled cone-restricted kernel
//! (see [`crate::compiled`]) operate on this representation, so moving a
//! batch between them is a no-op.

/// Two bit-planes encoding one net's value in 64 machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Planes {
    pub(crate) ones: u64,
    pub(crate) zeros: u64,
}

impl Planes {
    pub(crate) const ALL_ONE: Planes = Planes { ones: !0, zeros: 0 };
    pub(crate) const ALL_ZERO: Planes = Planes { ones: 0, zeros: !0 };
    pub(crate) const ALL_X: Planes = Planes { ones: 0, zeros: 0 };

    #[inline]
    pub(crate) fn broadcast(v: bool) -> Planes {
        if v {
            Planes::ALL_ONE
        } else {
            Planes::ALL_ZERO
        }
    }

    #[inline]
    pub(crate) fn and(self, rhs: Planes) -> Planes {
        Planes {
            ones: self.ones & rhs.ones,
            zeros: self.zeros | rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn or(self, rhs: Planes) -> Planes {
        Planes {
            ones: self.ones | rhs.ones,
            zeros: self.zeros & rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn xor(self, rhs: Planes) -> Planes {
        Planes {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }

    #[inline]
    pub(crate) fn not(self) -> Planes {
        Planes {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Forces bits: machines in `f1` to 1, machines in `f0` to 0.
    #[inline]
    pub(crate) fn inject(self, f1: u64, f0: u64) -> Planes {
        Planes {
            ones: (self.ones & !f0) | f1,
            zeros: (self.zeros & !f1) | f0,
        }
    }

    /// Machines whose value is binary and differs from the fault-free
    /// machine (bit 0). Returns 0 when the fault-free value is `X`.
    #[inline]
    pub(crate) fn diff_from_good(self) -> u64 {
        if self.ones & 1 != 0 {
            self.zeros & !1
        } else if self.zeros & 1 != 0 {
            self.ones & !1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_forces_bits() {
        let x = Planes::ALL_X.inject(0b10, 0b100);
        assert_eq!(x.ones, 0b10);
        assert_eq!(x.zeros, 0b100);
        let one = Planes::ALL_ONE.inject(0, 0b1000);
        assert_eq!(one.ones, !0b1000);
        assert_eq!(one.zeros, 0b1000);
    }

    #[test]
    fn diff_needs_binary_good_value() {
        // Good machine X: nothing can differ.
        assert_eq!(Planes::ALL_X.diff_from_good(), 0);
        // Good machine 1, machine 3 at 0.
        let p = Planes {
            ones: 0b1,
            zeros: 0b1000,
        };
        assert_eq!(p.diff_from_good(), 0b1000);
        // Good machine 0, machine 1 at 1.
        let p = Planes {
            ones: 0b10,
            zeros: 0b1,
        };
        assert_eq!(p.diff_from_good(), 0b10);
    }

    #[test]
    fn de_morgan_on_planes() {
        let a = Planes {
            ones: 0b0110,
            zeros: 0b1001,
        };
        let b = Planes {
            ones: 0b0011,
            zeros: 0b0100,
        };
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
        assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }
}
