//! The two-bit-plane encoding of `W::BITS` three-valued machines.
//!
//! One [`Planes`] word pair holds the value of a single net in
//! `W::BITS` machines at once: bit `b` of `ones` set means machine `b`
//! sees logic 1, bit `b` of `zeros` means logic 0, and neither means
//! `X`. Machine 0 is by convention the fault-free machine; machines
//! `1..W::BITS` carry faults. Both the reference kernel and the
//! compiled cone-restricted kernel (see [`crate::compiled`]) operate on
//! this representation at any lane width (see [`crate::word::Word`]),
//! so moving a batch between them is a no-op.

use crate::word::Word;

/// Two bit-planes encoding one net's value in `W::BITS` machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Planes<W> {
    pub(crate) ones: W,
    pub(crate) zeros: W,
}

impl<W: Word> Planes<W> {
    pub(crate) const ALL_ONE: Planes<W> = Planes {
        ones: W::ALL,
        zeros: W::ZERO,
    };
    pub(crate) const ALL_ZERO: Planes<W> = Planes {
        ones: W::ZERO,
        zeros: W::ALL,
    };
    pub(crate) const ALL_X: Planes<W> = Planes {
        ones: W::ZERO,
        zeros: W::ZERO,
    };

    #[inline]
    pub(crate) fn broadcast(v: bool) -> Planes<W> {
        if v {
            Planes::ALL_ONE
        } else {
            Planes::ALL_ZERO
        }
    }

    #[inline]
    pub(crate) fn and(self, rhs: Planes<W>) -> Planes<W> {
        Planes {
            ones: self.ones & rhs.ones,
            zeros: self.zeros | rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn or(self, rhs: Planes<W>) -> Planes<W> {
        Planes {
            ones: self.ones | rhs.ones,
            zeros: self.zeros & rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn xor(self, rhs: Planes<W>) -> Planes<W> {
        Planes {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }

    #[inline]
    pub(crate) fn not(self) -> Planes<W> {
        Planes {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Forces bits: machines in `f1` to 1, machines in `f0` to 0.
    #[inline]
    pub(crate) fn inject(self, f1: W, f0: W) -> Planes<W> {
        Planes {
            ones: (self.ones & !f0) | f1,
            zeros: (self.zeros & !f1) | f0,
        }
    }

    /// Machines whose value is binary and differs from the fault-free
    /// machine (bit 0). Returns 0 when the fault-free value is `X`.
    #[inline]
    pub(crate) fn diff_from_good(self) -> W {
        if self.ones & W::LSB != W::ZERO {
            self.zeros & !W::LSB
        } else if self.zeros & W::LSB != W::ZERO {
            self.ones & !W::LSB
        } else {
            W::ZERO
        }
    }

    /// Width-erased limb export for debugging surfaces.
    #[inline]
    pub(crate) fn limbs(self) -> ([u64; crate::word::LIMBS], [u64; crate::word::LIMBS]) {
        (self.ones.limbs(), self.zeros.limbs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_algebra<W: Word>() {
        // inject forces bits
        let x = Planes::<W>::ALL_X.inject(W::bit(1), W::bit(2));
        assert_eq!(x.ones, W::bit(1));
        assert_eq!(x.zeros, W::bit(2));
        let one = Planes::<W>::ALL_ONE.inject(W::ZERO, W::bit(3));
        assert_eq!(one.ones, !W::bit(3));
        assert_eq!(one.zeros, W::bit(3));

        // diff needs a binary good value
        assert_eq!(Planes::<W>::ALL_X.diff_from_good(), W::ZERO);
        // Good machine 1, machine 3 at 0.
        let p = Planes {
            ones: W::LSB,
            zeros: W::bit(3),
        };
        assert_eq!(p.diff_from_good(), W::bit(3));
        // Good machine 0, machine 1 at 1 — also on the highest lane.
        let hi = (W::BITS - 1) as usize;
        let p = Planes {
            ones: W::bit(1) | W::bit(hi),
            zeros: W::LSB,
        };
        assert_eq!(p.diff_from_good(), W::bit(1) | W::bit(hi));

        // De Morgan
        let a = Planes {
            ones: W::bit(1) | W::bit(2) | W::bit(hi),
            zeros: W::LSB | W::bit(3),
        };
        let b = Planes {
            ones: W::LSB | W::bit(1),
            zeros: W::bit(2) | W::bit(hi),
        };
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
        assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn plane_algebra_holds_at_every_width() {
        plane_algebra::<u64>();
        plane_algebra::<u128>();
        #[cfg(feature = "w256")]
        plane_algebra::<crate::word::W256>();
    }
}
