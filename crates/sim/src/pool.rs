//! The one worker pool shared by every parallel phase.
//!
//! Fault-simulation batches, speculative candidate evaluations and
//! session fault jobs all used to fan out through their own nested
//! `std::thread::scope` blocks, so a sim scatter running inside a
//! speculation wave could not hand idle threads to its siblings. This
//! module replaces all three fan-outs with a single process-wide set of
//! detached worker threads and a help-first participation protocol:
//!
//! * A fan-out ([`scatter`]) publishes *tickets* — invitations to run
//!   one participant closure — on a global [`Injector`] queue (the
//!   crossbeam-style MPMC queue vendored under `crates/vendor`).
//! * The **caller always participates**: it runs the participant
//!   closure inline and self-schedules tasks off a lock-free atomic
//!   cursor until none remain. A fan-out therefore completes even if
//!   every pool worker is busy elsewhere — which is what makes nesting
//!   (a session job scattering sim batches) deadlock-free by
//!   construction.
//! * Pool workers that pick a ticket up join the same cursor; whoever
//!   claims task *i* writes result slot *i*. Results are merged in item
//!   index order, so **which** thread ran a task is unobservable:
//!   detections, Ω, and every deterministic counter are bit-identical
//!   at any worker count. Scheduling only moves wall-clock time and
//!   effort-space figures (`pool.tasks` / `pool.steals`).
//!
//! Steady-state task dispatch is allocation-free: claiming a task is
//! one `fetch_add` plus one uncontended slot lock, and each participant
//! pre-sizes its result buffer once. Ticket publication allocates a
//! constant number of objects per fan-out (one job header, plus queue
//! growth until warm), independent of the task count — the
//! counting-allocator test pins this.
//!
//! # Safety
//!
//! Tickets reference the fan-out's stack frame (the participant closure
//! borrows items, slots and cursor). The job header is an `Arc` whose
//! shared state outlives the frame, and the frame is protected by a
//! cancel-and-drain guard that runs even on unwind: it purges the
//! fan-out's unclaimed tickets from the queue, marks the job cancelled
//! under the job lock (a worker holding a ticket checks that flag under
//! the same lock *before* first touching the closure), and then blocks
//! until every active participant has returned. After the guard fires,
//! no thread can reach the dead frame.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use injector::{Injector, Steal};

/// One fan-out's shared header. The erased participant closure takes
/// `is_worker: bool` — `true` on pool workers, `false` on the caller —
/// so callers can attribute stolen work in effort telemetry.
struct Job {
    /// The participant closure, lifetime-erased; only dereferenced by a
    /// participant registered in `state.active` before `cancelled` was
    /// set (see the module-level safety argument).
    f: &'static (dyn Fn(bool) + Sync),
    state: Mutex<JobState>,
    done: Condvar,
}

// SAFETY: `f`'s lifetime erasure is sound because `run_participants`
// cancels and drains the job before the referenced frame dies.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

#[derive(Default)]
struct JobState {
    /// Participants currently inside the closure.
    active: usize,
    /// Set once the fan-out caller is done: late tickets are void.
    cancelled: bool,
    /// A participant panicked; the caller re-raises.
    panicked: bool,
}

struct Pool {
    queue: Injector<Arc<Job>>,
    /// Number of live worker threads; doubles as the parking lock.
    workers: Mutex<usize>,
    wake: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Injector::new(),
        workers: Mutex::new(0),
        wake: Condvar::new(),
    })
}

/// Grows the pool to at least `want` workers. Workers are detached
/// daemon threads that live for the process; an idle worker parks on
/// the wake condvar and costs nothing.
fn ensure_workers(p: &'static Pool, want: usize) {
    let mut count = p.workers.lock().unwrap();
    while *count < want {
        std::thread::Builder::new()
            .name(format!("wbist-pool-{count}"))
            .spawn(move || worker_loop(p))
            .expect("spawn pool worker");
        *count += 1;
    }
}

fn worker_loop(p: &'static Pool) {
    loop {
        let job = loop {
            match p.queue.steal() {
                Steal::Success(job) => break job,
                Steal::Empty => {
                    let guard = p.workers.lock().unwrap();
                    if p.queue.is_empty() {
                        // Parking rechecks under the lock pushers notify
                        // under, so a push cannot slip between the check
                        // and the wait.
                        drop(p.wake.wait(guard).unwrap());
                    }
                }
            }
        };
        {
            let mut st = job.state.lock().unwrap();
            if st.cancelled {
                continue;
            }
            st.active += 1;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.f)(true)));
        let mut st = job.state.lock().unwrap();
        st.active -= 1;
        if outcome.is_err() {
            st.panicked = true;
        }
        if st.active == 0 {
            job.done.notify_all();
        }
    }
}

/// Cancel-and-drain guard: no thread may reference the fan-out's stack
/// frame once this has run, panic or not.
struct Drain<'a> {
    pool: &'static Pool,
    job: &'a Arc<Job>,
}

impl Drop for Drain<'_> {
    fn drop(&mut self) {
        self.pool.queue.retain(|t| !Arc::ptr_eq(t, self.job));
        let mut st = self.job.state.lock().unwrap();
        st.cancelled = true;
        while st.active > 0 {
            st = self.job.done.wait(st).unwrap();
        }
    }
}

/// Runs `f` once inline (as `f(false)`) and offers up to `extra`
/// concurrent invocations `f(true)` to the pool workers. Returns after
/// every started invocation has finished; invocations whose ticket no
/// worker picked up in time are simply forfeited. Re-raises if any
/// participant panicked.
fn run_participants(extra: usize, f: &(dyn Fn(bool) + Sync)) {
    if extra == 0 {
        f(false);
        return;
    }
    let p = pool();
    ensure_workers(p, extra);
    let job = Arc::new(Job {
        // SAFETY: the Drain guard below cancels and drains before this
        // frame (and therefore `f`'s borrows) can die, even on unwind.
        f: unsafe {
            std::mem::transmute::<&(dyn Fn(bool) + Sync), &'static (dyn Fn(bool) + Sync)>(f)
        },
        state: Mutex::new(JobState::default()),
        done: Condvar::new(),
    });
    for _ in 0..extra {
        p.queue.push(job.clone());
    }
    {
        let _g = p.workers.lock().unwrap();
        p.wake.notify_all();
    }
    {
        let drain = Drain { pool: p, job: &job };
        f(false);
        drop(drain);
    }
    if job.state.lock().unwrap().panicked {
        panic!("wbist pool participant panicked");
    }
}

/// Effort accounting for one fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterStats {
    /// Tasks dispatched (the item count).
    pub tasks: u64,
    /// Tasks that ran on pool workers rather than the calling thread.
    pub stolen: u64,
}

/// Maps `work` over `items` on up to `threads` threads (the caller plus
/// `threads - 1` pool workers), returning results in item order plus
/// steal accounting. Each participant lazily builds one `state` value
/// (per-worker scratch) and reuses it across every task it claims.
///
/// `threads <= 1` (or a single item) runs everything inline on the
/// caller with no queue traffic — byte-identical to a plain loop.
pub fn scatter<I, R, S>(
    threads: usize,
    items: Vec<I>,
    state: impl Fn() -> S + Sync,
    work: impl Fn(I, &mut S) -> R + Sync,
) -> (Vec<R>, ScatterStats)
where
    I: Send,
    R: Send,
{
    let n = items.len();
    let stats = ScatterStats {
        tasks: n as u64,
        stolen: 0,
    };
    if threads <= 1 || n <= 1 {
        let mut s = state();
        let results = items.into_iter().map(|item| work(item, &mut s)).collect();
        return (results, stats);
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let stolen = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let participant = |is_worker: bool| {
        let mut s: Option<S> = None;
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if local.capacity() == 0 {
                local.reserve_exact(n);
            }
            let item = slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("each task index is claimed exactly once");
            let s = s.get_or_insert_with(&state);
            local.push((i, work(item, s)));
        }
        if is_worker {
            stolen.fetch_add(local.len(), Ordering::Relaxed);
        }
        if !local.is_empty() {
            collected.lock().unwrap().append(&mut local);
        }
    };
    run_participants(threads - 1, &participant);
    let mut merged = collected.into_inner().unwrap();
    assert_eq!(merged.len(), n, "a scattered task went missing");
    merged.sort_unstable_by_key(|&(i, _)| i);
    (
        merged.into_iter().map(|(_, r)| r).collect(),
        ScatterStats {
            tasks: n as u64,
            stolen: stolen.into_inner() as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_item_order() {
        for threads in [1usize, 2, 4, 8] {
            let items: Vec<usize> = (0..100).collect();
            let (out, stats) = scatter(threads, items, || (), |i, _| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(stats.tasks, 100);
            if threads == 1 {
                assert_eq!(stats.stolen, 0);
            }
        }
    }

    #[test]
    fn participant_state_is_reused_not_shared() {
        // Each participant's scratch counts the tasks it ran; the sum
        // over participants must equal the task count.
        let total = std::sync::atomic::AtomicUsize::new(0);
        let (out, _) = scatter(
            4,
            vec![(); 64],
            || 0usize,
            |_, s| {
                *s += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(total.into_inner(), 64);
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // A scattered task scattering again must complete even when the
        // pool is saturated: the help-first protocol means every level
        // is driven by its own caller.
        let items: Vec<usize> = (0..8).collect();
        let (out, _) = scatter(
            4,
            items,
            || (),
            |i, _| {
                let inner: Vec<usize> = (0..8).collect();
                let (sums, _) = scatter(4, inner, || (), |j, _| i * 10 + j);
                sums.iter().sum::<usize>()
            },
        );
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            scatter(
                4,
                (0..32).collect::<Vec<usize>>(),
                || (),
                |i, _| {
                    if i == 17 {
                        panic!("boom");
                    }
                    i
                },
            )
        });
        assert!(caught.is_err(), "task panic must reach the caller");
    }

    #[test]
    fn forfeited_tickets_do_not_leak_into_later_fanouts() {
        // A fan-out whose caller drains everything before any worker
        // wakes leaves no live tickets behind; the next fan-out still
        // sees a clean queue and completes.
        for _ in 0..50 {
            let (out, _) = scatter(8, vec![1usize; 4], || (), |v, _| v);
            assert_eq!(out, vec![1; 4]);
        }
    }
}
