//! Prefix-shared incremental candidate evaluation.
//!
//! The selection walk of `wbist-core` evaluates dozens of generated
//! sequences `T_G` per segment, and consecutive candidate ranks share
//! long sequence prefixes by construction (periodic per-input streams
//! change one input's period at a time, and clamped ranks literally
//! repeat sequences). A [`PrefixTraceCache`] exploits that: it keeps the
//! last few evaluated sequences together with
//!
//! * their good-machine trace (`compiled::GoodTrace`) — a new
//!   candidate copies the shared prefix rows verbatim and resumes
//!   the scalar good simulation at the first row that differs, and
//! * per-batch faulty-plane state snapshotted at checkpointed cycles
//!   (`compiled::BatchCkpt`) — a dense detection query resumes each
//!   fault batch from the latest snapshot at or before the divergence
//!   cycle instead of from cycle 0, with the dirty-set worklists
//!   reseeded from the restored state.
//!
//! # Exactness
//!
//! Resumed runs are **bit-identical** to from-scratch runs, including
//! the deterministic telemetry counters: every snapshot stores the
//! complete kernel state at a cycle boundary — live mask, flip-flop
//! planes, the explicit dirty-flip-flop set, cumulative batch stats,
//! and the detections found so far — so a resumed batch replays
//! exactly the suffix the
//! from-scratch run would have executed and credits exactly the stats it
//! would have accumulated. The dirty set is restored explicitly rather
//! than recomputed: a flip-flop whose faulty planes happen to agree with
//! the good machine can still be flagged dirty mid-run (it goes clean
//! only at its next examination), and recomputing the flags would skip
//! that examination and undercount `gates_evaluated`.
//!
//! Faulty-plane artifacts are keyed by a fingerprint of the fault list
//! they were simulated against; a query over a different list (the
//! screening sample, say) reuses only the good trace. The cache itself
//! is a plain value owned by the selection loop — it is never persisted
//! to checkpoints, never hashed into the run configuration, and cleared
//! whenever the segment snapshot it was built under changes.

use std::sync::Arc;

use crate::compiled::{BatchCkpt, BatchStats, GoodTrace};
use crate::plane::Planes;
use crate::sequence::TestSequence;
use crate::word::Word;
use wbist_netlist::{FaultList, FaultModel, FaultSite};

/// Entries kept per cache (the last few committed candidates). Small by
/// design: consecutive ranks diverge from a recent sequence or not at
/// all, and each entry can pin per-batch plane snapshots.
const CACHE_CAP: usize = 4;

/// Hard byte budget for one entry's spilled snapshots. Enforced with a
/// deterministic eviction order by [`enforce_spill_budget`].
pub(crate) const SPILL_BYTE_BUDGET: usize = 16 << 20;

/// A [`BatchCkpt`] compressed against the good trace it was captured
/// under. Faulty flip-flop planes are near-identical to the fault-free
/// machine, so each plane pair is classified per flip-flop: exactly
/// all-`X` (one bitmap bit), exactly the broadcast good value entering
/// `cycle` (one bitmap bit), or an explicit XOR delta against that
/// broadcast (two plane words). The first two classes dominate — a
/// mid-run snapshot holds broadcast values for every flip-flop the
/// batch never dirtied — so an s35932-class snapshot shrinks from
/// `2 × FFs` plane words to two bitmaps plus a short delta list.
///
/// Restoring against a trace whose rows before `cycle` match the
/// capture trace (guaranteed: snapshots are only resumed at or before
/// the divergence cycle) reproduces the raw checkpoint bit-exactly —
/// XOR round-trips, and the class tags are checked in the same order on
/// both sides.
#[derive(Debug)]
pub(crate) struct SpilledCkpt<W> {
    /// The cycle the snapshot resumes at (state *entering* this cycle).
    pub(crate) cycle: usize,
    /// Live fault mask entering `cycle`.
    pub(crate) live: W,
    /// Flip-flop indices flagged dirty entering `cycle`.
    pub(crate) dirty_dffs: Vec<u32>,
    /// Cumulative kernel stats over cycles `0..cycle`.
    pub(crate) stats: BatchStats,
    /// Detections `(fault index, cycle)` recorded before `cycle`.
    pub(crate) found: Vec<(usize, usize)>,
    /// Flip-flop count of the raw checkpoint (bitmap padding excluded).
    num_dffs: usize,
    /// Bit `k`: flip-flop `k`'s planes are exactly all-`X`.
    x_bits: Vec<u64>,
    /// Bit `k`: flip-flop `k`'s planes equal the broadcast good value.
    good_bits: Vec<u64>,
    /// XOR deltas vs. the broadcast good value for every remaining
    /// flip-flop, ascending by index.
    deltas: Vec<Planes<W>>,
}

impl<W: Word> SpilledCkpt<W> {
    /// The broadcast good-machine value of flip-flop `k` entering
    /// `cycle`: its D input at the previous cycle. Snapshots are taken
    /// at cycle boundaries `u + 1 ≥ 1`, so the row always exists.
    #[inline]
    fn good_plane(trace: &GoodTrace, dff_d: &[u32], cycle: usize, k: usize) -> Planes<W> {
        debug_assert!(cycle >= 1);
        trace.planes(cycle - 1, dff_d[k] as usize)
    }

    /// Compresses a raw checkpoint against the trace it was captured
    /// under.
    pub(crate) fn compress(ck: &BatchCkpt<W>, trace: &GoodTrace, dff_d: &[u32]) -> SpilledCkpt<W> {
        let words = ck.ff.len().div_ceil(64);
        let mut x_bits = vec![0u64; words];
        let mut good_bits = vec![0u64; words];
        let mut deltas = Vec::new();
        for (k, &p) in ck.ff.iter().enumerate() {
            if p == Planes::ALL_X {
                x_bits[k / 64] |= 1u64 << (k % 64);
                continue;
            }
            let good = SpilledCkpt::good_plane(trace, dff_d, ck.cycle, k);
            if p == good {
                good_bits[k / 64] |= 1u64 << (k % 64);
            } else {
                deltas.push(Planes {
                    ones: p.ones ^ good.ones,
                    zeros: p.zeros ^ good.zeros,
                });
            }
        }
        SpilledCkpt {
            cycle: ck.cycle,
            live: ck.live,
            dirty_dffs: ck.dirty_dffs.clone(),
            stats: ck.stats,
            found: ck.found.clone(),
            num_dffs: ck.ff.len(),
            x_bits,
            good_bits,
            deltas,
        }
    }

    /// Reconstructs the raw checkpoint. `trace` must agree with the
    /// capture trace on rows before `cycle` (true for any trace sharing
    /// at least `cycle` prefix rows with the capture sequence).
    pub(crate) fn restore(&self, trace: &GoodTrace, dff_d: &[u32]) -> BatchCkpt<W> {
        let mut ff = Vec::with_capacity(self.num_dffs);
        let mut next = self.deltas.iter();
        for k in 0..self.num_dffs {
            let bit = 1u64 << (k % 64);
            if self.x_bits[k / 64] & bit != 0 {
                ff.push(Planes::ALL_X);
            } else if self.good_bits[k / 64] & bit != 0 {
                ff.push(SpilledCkpt::good_plane(trace, dff_d, self.cycle, k));
            } else {
                let d = *next.next().expect("one delta per unclassified flip-flop");
                let good: Planes<W> = SpilledCkpt::good_plane(trace, dff_d, self.cycle, k);
                ff.push(Planes {
                    ones: d.ones ^ good.ones,
                    zeros: d.zeros ^ good.zeros,
                });
            }
        }
        debug_assert!(next.next().is_none(), "every delta consumed");
        BatchCkpt {
            cycle: self.cycle,
            live: self.live,
            ff,
            dirty_dffs: self.dirty_dffs.clone(),
            stats: self.stats,
            found: self.found.clone(),
        }
    }

    /// Approximate heap footprint, for the byte budget.
    pub(crate) fn bytes(&self) -> usize {
        std::mem::size_of::<SpilledCkpt<W>>()
            + self.dirty_dffs.len() * std::mem::size_of::<u32>()
            + self.found.len() * std::mem::size_of::<(usize, usize)>()
            + (self.x_bits.len() + self.good_bits.len()) * 8
            + self.deltas.len() * std::mem::size_of::<Planes<W>>()
    }
}

/// Enforces the spilled-snapshot byte budget in a deterministic order:
/// while over budget, evict the earliest-cycle snapshot among batches
/// that still hold more than one (ties to the lowest batch index) —
/// late snapshots are the valuable resume points, candidate divergences
/// cluster near the end of a sequence. If a single snapshot per batch
/// still exceeds the budget, batches are emptied in ascending index
/// order until the rest fit. Returns the resulting total byte count.
pub(crate) fn enforce_spill_budget<W: Word>(
    batches: &mut [Vec<Arc<SpilledCkpt<W>>>],
    budget: usize,
) -> usize {
    let mut total: usize = batches.iter().flatten().map(|s| s.bytes()).sum();
    while total > budget {
        let pick = batches
            .iter()
            .enumerate()
            .filter(|(_, list)| list.len() > 1)
            .min_by_key(|(bi, list)| (list[0].cycle, *bi))
            .map(|(bi, _)| bi);
        match pick {
            Some(bi) => total -= batches[bi].remove(0).bytes(),
            None => break,
        }
    }
    if total > budget {
        for list in batches.iter_mut() {
            while let Some(s) = list.pop() {
                total -= s.bytes();
            }
            if total <= budget {
                break;
            }
        }
    }
    total
}

/// Per-batch snapshots in whichever representation the capture guard
/// chose: raw plane vectors under the plane cap, compressed spill
/// above it. The choice is a pure function of `batches × flip-flops`,
/// so a cached store always matches the representation a rerun of the
/// same query would pick.
#[derive(Debug)]
pub(crate) enum SnapshotStore<W> {
    /// Raw snapshots, ascending by cycle within each batch.
    Raw(Vec<Vec<Arc<BatchCkpt<W>>>>),
    /// Compressed snapshots, ascending by cycle within each batch.
    Spilled(Vec<Vec<Arc<SpilledCkpt<W>>>>),
}

impl<W> SnapshotStore<W> {
    /// Number of batches the store was captured over.
    pub(crate) fn num_batches(&self) -> usize {
        match self {
            SnapshotStore::Raw(pb) => pb.len(),
            SnapshotStore::Spilled(pb) => pb.len(),
        }
    }
}

/// Per-batch faulty-plane snapshots, valid for one (sequence, fault
/// list, word width) triple.
#[derive(Debug)]
pub(crate) struct FaultyArtifacts<W> {
    /// Fingerprint of the fault list the snapshots were taken against.
    pub(crate) fingerprint: u64,
    /// Snapshots per batch.
    pub(crate) store: SnapshotStore<W>,
}

/// Width-erased faulty artifacts: the cache stores whatever lane width
/// produced the snapshots, and a query at a different width simply
/// misses (batch partitioning and machine-bit assignment are
/// width-specific, so cross-width resume is meaningless — the
/// width-independent good trace still gets reused).
#[derive(Debug)]
pub(crate) enum AnyArtifacts {
    W64(FaultyArtifacts<u64>),
    W128(FaultyArtifacts<u128>),
    #[cfg(feature = "w256")]
    W256(FaultyArtifacts<crate::word::W256>),
}

/// Selects the lane-typed artifacts out of the width-erased enum.
/// Implemented per lane type so the generic dense-query engine can
/// recover its own width's snapshots (and wrap new ones) without the
/// public cache surface becoming generic.
pub(crate) trait ArtifactLane: Word {
    fn from_any(any: &AnyArtifacts) -> Option<&FaultyArtifacts<Self>>
    where
        Self: Sized;
    fn into_any(artifacts: FaultyArtifacts<Self>) -> AnyArtifacts
    where
        Self: Sized;
}

impl ArtifactLane for u64 {
    fn from_any(any: &AnyArtifacts) -> Option<&FaultyArtifacts<u64>> {
        match any {
            AnyArtifacts::W64(fa) => Some(fa),
            _ => None,
        }
    }

    fn into_any(artifacts: FaultyArtifacts<u64>) -> AnyArtifacts {
        AnyArtifacts::W64(artifacts)
    }
}

impl ArtifactLane for u128 {
    fn from_any(any: &AnyArtifacts) -> Option<&FaultyArtifacts<u128>> {
        match any {
            AnyArtifacts::W128(fa) => Some(fa),
            _ => None,
        }
    }

    fn into_any(artifacts: FaultyArtifacts<u128>) -> AnyArtifacts {
        AnyArtifacts::W128(artifacts)
    }
}

#[cfg(feature = "w256")]
impl ArtifactLane for crate::word::W256 {
    fn from_any(any: &AnyArtifacts) -> Option<&FaultyArtifacts<crate::word::W256>> {
        match any {
            AnyArtifacts::W256(fa) => Some(fa),
            _ => None,
        }
    }

    fn into_any(artifacts: FaultyArtifacts<crate::word::W256>) -> AnyArtifacts {
        AnyArtifacts::W256(artifacts)
    }
}

/// One cached sequence with its good trace and optional faulty state.
#[derive(Debug)]
pub(crate) struct CacheEntry {
    pub(crate) seq: TestSequence,
    pub(crate) trace: Arc<GoodTrace>,
    pub(crate) faulty: Option<AnyArtifacts>,
}

/// An entry ready to be installed into a [`PrefixTraceCache`], produced
/// by the prepared queries of [`FaultSim`](crate::FaultSim). Opaque to
/// callers: the selection loop decides *when* committed results enter
/// the cache (commit order makes the cache state deterministic), the
/// simulator decides *what* is worth keeping.
#[derive(Debug)]
pub struct CacheInstall {
    pub(crate) seq: TestSequence,
    pub(crate) trace: Arc<GoodTrace>,
    pub(crate) faulty: Option<AnyArtifacts>,
}

/// Cache of recently evaluated sequences, looked up by longest common
/// row prefix. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct PrefixTraceCache {
    entries: Vec<CacheEntry>,
}

impl PrefixTraceCache {
    /// An empty cache.
    pub fn new() -> PrefixTraceCache {
        PrefixTraceCache::default()
    }

    /// Forgets every entry. Called whenever the state the entries were
    /// evaluated under changes (a kept assignment, a new target fault,
    /// a resumed run).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs a committed evaluation. An identical sequence refreshes
    /// its entry in place (keeping previously captured faulty artifacts
    /// when the new install carries none); otherwise the entry is
    /// appended and the oldest entry beyond the cap is evicted.
    pub fn install(&mut self, inst: CacheInstall) {
        if let Some(pos) = self.entries.iter().position(|e| e.seq == inst.seq) {
            let old = self.entries.remove(pos);
            self.entries.push(CacheEntry {
                seq: inst.seq,
                trace: inst.trace,
                faulty: inst.faulty.or(old.faulty),
            });
        } else {
            self.entries.push(CacheEntry {
                seq: inst.seq,
                trace: inst.trace,
                faulty: inst.faulty,
            });
            if self.entries.len() > CACHE_CAP {
                self.entries.remove(0);
            }
        }
    }

    /// The entry sharing the longest row prefix with `seq`, as
    /// `(entry index, shared rows)`; ties prefer the most recently
    /// installed entry. `None` when nothing shares even the first row.
    pub(crate) fn best_prefix(&self, seq: &TestSequence) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            let d = common_prefix_rows(&entry.seq, seq);
            if d >= 1 && best.is_none_or(|(_, bd)| d >= bd) {
                best = Some((i, d));
            }
        }
        best
    }

    pub(crate) fn entry(&self, i: usize) -> &CacheEntry {
        &self.entries[i]
    }
}

/// Which input streams differ between the cached prefix `owner` and the
/// `probe` beyond the shared prefix `from`: one flag per primary input,
/// set when the two sequences disagree on that input at *any* of the
/// overlapping rows `from..min(len)`. Rows past the owner's length have
/// no cached values to diff against (they are simulated in full), so
/// they do not contribute.
///
/// This is what makes the prefix cache *spatially* incremental: the
/// cone-seeded good-trace rebuild re-evaluates only the forward cones
/// of the flagged inputs, and a probe that differs from its cached
/// owner in one weight stream re-simulates one cone, not the netlist.
pub(crate) fn changed_streams(
    owner: &TestSequence,
    probe: &TestSequence,
    from: usize,
) -> Vec<bool> {
    debug_assert_eq!(owner.num_inputs(), probe.num_inputs());
    let mut changed = vec![false; probe.num_inputs()];
    for u in from..owner.len().min(probe.len()) {
        let (a, b) = (owner.row(u), probe.row(u));
        for (flag, (x, y)) in changed.iter_mut().zip(a.iter().zip(b)) {
            *flag |= x != y;
        }
    }
    changed
}

/// Number of leading time units on which `a` and `b` apply identical
/// input vectors (0 when the input widths differ).
pub(crate) fn common_prefix_rows(a: &TestSequence, b: &TestSequence) -> usize {
    if a.num_inputs() != b.num_inputs() {
        return 0;
    }
    let n = a.len().min(b.len());
    (0..n).take_while(|&u| a.row(u) == b.row(u)).count()
}

/// FNV-1a fingerprint of a fault list: faulty-plane snapshots are only
/// resumable against the exact list (same faults, same order — batching
/// and bit assignment follow list order).
pub(crate) fn fault_fingerprint(faults: &FaultList) -> u64 {
    let mut h = Fnv::new();
    h.int(faults.len() as u64);
    for f in faults.iter() {
        h.int(match f.model() {
            FaultModel::StuckAt => 0,
            FaultModel::TransitionDelay => 1,
        });
        match f.site() {
            FaultSite::Stem(net) => {
                h.int(0);
                h.int(net.index() as u64);
            }
            FaultSite::GatePin { gate, pin } => {
                h.int(1);
                h.int(gate.index() as u64);
                h.int(pin as u64);
            }
            FaultSite::DffData(k) => {
                h.int(2);
                h.int(k as u64);
            }
        }
        h.int(f.polarity() as u64);
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn int(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledCircuit;
    use crate::logic::Logic3;
    use wbist_netlist::{bench_format, Fault, NetId};

    fn seq(rows: &[&str]) -> TestSequence {
        TestSequence::parse_rows(rows).expect("valid rows")
    }

    fn trace_for(rows: &[&str]) -> (TestSequence, Arc<GoodTrace>) {
        let c = bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap();
        let cc = CompiledCircuit::build(&c);
        let s = seq(rows);
        let (t, _) = cc.good_trace(&s, &[Logic3::X]);
        (s, Arc::new(t))
    }

    fn install_of(rows: &[&str]) -> CacheInstall {
        let (s, t) = trace_for(rows);
        CacheInstall {
            seq: s,
            trace: t,
            faulty: None,
        }
    }

    #[test]
    fn common_prefix_counts_rows() {
        let a = seq(&["00", "01", "10"]);
        let b = seq(&["00", "01", "11"]);
        assert_eq!(common_prefix_rows(&a, &b), 2);
        assert_eq!(common_prefix_rows(&a, &a), 3);
        let short = seq(&["00"]);
        assert_eq!(common_prefix_rows(&a, &short), 1);
        let wide = seq(&["000"]);
        assert_eq!(common_prefix_rows(&a, &wide), 0);
        let cold = seq(&["11", "01"]);
        assert_eq!(common_prefix_rows(&a, &cold), 0);
    }

    #[test]
    fn lookup_prefers_longest_then_most_recent() {
        let mut cache = PrefixTraceCache::new();
        cache.install(install_of(&["00", "11", "00", "11"]));
        cache.install(install_of(&["00", "11", "01", "11"]));
        let probe = seq(&["00", "11", "01", "10"]);
        let (idx, d) = cache.best_prefix(&probe).expect("shares a prefix");
        assert_eq!((idx, d), (1, 3), "longest prefix wins");
        // An exact duplicate of entry 0 ties entry 0's length against
        // nothing — full-length match reaches its own entry.
        let dup = seq(&["00", "11", "00", "11"]);
        assert_eq!(cache.best_prefix(&dup), Some((0, 4)));
        assert_eq!(cache.best_prefix(&seq(&["10", "00"])), None);
    }

    #[test]
    fn install_caps_and_refreshes() {
        let mut cache = PrefixTraceCache::new();
        let variants: Vec<Vec<String>> = (0..6)
            .map(|i| vec![format!("{:02b}", i % 4), format!("{:02b}", i / 2)])
            .collect();
        for v in &variants {
            let rows: Vec<&str> = v.iter().map(String::as_str).collect();
            cache.install(install_of(&rows));
        }
        assert!(cache.len() <= CACHE_CAP);
        // Reinstalling an existing sequence must not grow the cache.
        let rows: Vec<&str> = variants[5].iter().map(String::as_str).collect();
        let before = cache.len();
        cache.install(install_of(&rows));
        assert_eq!(cache.len(), before);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn changed_streams_flags_only_diverging_inputs() {
        let a = seq(&["00", "01", "10"]);
        let b = seq(&["00", "11", "10"]);
        assert_eq!(changed_streams(&a, &b, 1), vec![true, false]);
        assert_eq!(changed_streams(&a, &b, 2), vec![false, false]);
        // Rows past the owner's length have nothing to diff against.
        let longer = seq(&["00", "01", "10", "11"]);
        assert_eq!(changed_streams(&a, &longer, 3), vec![false, false]);
    }

    #[test]
    fn spill_round_trips_bit_exactly() {
        let c = bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap();
        let cc = CompiledCircuit::build(&c);
        let s = seq(&["00", "01", "10", "11"]);
        let (t, _) = cc.good_trace(&s, &[Logic3::X]);
        for cycle in 1..=s.len() {
            let good: Planes<u64> = t.planes(cycle - 1, cc.dff_d[0] as usize);
            // One case per plane class: all-X, exactly-good, XOR delta.
            let delta = Planes {
                ones: good.ones ^ 0b100,
                zeros: good.zeros,
            };
            for ffv in [Planes::ALL_X, good, delta] {
                let ck = BatchCkpt {
                    cycle,
                    live: 0b110u64,
                    ff: vec![ffv],
                    dirty_dffs: vec![0],
                    stats: BatchStats::default(),
                    found: vec![(7, 0)],
                };
                let sp = SpilledCkpt::compress(&ck, &t, &cc.dff_d);
                let back = sp.restore(&t, &cc.dff_d);
                assert_eq!(back.ff, ck.ff);
                assert_eq!(back.cycle, ck.cycle);
                assert_eq!(back.live, ck.live);
                assert_eq!(back.dirty_dffs, ck.dirty_dffs);
                assert_eq!(back.found, ck.found);
            }
        }
    }

    #[test]
    fn spill_budget_evicts_earliest_cycles_first() {
        let c = bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap();
        let cc = CompiledCircuit::build(&c);
        let s = seq(&["00", "01", "10", "11"]);
        let (t, _) = cc.good_trace(&s, &[Logic3::X]);
        let snap = |cycle: usize| {
            let ck = BatchCkpt {
                cycle,
                live: 0b10u64,
                ff: vec![Planes::ALL_X],
                dirty_dffs: Vec::new(),
                stats: BatchStats::default(),
                found: Vec::new(),
            };
            Arc::new(SpilledCkpt::compress(&ck, &t, &cc.dff_d))
        };
        let mut batches = vec![
            vec![snap(1), snap(2), snap(3)],
            vec![snap(1), snap(2), snap(3)],
        ];
        let total: usize = batches.iter().flatten().map(|s| s.bytes()).sum();
        // One over budget: exactly batch 0's earliest snapshot goes.
        let after = enforce_spill_budget(&mut batches, total - 1);
        assert!(after < total);
        assert_eq!(
            batches[0].iter().map(|s| s.cycle).collect::<Vec<_>>(),
            [2, 3]
        );
        assert_eq!(batches[1].len(), 3);
        // An impossible budget empties the store, never panics.
        assert_eq!(enforce_spill_budget(&mut batches, 1), 0);
        assert!(batches.iter().all(Vec::is_empty));
    }

    #[test]
    fn fingerprint_separates_fault_lists() {
        let a = FaultList::from_faults(vec![Fault::sa0(FaultSite::Stem(NetId::from_index(3)))]);
        let b = FaultList::from_faults(vec![Fault::sa1(FaultSite::Stem(NetId::from_index(3)))]);
        let c = FaultList::from_faults(vec![Fault::sa0(FaultSite::DffData(3))]);
        // Same site and polarity under a different model must not alias:
        // snapshots taken against stuck-at faults are meaningless for a
        // transition query over the same lines.
        let d = FaultList::from_faults(vec![Fault::slow_to_rise(FaultSite::Stem(
            NetId::from_index(3),
        ))]);
        assert_ne!(fault_fingerprint(&a), fault_fingerprint(&b));
        assert_ne!(fault_fingerprint(&a), fault_fingerprint(&c));
        assert_ne!(fault_fingerprint(&a), fault_fingerprint(&d));
        assert_ne!(fault_fingerprint(&b), fault_fingerprint(&d));
        assert_eq!(fault_fingerprint(&a), fault_fingerprint(&a.clone()));
    }
}
