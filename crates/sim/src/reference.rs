//! A deliberately simple serial fault simulator used as an oracle.
//!
//! [`SerialFaultSim`] simulates one faulty machine at a time, side by
//! side with the fault-free machine, using the scalar three-valued
//! evaluator. It is an order of magnitude slower than the bit-sliced
//! parallel engine in [`crate::fault`], but short enough to audit by
//! eye — the workspace's property tests assert that the two engines
//! agree on every fault, sequence and circuit they are given.
//!
//! It also exposes per-cycle faulty-machine *output streams*, which the
//! signature-analysis layer (`wbist-core`'s BIST session) consumes.

use crate::good::eval_gate;
use crate::logic::Logic3;
use crate::sequence::TestSequence;
use wbist_netlist::{Circuit, Fault, FaultSite, NetId};

/// Serial (one-fault-at-a-time) sequential fault simulator.
#[derive(Debug, Clone)]
pub struct SerialFaultSim<'c> {
    circuit: &'c Circuit,
}

impl<'c> SerialFaultSim<'c> {
    /// Creates a serial simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        SerialFaultSim { circuit }
    }

    /// First detection time of `fault` under `seq`, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn detection_time(&self, fault: Fault, seq: &TestSequence) -> Option<usize> {
        let c = self.circuit;
        assert_eq!(
            seq.num_inputs(),
            c.num_inputs(),
            "sequence width must match the circuit"
        );
        let mut good = MachineState::new(c);
        let mut bad = MachineState::new(c);
        for u in 0..seq.len() {
            good.step(c, seq.row(u), None);
            bad.step(c, seq.row(u), Some(fault));
            for o in c.observed_nets() {
                if good.nets[o.index()].conflicts(bad.nets[o.index()]) {
                    return Some(u);
                }
            }
        }
        None
    }

    /// The faulty machine's primary-output stream under `seq` (one row
    /// per time unit, PO order). Pass `fault = None` for the fault-free
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn output_stream(&self, fault: Option<Fault>, seq: &TestSequence) -> Vec<Vec<Logic3>> {
        let c = self.circuit;
        assert_eq!(
            seq.num_inputs(),
            c.num_inputs(),
            "sequence width must match the circuit"
        );
        let mut m = MachineState::new(c);
        let mut out = Vec::with_capacity(seq.len());
        for u in 0..seq.len() {
            m.step(c, seq.row(u), fault);
            out.push(c.outputs().iter().map(|&o| m.nets[o.index()]).collect());
        }
        out
    }
}

/// One machine's scalar state.
#[derive(Debug, Clone)]
struct MachineState {
    ff: Vec<Logic3>,
    nets: Vec<Logic3>,
}

impl MachineState {
    fn new(c: &Circuit) -> Self {
        MachineState {
            ff: vec![Logic3::X; c.num_dffs()],
            nets: vec![Logic3::X; c.num_nets()],
        }
    }

    fn step(&mut self, c: &Circuit, row: &[bool], fault: Option<Fault>) {
        let inject_stem = |net: NetId, v: Logic3| -> Logic3 {
            match fault {
                Some(f) if f.site == FaultSite::Stem(net) => f.stuck.into(),
                _ => v,
            }
        };
        for (pi, &net) in c.inputs().iter().enumerate() {
            self.nets[net.index()] = inject_stem(net, row[pi].into());
        }
        for (k, d) in c.dffs().iter().enumerate() {
            self.nets[d.q.index()] = inject_stem(d.q, self.ff[k]);
        }
        for idx in 0..c.num_nets() {
            if let wbist_netlist::Driver::Const(v) = c.driver(NetId::from_index(idx)) {
                self.nets[idx] = inject_stem(NetId::from_index(idx), v.into());
            }
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let vals = g.inputs.iter().enumerate().map(|(pin, &i)| {
                let v = self.nets[i.index()];
                match fault {
                    Some(f) if f.site == (FaultSite::GatePin { gate: gid, pin }) => f.stuck.into(),
                    _ => v,
                }
            });
            let out = eval_gate(g.kind, vals);
            self.nets[g.output.index()] = inject_stem(g.output, out);
        }
        for (k, d) in c.dffs().iter().enumerate() {
            let mut v = self.nets[d.d.expect("levelized").index()];
            if let Some(f) = fault {
                if f.site == FaultSite::DffData(k) {
                    v = f.stuck.into();
                }
            }
            self.ff[k] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSim;
    use wbist_netlist::{bench_format, FaultList};

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .expect("valid netlist")
    }

    #[test]
    fn agrees_with_parallel_engine() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).expect("valid");
        let par = FaultSim::new(&c).detection_times(&faults, &seq);
        let ser = SerialFaultSim::new(&c);
        for (i, &f) in faults.faults().iter().enumerate() {
            assert_eq!(par[i], ser.detection_time(f, &seq), "{}", f.describe(&c));
        }
    }

    #[test]
    fn fault_free_stream_matches_logic_sim() {
        let c = toy();
        let seq = TestSequence::parse_rows(&["00", "10", "01"]).expect("valid");
        let a = SerialFaultSim::new(&c).output_stream(None, &seq);
        let b = crate::good::LogicSim::new(&c).outputs(&seq).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_stream_differs_at_detection_time() {
        let c = toy();
        let faults = FaultList::checkpoints(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).expect("valid");
        let ser = SerialFaultSim::new(&c);
        for &f in faults.faults() {
            if let Some(u) = ser.detection_time(f, &seq) {
                let good = ser.output_stream(None, &seq);
                let bad = ser.output_stream(Some(f), &seq);
                assert!(
                    good[u].iter().zip(&bad[u]).any(|(g, b)| g.conflicts(*b)),
                    "{} detection not visible in streams",
                    f.describe(&c)
                );
            }
        }
    }
}
