//! A deliberately simple serial fault simulator used as an oracle.
//!
//! [`SerialFaultSim`] simulates one faulty machine at a time, side by
//! side with the fault-free machine, using the scalar three-valued
//! evaluator. It is an order of magnitude slower than the bit-sliced
//! parallel engine in [`crate::fault`], but short enough to audit by
//! eye — the workspace's property tests assert that the two engines
//! agree on every fault, sequence and circuit they are given.
//!
//! Every fault model reduces to the same scalar mechanics: each cycle
//! the fault either forces one value at its site or does nothing. A
//! stuck-at fault forces its stuck value unconditionally; a
//! transition-delay fault forces the *launch* (previous-cycle) value
//! exactly on the cycles where the fault-free machine transitions the
//! site to the slow value. Because activation is a pure function of the
//! fault-free trace, the good machine is stepped first each cycle and
//! the faulty machine receives the resolved `(site, value)` force.
//!
//! It also exposes per-cycle faulty-machine *output streams*, which the
//! signature-analysis layer (`wbist-core`'s BIST session) consumes.

use crate::good::eval_gate;
use crate::logic::Logic3;
use crate::sequence::TestSequence;
use wbist_netlist::{Circuit, Fault, FaultSite, NetId};

/// Serial (one-fault-at-a-time) sequential fault simulator.
#[derive(Debug, Clone)]
pub struct SerialFaultSim<'c> {
    circuit: &'c Circuit,
}

impl<'c> SerialFaultSim<'c> {
    /// Creates a serial simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been levelized.
    pub fn new(circuit: &'c Circuit) -> Self {
        assert!(circuit.is_levelized(), "circuit must be levelized");
        SerialFaultSim { circuit }
    }

    /// First detection time of `fault` under `seq`, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn detection_time(&self, fault: Fault, seq: &TestSequence) -> Option<usize> {
        let c = self.circuit;
        assert_eq!(
            seq.num_inputs(),
            c.num_inputs(),
            "sequence width must match the circuit"
        );
        let mut good = MachineState::new(c);
        let mut bad = MachineState::new(c);
        let mut prev_good: Option<Vec<Logic3>> = None;
        for u in 0..seq.len() {
            good.step(c, seq.row(u), None);
            let forced = forced_value(c, fault, &good.nets, prev_good.as_deref());
            bad.step(c, seq.row(u), forced);
            for o in c.observed_nets() {
                if good.nets[o.index()].conflicts(bad.nets[o.index()]) {
                    return Some(u);
                }
            }
            prev_good = Some(good.nets.clone());
        }
        None
    }

    /// The faulty machine's primary-output stream under `seq` (one row
    /// per time unit, PO order). Pass `fault = None` for the fault-free
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if the sequence width does not match the circuit.
    pub fn output_stream(&self, fault: Option<Fault>, seq: &TestSequence) -> Vec<Vec<Logic3>> {
        let c = self.circuit;
        assert_eq!(
            seq.num_inputs(),
            c.num_inputs(),
            "sequence width must match the circuit"
        );
        // The fault-free machine runs alongside even for the faulty
        // stream: conditional (transition) activation reads it.
        let mut good = MachineState::new(c);
        let mut m = MachineState::new(c);
        let mut prev_good: Option<Vec<Logic3>> = None;
        let mut out = Vec::with_capacity(seq.len());
        for u in 0..seq.len() {
            good.step(c, seq.row(u), None);
            let forced = fault.and_then(|f| forced_value(c, f, &good.nets, prev_good.as_deref()));
            m.step(c, seq.row(u), forced);
            out.push(c.outputs().iter().map(|&o| m.nets[o.index()]).collect());
            prev_good = Some(good.nets.clone());
        }
        out
    }
}

/// The value `fault` forces at its site this cycle, or `None` when it
/// is inactive. Stuck-at faults force unconditionally; a
/// transition-delay fault forces the launch value only when the
/// fault-free machine transitions the watched line to the slow value
/// between the previous and current cycles (`X` on either side never
/// activates; `prev = None` is the all-`X` start before cycle 0).
fn forced_value(
    c: &Circuit,
    fault: Fault,
    good: &[Logic3],
    prev: Option<&[Logic3]>,
) -> Option<(FaultSite, Logic3)> {
    match fault {
        Fault::StuckAt { site, stuck } => Some((site, stuck.into())),
        Fault::TransitionDelay { site, slow_to } => {
            let watch = match site {
                FaultSite::Stem(net) => net,
                FaultSite::GatePin { gate, pin } => c.gate(gate).inputs[pin],
                FaultSite::DffData(k) => c.dffs()[k].d.expect("levelized"),
            };
            let cur = good[watch.index()];
            let prv = prev.map_or(Logic3::X, |p| p[watch.index()]);
            let slow: Logic3 = slow_to.into();
            let launch: Logic3 = (!slow_to).into();
            (cur == slow && prv == launch).then_some((site, launch))
        }
    }
}

/// One machine's scalar state.
#[derive(Debug, Clone)]
struct MachineState {
    ff: Vec<Logic3>,
    nets: Vec<Logic3>,
}

impl MachineState {
    fn new(c: &Circuit) -> Self {
        MachineState {
            ff: vec![Logic3::X; c.num_dffs()],
            nets: vec![Logic3::X; c.num_nets()],
        }
    }

    /// Advances one cycle, forcing `forced = (site, value)` if the
    /// fault is active this cycle.
    fn step(&mut self, c: &Circuit, row: &[bool], forced: Option<(FaultSite, Logic3)>) {
        let inject_stem = |net: NetId, v: Logic3| -> Logic3 {
            match forced {
                Some((site, fv)) if site == FaultSite::Stem(net) => fv,
                _ => v,
            }
        };
        for (pi, &net) in c.inputs().iter().enumerate() {
            self.nets[net.index()] = inject_stem(net, row[pi].into());
        }
        for (k, d) in c.dffs().iter().enumerate() {
            self.nets[d.q.index()] = inject_stem(d.q, self.ff[k]);
        }
        for idx in 0..c.num_nets() {
            if let wbist_netlist::Driver::Const(v) = c.driver(NetId::from_index(idx)) {
                self.nets[idx] = inject_stem(NetId::from_index(idx), v.into());
            }
        }
        for &gid in c.topo_gates() {
            let g = c.gate(gid);
            let vals = g.inputs.iter().enumerate().map(|(pin, &i)| {
                let v = self.nets[i.index()];
                match forced {
                    Some((site, fv)) if site == (FaultSite::GatePin { gate: gid, pin }) => fv,
                    _ => v,
                }
            });
            let out = eval_gate(g.kind, vals);
            self.nets[g.output.index()] = inject_stem(g.output, out);
        }
        for (k, d) in c.dffs().iter().enumerate() {
            let mut v = self.nets[d.d.expect("levelized").index()];
            if let Some((site, fv)) = forced {
                if site == FaultSite::DffData(k) {
                    v = fv;
                }
            }
            self.ff[k] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSim;
    use wbist_netlist::{bench_format, FaultList, FaultModel, FaultUniverse};

    fn toy() -> Circuit {
        bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .expect("valid netlist")
    }

    #[test]
    fn agrees_with_parallel_engine() {
        let c = toy();
        let faults = FaultList::all_lines(&c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).expect("valid");
        let par = FaultSim::new(&c)
            .query(&faults)
            .sequence(&seq)
            .detection_times();
        let ser = SerialFaultSim::new(&c);
        for (i, &f) in faults.faults().iter().enumerate() {
            assert_eq!(par[i], ser.detection_time(f, &seq), "{}", f.describe(&c));
        }
    }

    #[test]
    fn agrees_with_parallel_engine_on_transition_faults() {
        let c = toy();
        let faults = FaultUniverse::enumerate(FaultModel::TransitionDelay, &c);
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11", "00", "10"]).expect("valid");
        let par = FaultSim::new(&c)
            .query(&faults)
            .sequence(&seq)
            .detection_times();
        let ser = SerialFaultSim::new(&c);
        for (i, &f) in faults.faults().iter().enumerate() {
            assert_eq!(par[i], ser.detection_time(f, &seq), "{}", f.describe(&c));
        }
    }

    #[test]
    fn fault_free_stream_matches_logic_sim() {
        let c = toy();
        let seq = TestSequence::parse_rows(&["00", "10", "01"]).expect("valid");
        let a = SerialFaultSim::new(&c).output_stream(None, &seq);
        let b = crate::good::LogicSim::new(&c).outputs(&seq).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_stream_differs_at_detection_time() {
        let c = toy();
        let mut all = FaultList::checkpoints(&c).faults().to_vec();
        all.extend(
            FaultUniverse::checkpoints(FaultModel::TransitionDelay, &c)
                .faults()
                .iter()
                .copied(),
        );
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).expect("valid");
        let ser = SerialFaultSim::new(&c);
        for f in all {
            if let Some(u) = ser.detection_time(f, &seq) {
                let good = ser.output_stream(None, &seq);
                let bad = ser.output_stream(Some(f), &seq);
                assert!(
                    good[u].iter().zip(&bad[u]).any(|(g, b)| g.conflicts(*b)),
                    "{} detection not visible in streams",
                    f.describe(&c)
                );
            }
        }
    }
}
