//! Shared run options for every pipeline phase.
//!
//! Before this module existed, each phase configuration
//! (`SynthesisConfig`, `SessionConfig`, `PipelineConfig`, …) re-plumbed
//! [`SimOptions`] independently and grew `_with` variants whenever a new
//! knob appeared. [`RunOptions`] is the one bundle they all share now:
//! simulator tuning, the telemetry handle, and the base seed for any
//! pseudo-random choices a phase makes.

use crate::fault::{CompiledHandle, SimOptions};
use crate::runctl::CancelToken;
use wbist_telemetry::Telemetry;

/// Options shared by every phase of a pipeline run.
///
/// Cloning is cheap: [`SimOptions`] is `Copy` and the telemetry handle
/// is an `Arc` (or nothing, when disabled).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Fault-simulator tuning (worker thread count).
    pub sim: SimOptions,
    /// Telemetry recorder; [`Telemetry::disabled`] (the default) makes
    /// every instrumentation point a no-op.
    pub telemetry: Telemetry,
    /// Base seed for pseudo-random decisions (LFSR phases, ATPG
    /// restarts). Phases that need several streams derive from it.
    pub seed: u64,
    /// Cooperative cancellation token, polled by the kernels once per
    /// simulated cycle and by phase drivers at phase boundaries. The
    /// default ([`CancelToken::unlimited`]) never trips and costs
    /// nothing.
    pub cancel: CancelToken,
    /// Shared pre-lowered circuit ([`CompiledHandle`]): when it matches
    /// the circuit a phase simulates, the expensive one-time lowering is
    /// reused instead of rebuilt. `None` (the default) lowers fresh.
    pub compiled: Option<CompiledHandle>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sim: SimOptions::default(),
            telemetry: Telemetry::disabled(),
            seed: 1,
            cancel: CancelToken::unlimited(),
            compiled: None,
        }
    }
}

impl RunOptions {
    /// Options pinned to a fixed simulator worker count.
    pub fn with_threads(threads: usize) -> RunOptions {
        RunOptions {
            sim: SimOptions::with_threads(threads),
            ..RunOptions::default()
        }
    }

    /// Replaces the telemetry handle (builder style).
    pub fn telemetry(mut self, telemetry: Telemetry) -> RunOptions {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the seed (builder style).
    pub fn seed(mut self, seed: u64) -> RunOptions {
        self.seed = seed;
        self
    }

    /// Replaces the cancellation token (builder style).
    pub fn cancel(mut self, cancel: CancelToken) -> RunOptions {
        self.cancel = cancel;
        self
    }

    /// Attaches a shared pre-lowered circuit (builder style).
    pub fn compiled(mut self, handle: CompiledHandle) -> RunOptions {
        self.compiled = Some(handle);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quiet_and_seeded() {
        let run = RunOptions::default();
        assert!(!run.telemetry.is_enabled());
        assert_eq!(run.sim.threads, None);
        assert_eq!(run.seed, 1);
    }

    #[test]
    fn builders_compose() {
        let run = RunOptions::with_threads(2)
            .telemetry(Telemetry::enabled())
            .seed(7)
            .cancel(CancelToken::for_budget(&crate::runctl::Budget::default()));
        assert_eq!(run.sim.threads, Some(2));
        assert!(run.telemetry.is_enabled());
        assert_eq!(run.seed, 7);
        assert!(run.cancel.is_armed());
        assert!(!RunOptions::default().cancel.is_armed());
    }
}
