//! Run control: resource budgets and cooperative cancellation.
//!
//! Long synthesis runs over large fault lists must be *interruptible
//! without being lost*: a budget bounds the run, and exceeding it stops
//! every phase at the next safe point — leaving a valid partial result
//! instead of an aborted process. Two pieces implement this:
//!
//! * [`Budget`] — the declarative limits (wall-clock seconds, simulated
//!   fault-cycles, kept weight assignments);
//! * [`CancelToken`] — the shared runtime object every phase and both
//!   simulation kernels poll. It combines a deadline, a fault-cycle
//!   meter, and an `AtomicBool` for external cancellation.
//!
//! The token is checked *cooperatively*: the fault-simulation kernels
//! poll it once per simulated cycle per batch (charging the live
//! fault-cycles of that cycle), and the phase drivers in `wbist-core`
//! check it at phase boundaries. A tripped token never corrupts state:
//! each batch stops at a cycle boundary with its detected set intact, so
//! truncated results are always *prefixes* of the untruncated run's
//! work.
//!
//! The default token ([`CancelToken::unlimited`]) carries no state at
//! all — polling it is a single `Option` test — so phases that never use
//! budgets pay nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative resource limits for a run. All limits default to
/// unlimited; combine them freely.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Wall-clock limit in seconds, measured from token creation.
    pub wall_secs: Option<f64>,
    /// Limit on simulated fault-cycles (live machine bits × cycles — the
    /// deterministic `sim.fault_cycles` work measure).
    pub fault_cycles: Option<u64>,
    /// Limit on weight assignments kept in `Ω` by the synthesis phase.
    pub max_assignments: Option<usize>,
}

impl Budget {
    /// The unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.wall_secs.is_none() && self.fault_cycles.is_none() && self.max_assignments.is_none()
    }

    /// Sets the wall-clock limit (builder style).
    pub fn wall_secs(mut self, secs: f64) -> Budget {
        self.wall_secs = Some(secs);
        self
    }

    /// Sets the fault-cycle limit (builder style).
    pub fn fault_cycles(mut self, cycles: u64) -> Budget {
        self.fault_cycles = Some(cycles);
        self
    }

    /// Sets the kept-assignment limit (builder style).
    pub fn max_assignments(mut self, n: usize) -> Budget {
        self.max_assignments = Some(n);
        self
    }
}

/// Why a run was truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The wall-clock budget ran out.
    WallClock,
    /// The fault-cycle budget ran out.
    FaultCycles,
    /// The synthesis phase reached its kept-assignment limit.
    MaxAssignments,
    /// [`CancelToken::cancel`] was called externally.
    Cancelled,
    /// The run was preempted by a scheduler so its slot could be handed
    /// to other work; the preempted job is expected to persist a
    /// checkpoint and resume later (see `wbist serve`).
    Preempted,
}

impl TruncationReason {
    /// Stable numeric code, used in telemetry events.
    pub fn code(self) -> u64 {
        match self {
            TruncationReason::WallClock => 1,
            TruncationReason::FaultCycles => 2,
            TruncationReason::MaxAssignments => 3,
            TruncationReason::Cancelled => 4,
            TruncationReason::Preempted => 5,
        }
    }

    fn from_code(code: u8) -> Option<TruncationReason> {
        match code {
            1 => Some(TruncationReason::WallClock),
            2 => Some(TruncationReason::FaultCycles),
            3 => Some(TruncationReason::MaxAssignments),
            4 => Some(TruncationReason::Cancelled),
            5 => Some(TruncationReason::Preempted),
            _ => None,
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TruncationReason::WallClock => "wall-clock budget exceeded",
            TruncationReason::FaultCycles => "fault-cycle budget exceeded",
            TruncationReason::MaxAssignments => "assignment budget exceeded",
            TruncationReason::Cancelled => "cancelled",
            TruncationReason::Preempted => "preempted for eviction",
        })
    }
}

#[derive(Debug)]
struct TokenInner {
    /// Set once when any limit trips; everything polls this first.
    tripped: AtomicBool,
    /// The [`TruncationReason::code`] of the first trip (0 = none).
    reason: AtomicU8,
    /// Wall-clock deadline, if a wall budget was set.
    deadline: Option<Instant>,
    /// Fault-cycle limit (`u64::MAX` when unlimited) and the meter.
    fault_cycle_limit: u64,
    fault_cycles: AtomicU64,
    /// Kept-assignment limit, enforced by the synthesis phase driver.
    max_assignments: Option<usize>,
}

/// Shared cancellation token. Clones share the same state; the default
/// token is unlimited and costs nothing to poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// A token that never trips and carries no state.
    pub fn unlimited() -> CancelToken {
        CancelToken::default()
    }

    /// Arms a token for `budget`, starting the wall clock now. An
    /// unlimited budget still yields an armed token so that
    /// [`CancelToken::cancel`] works.
    pub fn for_budget(budget: &Budget) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                tripped: AtomicBool::new(false),
                reason: AtomicU8::new(0),
                deadline: budget
                    .wall_secs
                    .map(|s| Instant::now() + Duration::from_secs_f64(s.max(0.0))),
                fault_cycle_limit: budget.fault_cycles.unwrap_or(u64::MAX),
                fault_cycles: AtomicU64::new(0),
                max_assignments: budget.max_assignments,
            })),
        }
    }

    /// Whether this token can ever trip.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The kept-assignment limit, if any (enforced by phase drivers, not
    /// by the kernels).
    pub fn max_assignments(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|i| i.max_assignments)
    }

    /// Fault-cycles charged so far.
    pub fn fault_cycles_spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.fault_cycles.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Trips the token externally (idempotent; the first reason wins).
    pub fn cancel(&self, reason: TruncationReason) {
        if let Some(inner) = &self.inner {
            inner.trip(reason);
        }
    }

    /// Charges `n` simulated fault-cycles against the budget, tripping
    /// the token when the limit is crossed. Called by the kernels once
    /// per cycle per batch.
    #[inline]
    pub fn charge_fault_cycles(&self, n: u64) {
        if let Some(inner) = &self.inner {
            if inner.fault_cycle_limit != u64::MAX {
                let spent = inner.fault_cycles.fetch_add(n, Ordering::Relaxed) + n;
                if spent > inner.fault_cycle_limit {
                    inner.trip(TruncationReason::FaultCycles);
                }
            }
        }
    }

    /// Polls the token: `Some(reason)` once any limit has tripped. Also
    /// checks the wall-clock deadline.
    #[inline]
    pub fn cancelled(&self) -> Option<TruncationReason> {
        let inner = self.inner.as_ref()?;
        if !inner.tripped.load(Ordering::Relaxed) {
            match inner.deadline {
                Some(deadline) if Instant::now() >= deadline => {
                    inner.trip(TruncationReason::WallClock);
                }
                _ => return None,
            }
        }
        TruncationReason::from_code(inner.reason.load(Ordering::Relaxed))
    }
}

impl TokenInner {
    fn trip(&self, reason: TruncationReason) {
        // First reason wins; `tripped` is published last so readers that
        // see it also see a non-zero reason.
        let _ = self.reason.compare_exchange(
            0,
            reason.code() as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.tripped.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_trips() {
        let t = CancelToken::unlimited();
        assert!(!t.is_armed());
        t.charge_fault_cycles(u64::MAX / 2);
        assert_eq!(t.cancelled(), None);
        t.cancel(TruncationReason::Cancelled);
        assert_eq!(t.cancelled(), None, "unarmed tokens ignore cancel");
    }

    #[test]
    fn fault_cycle_budget_trips_once_exceeded() {
        let t = CancelToken::for_budget(&Budget::unlimited().fault_cycles(100));
        t.charge_fault_cycles(60);
        assert_eq!(t.cancelled(), None);
        t.charge_fault_cycles(40);
        assert_eq!(t.cancelled(), None, "limit itself is still within budget");
        t.charge_fault_cycles(1);
        assert_eq!(t.cancelled(), Some(TruncationReason::FaultCycles));
        assert_eq!(t.fault_cycles_spent(), 101);
    }

    #[test]
    fn expired_deadline_trips_as_wall_clock() {
        let t = CancelToken::for_budget(&Budget::unlimited().wall_secs(0.0));
        assert_eq!(t.cancelled(), Some(TruncationReason::WallClock));
    }

    #[test]
    fn external_cancel_wins_and_is_sticky() {
        let t = CancelToken::for_budget(&Budget::unlimited());
        assert!(t.is_armed());
        assert_eq!(t.cancelled(), None);
        t.cancel(TruncationReason::Cancelled);
        assert_eq!(t.cancelled(), Some(TruncationReason::Cancelled));
        // Later trips cannot overwrite the first reason.
        t.cancel(TruncationReason::WallClock);
        assert_eq!(t.cancelled(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::for_budget(&Budget::unlimited().fault_cycles(10));
        let u = t.clone();
        u.charge_fault_cycles(11);
        assert_eq!(t.cancelled(), Some(TruncationReason::FaultCycles));
    }

    #[test]
    fn preemption_reason_round_trips() {
        assert_eq!(TruncationReason::Preempted.code(), 5);
        assert_eq!(
            TruncationReason::from_code(5),
            Some(TruncationReason::Preempted)
        );
        let t = CancelToken::for_budget(&Budget::unlimited());
        t.cancel(TruncationReason::Preempted);
        assert_eq!(t.cancelled(), Some(TruncationReason::Preempted));
    }

    #[test]
    fn budget_builders_compose() {
        let b = Budget::unlimited()
            .wall_secs(3.5)
            .fault_cycles(1000)
            .max_assignments(7);
        assert!(!b.is_unlimited());
        assert_eq!(b.wall_secs, Some(3.5));
        assert_eq!(b.fault_cycles, Some(1000));
        assert_eq!(b.max_assignments, Some(7));
        let t = CancelToken::for_budget(&b);
        assert_eq!(t.max_assignments(), Some(7));
    }
}
