//! Fully specified binary test sequences.

use crate::error::SimError;
use std::fmt;

/// A test sequence `T`: one fully specified binary vector per time unit,
/// applied to the primary inputs of a circuit.
///
/// In the paper's notation, `T(u)` is the vector at time unit `u` and
/// `T_i` is the sequence restricted to input `i`, so `T_i(u)` is
/// [`TestSequence::value`]`(u, i)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TestSequence {
    num_inputs: usize,
    /// Time-major storage: bit for input `i` at time `u` lives at
    /// `u * num_inputs + i`.
    bits: Vec<bool>,
}

impl TestSequence {
    /// Creates an empty sequence over `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Self {
        TestSequence {
            num_inputs,
            bits: Vec::new(),
        }
    }

    /// Builds a sequence from one `Vec<bool>` per time unit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RaggedRows`] if rows have differing widths.
    pub fn from_rows(rows: Vec<Vec<bool>>) -> Result<Self, SimError> {
        let num_inputs = rows.first().map_or(0, Vec::len);
        let mut bits = Vec::with_capacity(rows.len() * num_inputs);
        for (ri, row) in rows.iter().enumerate() {
            if row.len() != num_inputs {
                return Err(SimError::RaggedRows {
                    expected: num_inputs,
                    row: ri,
                    got: row.len(),
                });
            }
            bits.extend_from_slice(row);
        }
        Ok(TestSequence { num_inputs, bits })
    }

    /// Parses rows of `'0'`/`'1'` characters, one string per time unit —
    /// the format the paper's tables use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadVectorChar`] for other characters and
    /// [`SimError::RaggedRows`] for differing widths.
    ///
    /// # Example
    ///
    /// ```
    /// use wbist_sim::TestSequence;
    /// # fn main() -> Result<(), wbist_sim::SimError> {
    /// let t = TestSequence::parse_rows(&["0111", "1001"])?;
    /// assert_eq!(t.len(), 2);
    /// assert!(t.value(0, 1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse_rows(rows: &[&str]) -> Result<Self, SimError> {
        let mut out = Vec::with_capacity(rows.len());
        for (ri, row) in rows.iter().enumerate() {
            let mut bits = Vec::with_capacity(row.len());
            for ch in row.chars() {
                match ch {
                    '0' => bits.push(false),
                    '1' => bits.push(true),
                    c if c.is_whitespace() => {}
                    c => return Err(SimError::BadVectorChar { row: ri, ch: c }),
                }
            }
            out.push(bits);
        }
        Self::from_rows(out)
    }

    /// Number of time units (the paper's `L`).
    pub fn len(&self) -> usize {
        self.bits.len().checked_div(self.num_inputs).unwrap_or(0)
    }

    /// Whether the sequence has no time units.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of primary inputs each vector drives.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The vector applied at time unit `u` (the paper's `T(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.len()`.
    pub fn row(&self, u: usize) -> &[bool] {
        &self.bits[u * self.num_inputs..(u + 1) * self.num_inputs]
    }

    /// The value applied to input `i` at time `u` (the paper's `T_i(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    pub fn value(&self, u: usize, i: usize) -> bool {
        assert!(i < self.num_inputs, "input index out of range");
        self.bits[u * self.num_inputs + i]
    }

    /// The sequence restricted to input `i` (the paper's `T_i`), as a
    /// fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_track(&self, i: usize) -> Vec<bool> {
        (0..self.len()).map(|u| self.value(u, i)).collect()
    }

    /// Appends a vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.num_inputs()`.
    pub fn push_row(&mut self, row: &[bool]) {
        assert_eq!(row.len(), self.num_inputs, "row width mismatch");
        self.bits.extend_from_slice(row);
    }

    /// Appends all vectors of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the input widths differ.
    pub fn append(&mut self, other: &TestSequence) {
        assert_eq!(other.num_inputs, self.num_inputs, "sequence width mismatch");
        self.bits.extend_from_slice(&other.bits);
    }

    /// The subsequence consisting of time units `range` (clamped to the
    /// sequence length).
    pub fn slice(&self, range: std::ops::Range<usize>) -> TestSequence {
        let lo = range.start.min(self.len());
        let hi = range.end.min(self.len());
        TestSequence {
            num_inputs: self.num_inputs,
            bits: self.bits[lo * self.num_inputs..hi * self.num_inputs].to_vec(),
        }
    }

    /// A copy with the time units in `omit` (sorted or not) removed.
    /// Used by static compaction.
    pub fn without_rows(&self, omit: &[usize]) -> TestSequence {
        let omit: std::collections::HashSet<usize> = omit.iter().copied().collect();
        let mut out = TestSequence::new(self.num_inputs);
        for u in 0..self.len() {
            if !omit.contains(&u) {
                out.push_row(self.row(u));
            }
        }
        out
    }

    /// Iterates over the vectors in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[bool]> + '_ {
        self.bits.chunks_exact(self.num_inputs.max(1))
    }
}

impl fmt::Display for TestSequence {
    /// One row of `0`/`1` characters per time unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for u in 0..self.len() {
            for &b in self.row(u) {
                f.write_str(if b { "1" } else { "0" })?;
            }
            if u + 1 < self.len() {
                f.write_str("\n")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_access() {
        let t = TestSequence::parse_rows(&["0111", "1001", "0111"]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_inputs(), 4);
        assert_eq!(t.row(1), &[true, false, false, true]);
        assert!(!t.value(0, 0));
        assert!(t.value(0, 3));
        assert_eq!(t.input_track(0), vec![false, true, false]);
    }

    #[test]
    fn parse_rejects_bad_char() {
        let err = TestSequence::parse_rows(&["01x1"]).unwrap_err();
        assert!(matches!(err, SimError::BadVectorChar { row: 0, ch: 'x' }));
    }

    #[test]
    fn parse_rejects_ragged() {
        let err = TestSequence::parse_rows(&["01", "011"]).unwrap_err();
        assert!(matches!(err, SimError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn push_and_append() {
        let mut t = TestSequence::new(2);
        t.push_row(&[true, false]);
        let mut u = TestSequence::new(2);
        u.push_row(&[false, true]);
        t.append(&u);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), &[false, true]);
    }

    #[test]
    fn slice_and_without_rows() {
        let t = TestSequence::parse_rows(&["00", "01", "10", "11"]).unwrap();
        let s = t.slice(1..3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[false, true]);
        let w = t.without_rows(&[0, 2]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.row(0), &[false, true]);
        assert_eq!(w.row(1), &[true, true]);
        // Out-of-range slice bounds clamp.
        assert_eq!(t.slice(3..99).len(), 1);
    }

    #[test]
    fn display_roundtrip() {
        let t = TestSequence::parse_rows(&["010", "101"]).unwrap();
        let text = t.to_string();
        let rows: Vec<&str> = text.lines().collect();
        let t2 = TestSequence::parse_rows(&rows).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn whitespace_in_rows_ignored() {
        let t = TestSequence::parse_rows(&["0 1 1 1"]).unwrap();
        assert_eq!(t.num_inputs(), 4);
    }
}
