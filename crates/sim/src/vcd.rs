//! VCD (Value Change Dump) export of simulation traces.
//!
//! Converts a recorded [`SimTrace`] into standard
//! IEEE-1364 VCD text, viewable in GTKWave & co. Three-valued unknowns
//! map to the VCD `x` state; one VCD time step per clock cycle.

use crate::good::SimTrace;
use crate::logic::Logic3;
use std::fmt::Write as _;
use wbist_netlist::{Circuit, NetId};

/// Renders `trace` (from [`LogicSim::trace`](crate::good::LogicSim::trace))
/// as VCD text. `scope` names the VCD module scope; nets are emitted in
/// circuit order with their netlist names.
///
/// # Panics
///
/// Panics if the trace was recorded from a different circuit (net-count
/// mismatch).
pub fn trace_to_vcd(circuit: &Circuit, trace: &SimTrace, scope: &str) -> String {
    assert!(
        trace.is_empty() || trace.row(0).len() == circuit.num_nets(),
        "trace does not match the circuit"
    );
    let mut out = String::new();
    let _ = writeln!(out, "$date wbist $end");
    let _ = writeln!(out, "$version wbist-sim VCD writer $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(scope));

    // One identifier per net: printable ASCII starting at '!'.
    let ident = |idx: usize| -> String {
        let mut s = String::new();
        let mut k = idx;
        loop {
            s.push((b'!' + (k % 94) as u8) as char);
            k /= 94;
            if k == 0 {
                break;
            }
            k -= 1;
        }
        s
    };
    for idx in 0..circuit.num_nets() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            ident(idx),
            sanitize(circuit.net_name(NetId::from_index(idx)))
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let ch = |v: Logic3| -> char {
        match v {
            Logic3::Zero => '0',
            Logic3::One => '1',
            Logic3::X => 'x',
        }
    };
    let mut prev: Vec<Option<Logic3>> = vec![None; circuit.num_nets()];
    for u in 0..trace.len() {
        let _ = writeln!(out, "#{u}");
        if u == 0 {
            let _ = writeln!(out, "$dumpvars");
        }
        for (idx, p) in prev.iter_mut().enumerate() {
            let v = trace.value(u, NetId::from_index(idx));
            if *p != Some(v) {
                let _ = writeln!(out, "{}{}", ch(v), ident(idx));
                *p = Some(v);
            }
        }
        if u == 0 {
            let _ = writeln!(out, "$end");
        }
    }
    let _ = writeln!(out, "#{}", trace.len());
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_graphic() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good::LogicSim;
    use crate::sequence::TestSequence;
    use wbist_netlist::bench_format;

    #[test]
    fn emits_valid_looking_vcd() {
        let c = bench_format::parse(
            "toy",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(g)\ng = NAND(a, q)\ny = XOR(g, b)\n",
        )
        .unwrap();
        let seq = TestSequence::parse_rows(&["00", "10", "01", "11"]).unwrap();
        let trace = LogicSim::new(&c).trace(&seq).unwrap();
        let vcd = trace_to_vcd(&c, &trace, "toy");
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#4"));
        // Unknown state appears in the first cycle (q starts X... a=0
        // forces g; q itself is X at cycle 0).
        assert!(vcd.contains('x'));
    }

    #[test]
    fn only_changes_are_dumped() {
        let c = bench_format::parse("k", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        let seq = TestSequence::parse_rows(&["1", "1", "1", "0"]).unwrap();
        let trace = LogicSim::new(&c).trace(&seq).unwrap();
        let vcd = trace_to_vcd(&c, &trace, "k");
        // `a` (ident '!') changes at t0 and t3 only.
        let changes = vcd
            .lines()
            .filter(|l| l.ends_with('!') && l.len() == 2)
            .count();
        assert_eq!(changes, 2, "{vcd}");
    }

    #[test]
    fn identifiers_are_unique_for_many_nets() {
        let mut seen = std::collections::HashSet::new();
        // Mirror the ident function over a large range.
        for idx in 0..10_000usize {
            let mut s = String::new();
            let mut k = idx;
            loop {
                s.push((b'!' + (k % 94) as u8) as char);
                k /= 94;
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            assert!(seen.insert(s));
        }
    }
}
